"""Packaging metadata so that ``pip install -e .`` works without PYTHONPATH."""

from pathlib import Path

from setuptools import find_packages, setup

_paper = Path(__file__).parent / "PAPER.md"

setup(
    name="celestial-repro",
    version="0.1.0",
    description=(
        "Reproduction of Celestial: virtual software system testbeds for the LEO edge "
        "(Pfandzelter & Bermbach, Middleware '22)"
    ),
    long_description=_paper.read_text() if _paper.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": ["repro-celestial=repro.cli:main"],
    },
    install_requires=[
        "numpy>=1.23",
        "scipy>=1.9",
    ],
    extras_require={
        "test": [
            "pytest",
            "pytest-benchmark",
            "hypothesis",
            "networkx",
        ],
        "export": ["networkx"],
        # Optional Numba leg of the bounded regional re-solve kernel
        # (repro.topology._kernels); the pure-NumPy fallback is always
        # available, so this only changes speed, never results.
        "fast": ["numba>=0.57"],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: System :: Emulators",
        "Topic :: Scientific/Engineering",
    ],
)
