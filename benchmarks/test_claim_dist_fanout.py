"""PR 4 claim — the process backend beats the thread backend on per-host sweeps.

The coordinator's fan-out applies per-host slices and runs the per-host
usage-sampling sweeps — pure-Python walks over every microVM of a host that
the paper's testbed performs on separate machines, and that the thread
backend serialises on the GIL.  This benchmark drives both backends over
identical full-Starlink epochs (4,409 satellites without a bounding box, so
every satellite owns a microVM — ~1,100 per host across 4 hosts/workers)
and compares the **sweep wall-clock** per epoch: slice fan-out plus one
usage-sampling sweep, exactly the quantities recorded in
``UpdateStats.fanout_seconds`` / ``sample_seconds``.  Constellation math is
identical on both sides and excluded.

The measurements are always written to ``BENCH_dist.json`` (path
overridable via the ``BENCH_DIST_JSON`` environment variable) so the perf
trajectory is tracked across PRs.  The ≥ 1.5× assertion needs real
hardware parallelism, so it is enforced whenever the machine has at least
two CPU cores (every CI runner does); on a single-core box the numbers are
recorded and the assertion is skipped — process workers cannot beat the
GIL without a second core to run on.
"""

import json
import os

import numpy as np
import pytest

from repro.core import (
    ConstellationCalculation,
    ConstellationDatabase,
    Coordinator,
    MachineManager,
)
from repro.hosts import Host
from repro.scenarios import west_africa_configuration

#: Emulation hosts / worker processes of the sweep (acceptance: 4 workers).
HOSTS = 4
#: Measured steady-state epochs (after the full-replay warm-up epoch).
EPOCHS = 6


def _run_backend(parallelism: str) -> dict:
    config = west_africa_configuration(
        duration_s=3600.0, shells="all", use_bounding_box=False
    )
    calculation = ConstellationCalculation(config)
    managers = [
        MachineManager(
            Host(index=i, cpu_cores=64, memory_mib=1 << 21),
            rng=np.random.default_rng(1 + i),
        )
        for i in range(HOSTS)
    ]
    coordinator = Coordinator(
        config,
        calculation,
        ConstellationDatabase(),
        managers,
        parallelism=parallelism,
        worker_count=HOSTS,
    )
    try:
        coordinator.create_ground_stations(0.0)
        # Epoch 1: full replay; creates all 4,409 satellite microVMs.
        coordinator.update(0.0)
        coordinator.sample_all_usage(0.0, applying_update=True)  # warm both paths
        for step in range(1, EPOCHS + 1):
            now = step * config.update_interval_s
            coordinator.update(now)
            coordinator.sample_all_usage(now, applying_update=True)
        machines = sum(len(m.host.machines) for m in coordinator.managers)
        # Per-epoch sweep = slice fan-out + usage-sampling sweep; skip the
        # full-replay epoch and the warm-up sample.
        fanout = coordinator.stats.fanout_seconds[1:]
        samples = coordinator.stats.sample_seconds[1:]
        return {
            "backend": parallelism,
            "machines": machines,
            "epochs": EPOCHS,
            "fanout_seconds": fanout,
            "sample_seconds": samples,
            "sweep_seconds_median": float(
                np.median([f + s for f, s in zip(fanout, samples)])
            ),
        }
    finally:
        coordinator.close()


def test_process_backend_beats_thread_backend_on_full_starlink_sweep():
    threads = _run_backend("threads")
    processes = _run_backend("processes")
    assert threads["machines"] == processes["machines"] == 4409 + 5

    speedup = threads["sweep_seconds_median"] / processes["sweep_seconds_median"]
    results = {
        "scenario": "full-starlink-per-host-sweep",
        "hosts": HOSTS,
        "workers": HOSTS,
        "cpu_count": os.cpu_count(),
        "threads": threads,
        "processes": processes,
        "speedup": speedup,
    }
    artifact = os.environ.get("BENCH_DIST_JSON", "BENCH_dist.json")
    with open(artifact, "w") as handle:
        json.dump(results, handle, indent=2)
    print(
        f"\nper-host sweep (4,409 machines, {HOSTS} hosts): threads "
        f"{threads['sweep_seconds_median'] * 1000:.2f} ms | processes "
        f"{processes['sweep_seconds_median'] * 1000:.2f} ms "
        f"({speedup:.2f}x) -> {artifact}"
    )
    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            f"recorded speedup {speedup:.2f}x, but the >= 1.5x assertion "
            "needs >= 2 CPU cores (process workers cannot beat the GIL on "
            "a single core)"
        )
    assert speedup >= 1.5, (
        f"process backend speedup {speedup:.2f}x below the 1.5x target "
        f"(threads {threads['sweep_seconds_median'] * 1000:.2f} ms, "
        f"processes {processes['sweep_seconds_median'] * 1000:.2f} ms)"
    )
