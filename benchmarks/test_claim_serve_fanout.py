"""PR 10 claim — single-encode fan-out beats per-client re-encoding.

The streaming gateway encodes each epoch's keyframe/diff exactly once
through the shared :class:`~repro.serve.codec.EpochUpdateCodec` and fans
the same ``bytes`` object out to every subscriber; the naive alternative
re-serialises the update for each client.  This benchmark drives a real
:class:`~repro.serve.gateway.GatewayServer` with 200 concurrent
subscribers over 10 Iridium epochs and reports

* p50/p99 end-to-end delivery latency (``set_state`` publication to the
  client's decoded, replica-applied update), and
* the measured speedup of serving cached encodings versus freshly
  re-encoding the same diff once per client.

The measurements are always written to ``BENCH_serve.json`` (path
overridable via ``BENCH_SERVE_JSON``; client/epoch counts via
``BENCH_SERVE_CLIENTS``/``BENCH_SERVE_EPOCHS``).  The ≥ 5× speedup
assertion is enforced at meaningful fan-out widths (≥ 50 clients); a
scaled-down run records the numbers and skips the assertion.
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.core import (
    ComputeParams,
    Configuration,
    ConstellationCalculation,
    ConstellationDatabase,
    GroundStationConfig,
    NetworkParams,
    ShellConfig,
)
from repro.orbits import GroundStation, ShellGeometry
from repro.serve import EpochSnapshot
from repro.serve.client import SubscriptionClient
from repro.serve.codec import encode_diff_update
from repro.serve.gateway import GatewayServer

#: Concurrent subscribers (acceptance: 200) and streamed epochs.
CLIENTS = int(os.environ.get("BENCH_SERVE_CLIENTS", "200"))
EPOCHS = int(os.environ.get("BENCH_SERVE_EPOCHS", "10"))


def _iridium_configuration() -> Configuration:
    return Configuration(
        shells=(
            ShellConfig(
                name="iridium",
                geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                network=NetworkParams(min_elevation_deg=8.2),
                compute=ComputeParams(vcpu_count=1, memory_mib=1024),
            ),
        ),
        ground_stations=(
            GroundStationConfig(station=GroundStation("hawaii", 21.3, -157.9)),
        ),
        update_interval_s=5.0,
    )


def _stream_load(calculation, database) -> dict:
    """Drive the live fan-out and collect per-delivery latencies."""
    state = calculation.state_at(0.0)
    database.set_state(state)
    publish_times: dict[int, float] = {}
    latencies_ms: list[float] = []
    latencies_lock = threading.Lock()
    final_epoch = 1 + EPOCHS
    finished = []

    def subscriber(host: str, port: int, index: int) -> None:
        with SubscriptionClient(
            host, port, client_id=f"bench-{index}", timeout_s=60.0
        ) as client:
            client.sync_to_epoch(1)
            samples = []
            while client.replica.epoch < final_epoch:
                update = client.recv_update()
                samples.append((update.epoch, time.perf_counter()))
            with latencies_lock:
                latencies_ms.extend(
                    (received - publish_times[epoch]) * 1000.0
                    for epoch, received in samples
                    if epoch in publish_times
                )
                finished.append(client.replica.snapshot())

    with GatewayServer(database) as server:
        host, port = server.address
        threads = [
            threading.Thread(target=subscriber, args=(host, port, index))
            for index in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        # Wait for every subscription to be seeded before the flood.
        deadline = time.monotonic() + 60.0
        while server.statistics()["subscriptions"] < CLIENTS:
            if time.monotonic() > deadline:
                raise RuntimeError("subscribers failed to connect in time")
            time.sleep(0.05)
        for step in range(1, EPOCHS + 1):
            new_state, diff = calculation.diff_since(state, step * 30.0)
            publish_times[database.epoch + 1] = time.perf_counter()
            database.set_state(new_state, diff=diff)
            state = new_state
        for thread in threads:
            thread.join(timeout=120.0)
        assert not any(thread.is_alive() for thread in threads)
        stats = server.statistics()

    # Every client reconstructed the final epoch bit-for-bit.
    reference = EpochSnapshot.from_state(state, final_epoch)
    assert len(finished) == CLIENTS
    assert all(snapshot.same_bits(reference) for snapshot in finished)
    assert stats["encode_count"] == 1 + EPOCHS  # seed keyframe + one per diff

    return {
        "deliveries": len(latencies_ms),
        "delivery_p50_ms": float(np.percentile(latencies_ms, 50)),
        "delivery_p99_ms": float(np.percentile(latencies_ms, 99)),
        "delivery_max_ms": float(np.max(latencies_ms)),
        "evictions": stats["evictions"],
        "encode_count": stats["encode_count"],
    }


def _encode_comparison(calculation) -> dict:
    """Cached single-encode lookups vs re-encoding once per client."""
    database = ConstellationDatabase()
    state = calculation.state_at(0.0)
    database.set_state(state)
    shared_s = 0.0
    reencode_s = 0.0
    for step in range(1, EPOCHS + 1):
        state, diff = calculation.diff_since(state, step * 30.0)
        database.set_state(state, diff=diff)
        epoch = database.epoch

        begin = time.perf_counter()
        first = database.codec.diff_update(epoch, diff=diff)  # the one encode
        for _ in range(CLIENTS - 1):
            update = database.codec.diff_update(epoch)
            assert update.data is first.data
        shared_s += time.perf_counter() - begin

        begin = time.perf_counter()
        for _ in range(CLIENTS):
            encode_diff_update(diff, epoch)
        reencode_s += time.perf_counter() - begin
    return {
        "shared_seconds": shared_s,
        "reencode_seconds": reencode_s,
        "speedup": reencode_s / shared_s,
    }


def test_single_encode_fanout_beats_per_client_reencode():
    calculation = ConstellationCalculation(_iridium_configuration())
    stream = _stream_load(calculation, ConstellationDatabase())
    encode = _encode_comparison(calculation)
    results = {
        "scenario": "iridium-streaming-fanout",
        "clients": CLIENTS,
        "epochs": EPOCHS,
        "cpu_count": os.cpu_count(),
        "stream": stream,
        "encode": encode,
    }
    artifact = os.environ.get("BENCH_SERVE_JSON", "BENCH_serve.json")
    with open(artifact, "w") as handle:
        json.dump(results, handle, indent=2)
    print(
        f"\nstreaming fan-out ({CLIENTS} clients x {EPOCHS} epochs): delivery "
        f"p50 {stream['delivery_p50_ms']:.2f} ms | p99 "
        f"{stream['delivery_p99_ms']:.2f} ms | single-encode speedup "
        f"{encode['speedup']:.1f}x -> {artifact}"
    )
    if CLIENTS < 50:
        pytest.skip(
            f"recorded speedup {encode['speedup']:.1f}x, but the >= 5x "
            "assertion is only meaningful at >= 50 concurrent clients"
        )
    assert encode["speedup"] >= 5.0, (
        f"single-encode fan-out speedup {encode['speedup']:.1f}x below the "
        f"5x target (shared {encode['shared_seconds'] * 1000:.1f} ms, "
        f"re-encode {encode['reencode_seconds'] * 1000:.1f} ms)"
    )
