"""Figs. 9-10 — the DART/Iridium topology of the case study.

Paper description: 100 data buoys in the Pacific send sensor data over the
Iridium constellation (66 satellites, 6 planes, 780 km, polar orbit, 180° arc
of ascending nodes) to 200 ships and islands; because of the 180° spacing no
ISLs exist between the first and last orbital plane.  The benchmark builds
that topology, verifies the seam property and times a constellation update
at the case-study scale (66 satellites + 301 ground stations).
"""

from repro.analysis import render_table
from repro.core import ConstellationCalculation
from repro.scenarios import dart_configuration
from repro.topology import LinkType


def test_fig10_iridium_dart_topology(benchmark):
    config = dart_configuration(buoy_count=100, sink_count=200)
    calculation = ConstellationCalculation(config)

    state = benchmark(calculation.state_at, 0.0)

    isl_links = [link for link in state.graph.links if link.link_type is LinkType.ISL]
    uplinks = [link for link in state.graph.links if link.link_type is LinkType.UPLINK]
    geometry = config.shells[0].geometry

    # Seam check: no ISL connects plane 0 and plane 5.
    per_plane = geometry.satellites_per_plane
    first_plane = set(range(per_plane))
    last_plane = set(range((geometry.planes - 1) * per_plane, geometry.planes * per_plane))
    seam_links = [
        link for link in isl_links
        if (link.node_a in first_plane and link.node_b in last_plane)
        or (link.node_b in first_plane and link.node_a in last_plane)
    ]

    rows = [
        ["satellites", state.node_index.satellite_count, 66],
        ["orbital planes", geometry.planes, 6],
        ["altitude [km]", geometry.altitude_km, 780],
        ["arc of ascending nodes [deg]", geometry.arc_of_ascending_nodes_deg, 180],
        ["ground stations (buoys + sinks + PTWC)", len(config.ground_stations), 301],
        ["inter-satellite links", len(isl_links), "<= 2N - 11 (seam)"],
        ["links across the seam", len(seam_links), 0],
        ["ground-to-satellite links", len(uplinks), "> 0"],
    ]
    print()
    print(render_table(["property", "measured", "paper"], rows,
                       title="Fig. 10 — Iridium/DART topology"))

    assert state.node_index.satellite_count == 66
    assert len(config.ground_stations) == 301
    assert len(seam_links) == 0
    assert len(isl_links) <= 2 * 66 - 11
    assert len(uplinks) > 100
