"""§4.1 — the validator's host resource estimate for the bounding-box setup.

Paper: "While Celestial estimates 137 required CPU cores given satellite
density and bounding box size, we use only 96 CPU cores to test its
over-provisioning capabilities."  The benchmark regenerates the estimate for
the §4 configuration (phase I constellation, West-Africa bounding box) and
verifies the over-provisioning relationship (estimate > available cores)
while memory still fits.
"""

from repro.analysis import render_table
from repro.core import estimate_resources
from repro.scenarios import west_africa_configuration


def test_validator_resource_estimate(benchmark):
    config = west_africa_configuration(duration_s=600.0, shells="all")

    estimate = benchmark(estimate_resources, config)

    rows = [
        ["estimated required CPU cores", round(estimate.required_cores), 137],
        ["available CPU cores (3 x n2-highcpu-32)", estimate.available_cores, 96],
        ["over-provisioning factor", round(estimate.overprovisioning_factor, 2), round(137 / 96, 2)],
        ["peak satellites inside the bounding box", estimate.satellites_in_box, "~60"],
        ["estimated memory [GiB]", round(estimate.required_memory_mib / 1024, 1), "fits in 96 GiB"],
        ["ground station servers", estimate.ground_station_count, 5],
    ]
    print()
    print(render_table(["quantity", "measured", "paper"], rows,
                       title="§4.1 — validator resource estimate for the West-Africa bounding box"))

    # Shape: the estimate exceeds the 96 available cores (over-provisioning is
    # exercised) but is far below emulating the full 4,409-satellite
    # constellation, and the memory allocation still fits on the hosts.
    assert estimate.required_cores > estimate.available_cores
    assert estimate.required_cores < 400
    assert estimate.memory_sufficient
    assert 0 < estimate.satellites_in_box < 300
    assert any("over-provisioning" in warning for warning in estimate.warnings)
