"""Fig. 3 / §4 intro — meetup RTT: 46 ms via the cloud vs 16 ms via a satellite.

Using a satellite server reduces the round-trip time for the most distant of
the three West-African clients from 46 ms (Johannesburg cloud) to about
16 ms over the phase I Starlink network.  The benchmark computes both RTTs
from the constellation state and times the underlying shortest-path queries.
"""

from repro.analysis import render_table
from repro.core import ConstellationCalculation
from repro.scenarios import west_africa_configuration

CLIENTS = ("accra", "abuja", "yaounde")


def _best_satellite_rtt(state, calculation, clients):
    """Worst-client RTT through the best common satellite server."""
    candidate_sets = [
        {(u.shell, u.satellite) for u in state.uplinks_of(client)} for client in clients
    ]
    candidates = set.intersection(*candidate_sets) or set.union(*candidate_sets)
    best = float("inf")
    for shell, satellite in candidates:
        machine = calculation.satellite(shell, satellite)
        worst_client = max(
            state.rtt_ms(calculation.ground_station(client), machine) for client in clients
        )
        best = min(best, worst_client)
    return best


def test_fig03_cloud_vs_satellite_rtt(benchmark):
    config = west_africa_configuration(duration_s=10.0, shells="two-lowest")
    calculation = ConstellationCalculation(config)
    state = calculation.state_at(0.0)
    cloud = calculation.ground_station("johannesburg-cloud")

    def worst_cloud_rtt():
        return max(
            state.rtt_ms(calculation.ground_station(client), cloud) for client in CLIENTS
        )

    cloud_rtt = benchmark(worst_cloud_rtt)
    satellite_rtt = _best_satellite_rtt(state, calculation, CLIENTS)

    rows = [
        ["cloud (Johannesburg)", cloud_rtt, 46.0],
        ["best satellite server", satellite_rtt, 16.0],
    ]
    print()
    print(render_table(
        ["bridge location", "worst-client RTT [ms]", "paper [ms]"],
        rows,
        title="Fig. 3 — meetup server round-trip times",
    ))
    # Shape: the satellite server cuts the RTT by roughly a factor of three.
    assert satellite_rtt < 25.0
    assert 30.0 < cloud_rtt < 60.0
    assert cloud_rtt / satellite_rtt > 2.0
