"""Ablation — SGP4 vs the vectorised Kepler+J2 propagator.

Celestial extends SILLEO-SCNS with SGP4 support (§3.1).  This reproduction
offers both an SGP4 implementation and a vectorised Kepler+J2 propagator for
constellation-scale updates.  The ablation verifies that for the circular
LEO shells used in the paper the two produce nearly identical positions and
therefore the same network characteristics, and compares their runtime.
"""

import numpy as np

from repro.analysis import render_table
from repro.orbits import Shell, ShellGeometry


def test_propagator_ablation(benchmark):
    geometry = ShellGeometry(6, 11, 780.0, 86.4, 180.0)
    kepler_shell = Shell(geometry, propagator="kepler_j2")
    sgp4_shell = Shell(geometry, propagator="sgp4")

    def kepler_positions():
        return kepler_shell.positions_eci(600.0)

    kepler = benchmark(kepler_positions)
    sgp4 = sgp4_shell.positions_eci(600.0)

    position_difference = np.linalg.norm(kepler - sgp4, axis=1)
    # Pairwise distances drive link delays; compare a sample of them.
    rng = np.random.default_rng(0)
    pairs = rng.integers(0, len(kepler_shell), size=(200, 2))
    kepler_distances = np.linalg.norm(kepler[pairs[:, 0]] - kepler[pairs[:, 1]], axis=1)
    sgp4_distances = np.linalg.norm(sgp4[pairs[:, 0]] - sgp4[pairs[:, 1]], axis=1)
    delay_error_ms = np.abs(kepler_distances - sgp4_distances) / 299_792.458 * 1000.0

    rows = [
        ["max position difference [km]", float(position_difference.max())],
        ["mean position difference [km]", float(position_difference.mean())],
        ["max pairwise-distance delay error [ms]", float(delay_error_ms.max())],
        ["mean pairwise-distance delay error [ms]", float(delay_error_ms.mean())],
    ]
    print()
    print(render_table(["metric", "value"], rows,
                       title="Ablation — Kepler+J2 vs SGP4 after 10 simulated minutes"))

    # The propagators agree to within tens of kilometres, i.e. link delays
    # differ by well under a millisecond — far below the effects studied.
    assert position_difference.max() < 60.0
    assert delay_error_ms.max() < 0.3
