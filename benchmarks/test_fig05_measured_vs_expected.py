"""Fig. 5 — measured vs expected end-to-end latency (Abuja to Accra, cloud bridge).

Paper result: the measured end-to-end latency follows the expected value
(simulated network distance plus the 1.37 ms median processing delay); both
curves follow the same general trend, with spikes caused by the coarse 5 s
tracking interval and processing jitter.  The benchmark compares the 1 s
rolling median of the measurements with the expected series.
"""

import numpy as np


def test_fig05_measured_tracks_expected(benchmark, meetup_cloud_run):
    results = meetup_cloud_run.results
    measured = results.pair("abuja", "accra")
    expected = results.expected_pair("abuja", "accra")
    assert len(measured) > 100
    assert len(expected) > 5

    def rolling():
        return measured.rolling_median(window_s=1.0)

    times, medians = benchmark(rolling)
    expected_mean = expected.mean()

    print()
    print("Fig. 5 — Abuja -> Accra via the Johannesburg cloud bridge")
    print(f"  measured samples: {len(measured)}, rolling-median points: {len(medians)}")
    print(f"  measured rolling median: {medians.min():.2f} .. {medians.max():.2f} ms "
          f"(mean {medians.mean():.2f} ms)")
    print(f"  expected (network + 1.37 ms processing): mean {expected_mean:.2f} ms")
    preview = ", ".join(f"({t:.0f}s, {m:.1f}ms)" for t, m in zip(times[:6], medians[:6]))
    print(f"  first rolling-median points: {preview}")

    # The measured medians must track the expected value closely: same general
    # trend, no systematic offset beyond a few milliseconds of jitter.
    assert abs(medians.mean() - expected_mean) < 5.0
    assert np.all(medians > expected_mean - 10.0)
    assert np.all(medians < expected_mean + 15.0)

    # Where the expected series changes substantially between tracking epochs
    # (several milliseconds, as in the paper's 10-minute run), the measured
    # medians must move in the same direction; for short runs with a nearly
    # constant expected value, jitter dominates and correlation is not
    # meaningful.
    expected_values = expected.values()
    if expected_values.size >= 2 and np.ptp(expected_values) > 3.0:
        correlation = np.corrcoef(
            np.interp(expected.times(), times, medians), expected_values
        )[0, 1]
        print(f"  correlation between expected and measured medians: {correlation:.2f}")
        assert correlation > 0.3
