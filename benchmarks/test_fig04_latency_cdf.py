"""Fig. 4 — CDFs of end-to-end latency per client pair, satellite vs cloud bridge.

Paper result: for at least 80% of the video conference, end-to-end latency is
below 16 ms with a satellite bridge and below 46 ms with the Johannesburg
cloud bridge.  The benchmark regenerates the distribution statistics per
client pair from the emulation runs and times the CDF aggregation.
"""

from repro.analysis import LatencySeries, render_table

PAIRS = [("accra", "abuja"), ("accra", "yaounde"), ("abuja", "yaounde")]


def _pair_series(results, source, destination) -> LatencySeries:
    return results.pair(source, destination).merged_with(results.pair(destination, source))


def test_fig04_latency_cdfs(benchmark, meetup_satellite_run, meetup_cloud_run):
    satellite = meetup_satellite_run.results
    cloud = meetup_cloud_run.results

    def aggregate():
        rows = []
        for source, destination in PAIRS:
            sat_series = _pair_series(satellite, source, destination)
            cloud_series = _pair_series(cloud, source, destination)
            rows.append([
                f"{source} <-> {destination}",
                sat_series.median(),
                sat_series.percentile(80),
                100.0 * sat_series.fraction_below(16.0),
                cloud_series.median(),
                cloud_series.percentile(80),
                100.0 * cloud_series.fraction_below(46.0),
            ])
        return rows

    rows = benchmark(aggregate)
    print()
    print(render_table(
        ["client pair", "sat median [ms]", "sat p80 [ms]", "sat % <= 16ms",
         "cloud median [ms]", "cloud p80 [ms]", "cloud % <= 46ms"],
        rows,
        title="Fig. 4 — end-to-end latency distributions (satellite vs cloud bridge)",
    ))

    for row in rows:
        _, sat_median, sat_p80, sat_below, cloud_median, cloud_p80, cloud_below = row
        # Paper shape: >= 80% of samples below 16 ms (satellite) / 46 ms (cloud).
        assert sat_below >= 80.0
        assert cloud_below >= 60.0
        assert sat_p80 <= 16.0 + 2.0
        assert sat_median < cloud_median

    satellite_all = satellite.all_measurements()
    cloud_all = cloud.all_measurements()
    print(f"overall: satellite median {satellite_all.median():.1f} ms vs "
          f"cloud median {cloud_all.median():.1f} ms "
          f"({cloud_all.median() / satellite_all.median():.1f}x improvement; paper ~3x)")
    assert cloud_all.median() / satellite_all.median() > 2.0
