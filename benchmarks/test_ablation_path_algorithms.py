"""Ablation — Dijkstra vs Floyd-Warshall shortest paths.

Celestial uses efficient implementations of Dijkstra's algorithm and the
Floyd-Warshall algorithm to calculate shortest network paths and end-to-end
latency (§3.1).  The ablation verifies that both produce identical
end-to-end delays on the case-study topology and compares their runtime
(Dijkstra from the ground stations scales to Starlink-sized constellations,
Floyd-Warshall computes all pairs and suits small topologies).
"""

import time

import numpy as np

from repro.analysis import render_table
from repro.core import ConstellationCalculation
from repro.scenarios import dart_configuration
from repro.topology import ShortestPaths


def test_path_algorithm_ablation(benchmark):
    config = dart_configuration(buoy_count=20, sink_count=40)
    calculation = ConstellationCalculation(config)
    state = calculation.state_at(0.0)
    graph = state.graph
    sources = list(state.node_index.ground_station_indices())

    def dijkstra():
        return ShortestPaths(graph, sources=sources, method="dijkstra")

    dijkstra_paths = benchmark(dijkstra)

    start = time.perf_counter()
    floyd_paths = ShortestPaths(graph, sources=sources, method="floyd-warshall")
    floyd_seconds = time.perf_counter() - start

    differences = []
    for source in sources[:10]:
        for target in range(len(state.node_index)):
            a = dijkstra_paths.delay_ms(source, target)
            b = floyd_paths.delay_ms(source, target)
            if np.isfinite(a) or np.isfinite(b):
                differences.append(abs(a - b) if np.isfinite(a) and np.isfinite(b) else np.inf)

    rows = [
        ["nodes in the graph", len(state.node_index)],
        ["links in the graph", graph.total_links()],
        ["source nodes (ground stations)", len(sources)],
        ["max |delay difference| [ms]", float(np.max(differences))],
        ["Dijkstra mean runtime [ms]", benchmark.stats["mean"] * 1000.0],
        ["Floyd-Warshall runtime [ms]", floyd_seconds * 1000.0],
    ]
    print()
    print(render_table(["metric", "value"], rows,
                       title="Ablation — Dijkstra vs Floyd-Warshall on the DART topology"))
    assert float(np.max(differences)) < 1e-9
