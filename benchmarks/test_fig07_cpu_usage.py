"""Fig. 7 — CPU usage on one Celestial host over the course of an experiment.

Paper result: a CPU spike when the Machine Manager sets up the host and the
Firecracker microVMs boot, then below 5% while clients prepare, around 10%
total microVM usage during the experiment, and an average Machine Manager
overhead of only ~0.2% with slightly higher load at every constellation
update.  The benchmark regenerates the host CPU trace of the busiest host of
the §4 satellite run.
"""

import numpy as np

from repro.analysis import render_table


def _busiest_host_trace(testbed):
    traces = testbed.resource_traces()
    return max(traces.items(), key=lambda item: item[1].mean_cpu_percent())


def test_fig07_host_cpu_usage(benchmark, meetup_satellite_run):
    testbed = meetup_satellite_run.testbed
    host_index, trace = _busiest_host_trace(testbed)
    assert len(trace) > 10

    def summarise():
        return {
            "peak": trace.peak_cpu_percent(),
            "steady_mean": trace.mean_cpu_percent(after_s=10.0),
            "manager_mean": float(np.mean(trace.machine_manager_cpu_percent()[1:])),
            "processes": int(trace.firecracker_processes()[-1]),
        }

    summary = benchmark(summarise)
    rows = [
        ["setup/boot peak", summary["peak"], "spike at start"],
        ["steady-state total", summary["steady_mean"], "~10%"],
        ["machine manager mean", summary["manager_mean"], "~0.2%"],
        ["firecracker processes", summary["processes"], "tens of microVMs"],
    ]
    print()
    print(render_table(
        ["metric", f"host {host_index} measured [%]", "paper"],
        rows,
        title="Fig. 7 — CPU usage on the busiest Celestial host",
    ))

    # Shape: the setup/boot phase dominates, steady state stays far below the
    # host capacity (over-provisioning works), the manager overhead is tiny.
    assert summary["peak"] > summary["steady_mean"]
    assert summary["steady_mean"] < 40.0
    assert summary["manager_mean"] < 2.0
    assert summary["processes"] > 5
