"""§4.2 cost table — Celestial vs one cloud VM per satellite.

Paper result: a 15-minute experiment on three hosts plus one coordinator
costs $3.30 on Google Cloud Platform, whereas creating 4,409 f1-micro
instances (one per satellite server) costs at least $539.66.  Absolute list
prices differ from the paper's billing, but the comparison — Celestial is
orders of magnitude cheaper — must hold.
"""

from repro.analysis import cost_comparison, render_table
from repro.analysis.cost import GCPPriceTable, celestial_experiment_cost, per_satellite_vm_cost


def test_cost_comparison_table(benchmark):
    comparison = benchmark(cost_comparison)

    rows = [
        ["Celestial (3 hosts + coordinator)", comparison["celestial_usd"],
         comparison["paper_celestial_usd"]],
        ["one f1-micro per satellite (4,409 VMs)", comparison["per_satellite_vm_usd"],
         comparison["paper_per_satellite_vm_usd"]],
        ["savings factor", comparison["savings_factor"],
         round(539.66 / 3.30, 1)],
    ]
    print()
    print(render_table(
        ["deployment", "measured [USD / 15 min]", "paper [USD / 15 min]"],
        rows,
        title="§4.2 — cost of a 15-minute experiment",
    ))

    assert comparison["celestial_usd"] < comparison["per_satellite_vm_usd"]
    assert comparison["savings_factor"] > 5.0
    # Longer experiments scale linearly for both alternatives.
    hour = celestial_experiment_cost(minutes=60.0)
    assert hour > celestial_experiment_cost(minutes=15.0)
    assert per_satellite_vm_cost(minutes=60.0) > per_satellite_vm_cost(minutes=15.0)
    # A custom price table is honoured (e.g. to plug in current prices).
    custom = GCPPriceTable(prices_per_hour={"n2-highcpu-32": 1.0, "c2-standard-16": 1.0,
                                            "f1-micro": 0.01})
    assert celestial_experiment_cost(price_table=custom, minutes=60.0) == 4.0
