"""Ablation — effect of the bounding box on testbed footprint.

The bounding box suspends microVMs of satellites outside a geographic area
to save host resources (§3.3); §6.3 notes the alternative of covering the
whole Earth at higher cost.  The ablation runs the §4 scenario with and
without the bounding box and compares how many microVMs are created and how
much memory they reserve.
"""

from repro import Celestial
from repro.analysis import render_table
from repro.scenarios import west_africa_configuration

_DURATION_S = 30.0


def _run(use_bounding_box: bool) -> Celestial:
    config = west_africa_configuration(
        duration_s=_DURATION_S, shells="lowest", use_bounding_box=use_bounding_box
    )
    testbed = Celestial(config)
    testbed.run(until=_DURATION_S)
    return testbed


def test_bounding_box_ablation(benchmark):
    with_box = benchmark.pedantic(_run, args=(True,), rounds=1, iterations=1)
    without_box = _run(False)

    def reserved_gib(testbed):
        return sum(host.reserved_memory_mib() for host in testbed.hosts) / 1024.0

    rows = [
        ["microVMs created", with_box.booted_machines(), without_box.booted_machines()],
        ["reserved microVM memory [GiB]", reserved_gib(with_box), reserved_gib(without_box)],
        ["suspensions during the run",
         sum(m.suspension_count for m in with_box.managers),
         sum(m.suspension_count for m in without_box.managers)],
        ["estimated required cores",
         with_box.resource_estimate.required_cores,
         without_box.resource_estimate.required_cores],
    ]
    print()
    print(render_table(
        ["metric", "with bounding box", "without (whole Earth)"],
        rows,
        title="Ablation — bounding box vs whole-Earth emulation (§4 scenario, lowest shell)",
    ))

    assert with_box.booted_machines() < without_box.booted_machines() / 5
    assert with_box.resource_estimate.required_cores < without_box.resource_estimate.required_cores
    assert without_box.booted_machines() == 1584 + 5
