"""Fig. 1 — overview of the planned phase I Starlink constellation.

The paper's Fig. 1 visualises the five shells of the phase I constellation
(1,584 satellites at 550 km, 1,600 at 1,110 km, 400 at 1,130 km, 375 at
1,275 km, 450 at 1,325 km) together with their ISLs and possible ground
links.  This benchmark regenerates the underlying data: the shell table and
an exportable snapshot of every satellite position and link, and times the
snapshot generation (the work the animation component performs per frame).
"""

from repro.analysis import render_table
from repro.core import ConstellationCalculation, constellation_snapshot, snapshot_to_geojson
from repro.scenarios import starlink_phase1_shells, west_africa_configuration


def test_fig01_constellation_overview(benchmark):
    shells = starlink_phase1_shells()
    rows = [
        [
            shell.name,
            shell.geometry.planes,
            shell.geometry.satellites_per_plane,
            shell.geometry.total_satellites,
            shell.geometry.altitude_km,
            shell.geometry.inclination_deg,
        ]
        for shell in shells
    ]
    print()
    print(render_table(
        ["shell", "planes", "sats/plane", "total", "altitude [km]", "inclination [deg]"],
        rows,
        title="Fig. 1 — phase I Starlink shells",
    ))
    totals = [shell.geometry.total_satellites for shell in shells]
    assert totals == [1584, 1600, 400, 375, 450]
    assert sum(totals) == 4409

    config = west_africa_configuration(duration_s=10.0, shells="all")
    calculation = ConstellationCalculation(config)
    state = calculation.state_at(0.0)

    snapshot = benchmark(constellation_snapshot, state, False)
    assert len(snapshot["satellites"]) == 4409
    altitudes = sorted({round(sat["altitude_km"], -1) for sat in snapshot["satellites"]})
    print(f"distinct shell altitudes in the snapshot: {altitudes}")
    assert any(abs(altitude - 550.0) < 15.0 for altitude in altitudes)
    assert any(abs(altitude - 1325.0) < 15.0 for altitude in altitudes)

    geojson = snapshot_to_geojson(state, shell=0)
    satellite_features = [
        feature for feature in geojson["features"]
        if feature["properties"]["kind"] == "satellite"
    ]
    assert len(satellite_features) == 1584
