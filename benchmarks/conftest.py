"""Shared fixtures for the benchmark harness.

The heavy emulation runs (the §4 meetup experiment and the §5 DART case
study) are executed once per session and shared by the figure benchmarks;
individual benchmarks then time the relevant computation (constellation
updates, CDF/percentile aggregation, ...) and print the rows/series the
paper reports.

Scaling note: wall-clock budgets force shorter simulated durations and a
coarser packet pacing than the paper's 10/15-minute experiments; the
statistics compared against the paper are latency distributions, which are
stable under this scaling (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro import Celestial
from repro.apps import DartExperiment, MeetupExperiment, VideoStreamParams
from repro.scenarios import dart_configuration, west_africa_configuration

#: Simulated duration of the meetup runs [s] (paper: 600 s).
MEETUP_DURATION_S = 120.0
#: Packet pacing of the video stream [s] (paper: 0.02 s).
MEETUP_PACKET_INTERVAL_S = 0.1
#: Simulated duration of the DART runs [s] (paper: 900 s).
DART_DURATION_S = 90.0
#: DART scale (paper: 100 buoys, 200 sinks).
DART_BUOYS = 40
DART_SINKS = 80


@dataclass
class MeetupRun:
    """One §4 experiment run plus the testbed it ran on."""

    mode: str
    testbed: Celestial
    results: object


def _run_meetup(mode: str, seed: int = 0, duration_s: float = MEETUP_DURATION_S) -> MeetupRun:
    config = west_africa_configuration(
        duration_s=duration_s, shells="two-lowest", seed=seed
    )
    testbed = Celestial(config, usage_sample_interval_s=5.0)
    experiment = MeetupExperiment(
        testbed,
        mode=mode,
        stream=VideoStreamParams(packet_interval_s=MEETUP_PACKET_INTERVAL_S),
    )
    results = experiment.run()
    return MeetupRun(mode=mode, testbed=testbed, results=results)


@pytest.fixture(scope="session")
def meetup_satellite_run() -> MeetupRun:
    """The §4 experiment with the bridge on the optimal satellite server."""
    return _run_meetup("satellite")


@pytest.fixture(scope="session")
def meetup_cloud_run() -> MeetupRun:
    """The §4 experiment with the bridge in the Johannesburg data centre."""
    return _run_meetup("cloud")


@pytest.fixture(scope="session")
def meetup_cloud_repetitions() -> list[MeetupRun]:
    """Three identically-seeded repetitions of the cloud run (Fig. 6)."""
    return [_run_meetup("cloud", seed=0, duration_s=60.0) for _ in range(3)]


@dataclass
class DartRun:
    """One §5 experiment run plus the testbed it ran on."""

    deployment: str
    testbed: Celestial
    results: object


def _run_dart(deployment: str) -> DartRun:
    config = dart_configuration(
        deployment=deployment,
        buoy_count=DART_BUOYS,
        sink_count=DART_SINKS,
        duration_s=DART_DURATION_S,
    )
    testbed = Celestial(config)
    experiment = DartExperiment(testbed, deployment=deployment, group_count=10)
    return DartRun(deployment=deployment, testbed=testbed, results=experiment.run())


@pytest.fixture(scope="session")
def dart_central_run() -> DartRun:
    """The §5 experiment with central processing at the PTWC ground station."""
    return _run_dart("central")


@pytest.fixture(scope="session")
def dart_satellite_run() -> DartRun:
    """The §5 experiment with on-satellite processing."""
    return _run_dart("satellite")
