"""§5.2 — processing latency is similar in both deployments, around 2 ms.

"Note that processing latency is similar between both deployments, at an
average of 2 ms."  The benchmark checks the per-inference processing delay
recorded by both deployments and times one NumPy LSTM forward pass, the
computation that processing delay represents.
"""

import numpy as np

from repro.analysis import render_table
from repro.apps.dart.lstm import StackedLSTM


def test_processing_latency_about_two_ms(benchmark, dart_central_run, dart_satellite_run):
    central = dart_central_run.results.processing_ms
    satellite = dart_satellite_run.results.processing_ms
    assert len(central) > 100
    assert len(satellite) > 100

    lstm = StackedLSTM(input_size=1, hidden_sizes=(16, 16))
    window = np.linspace(1010.0, 1015.0, 16)[:, None]
    benchmark(lstm.forward, window)

    rows = [
        ["central (8-core ground station)", central.mean(), central.std()],
        ["satellite (1-core satellite server)", satellite.mean(), satellite.std()],
    ]
    print()
    print(render_table(
        ["deployment", "mean processing [ms]", "std [ms]"],
        rows,
        title="§5.2 — inference processing latency (paper: ~2 ms in both deployments)",
    ))
    assert 1.0 <= central.mean() <= 4.0
    assert 1.0 <= satellite.mean() <= 4.0
    assert abs(central.mean() - satellite.mean()) < 2.0
