"""Fig. 6 — reproducibility of the experiment across three repetitions.

Paper result: the measured end-to-end latency from Yaoundé to Abuja via the
cloud bridge follows the same trend across the three repetitions; even the
latency spike after the first minute reproduces.  Celestial offers a
repeatable environment because users provide a fixed starting point for the
emulation.  Here the three repetitions use the same configuration and seed
and must therefore produce identical traces.
"""

import numpy as np

from repro.analysis import render_table


def test_fig06_repetitions_identical(benchmark, meetup_cloud_repetitions):
    series = [run.results.pair("yaounde", "abuja") for run in meetup_cloud_repetitions]
    assert all(len(s) > 100 for s in series)

    def rolling_medians():
        return [s.rolling_median(window_s=1.0)[1] for s in series]

    medians = benchmark(rolling_medians)

    rows = [
        [f"run {index + 1}", len(series[index]), series[index].median(),
         series[index].percentile(80), float(np.max(medians[index]))]
        for index in range(len(series))
    ]
    print()
    print(render_table(
        ["repetition", "samples", "median [ms]", "p80 [ms]", "max rolling median [ms]"],
        rows,
        title="Fig. 6 — Yaoundé -> Abuja via the cloud bridge, three repetitions",
    ))

    # With a pinned epoch and seed, repetitions are exactly reproducible.
    for other in series[1:]:
        np.testing.assert_allclose(series[0].values(), other.values())
        np.testing.assert_allclose(series[0].times(), other.times())
    reference = medians[0]
    for other in medians[1:]:
        np.testing.assert_allclose(reference, other)
