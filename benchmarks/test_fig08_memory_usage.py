"""Fig. 8 — memory usage on one Celestial host over the course of an experiment.

Paper result: the Machine Manager uses up to 4.5% of host memory after the
demanding initial setup; Firecracker microVM memory grows linearly with the
number of booted microVMs — regardless of suspension — because each keeps a
virtio memory device, and total usage stays below ~20% on the 32 GB hosts.
"""

import numpy as np

from repro.analysis import render_table


def test_fig08_host_memory_usage(benchmark, meetup_satellite_run):
    testbed = meetup_satellite_run.testbed
    traces = testbed.resource_traces()
    host_index, trace = max(
        traces.items(), key=lambda item: item[1].peak_memory_percent()
    )
    assert len(trace) > 10

    def summarise():
        microvm_memory = trace.microvm_memory_percent()
        processes = trace.firecracker_processes()
        correlation = float(np.corrcoef(processes, microvm_memory)[0, 1]) if len(trace) > 2 else 1.0
        return {
            "manager_peak": float(np.max([s.machine_manager_memory_percent for s in trace.samples])),
            "microvm_final": float(microvm_memory[-1]),
            "total_peak": trace.peak_memory_percent(),
            "processes_final": int(processes[-1]),
            "correlation": correlation,
        }

    summary = benchmark(summarise)
    rows = [
        ["machine manager peak", summary["manager_peak"], "<= 4.5%"],
        ["microVM memory at end", summary["microvm_final"], "grows with booted microVMs"],
        ["total peak", summary["total_peak"], "< 20%"],
        ["booted microVM processes", summary["processes_final"], "tens"],
        ["corr(processes, microVM memory)", summary["correlation"], "~1 (linear growth)"],
    ]
    print()
    print(render_table(
        ["metric", f"host {host_index} measured", "paper"],
        rows,
        title="Fig. 8 — memory usage on the fullest Celestial host",
    ))

    assert summary["manager_peak"] <= 4.5 + 1e-9
    # Shape: memory stays well below the host capacity even though the host
    # carries the 4 GB clients; the paper's hosts stay below ~20%.
    assert summary["total_peak"] < 60.0
    assert summary["correlation"] > 0.8
    # Memory is monotone non-decreasing: suspended microVMs keep their memory.
    microvm_memory = trace.microvm_memory_percent()
    assert np.all(np.diff(microvm_memory) >= -1e-9)
