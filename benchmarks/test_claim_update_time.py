"""§3.1 claim — a constellation-calculation update completes within one second.

"In our tests, these calculations could be completed within one second even
on a standard laptop."  The first benchmark times one full update (satellite
positions, ISL topology with line-of-sight checks, ground-station uplinks
and shortest paths) for the complete 4,409-satellite phase I Starlink
constellation with the §4 ground stations.

The second benchmark exercises the differential pipeline: for steady-state
epochs (consecutive updates at the configured interval, where only a
handful of uplinks appear/disappear) ``diff_since`` must beat the
full-rebuild ``state_at`` path while producing byte-identical state — it
reuses the previous epoch's certified visibility bounds, edge-structure
caches and CSR delay-matrix template instead of recomputing them.

The third benchmark breaks down the incremental shortest-path engine
(PR 3): a cold ``csgraph`` solve versus the engine's none / repair
dispatch, measured end-to-end against the PR 2 code paths
(:meth:`ConstellationCalculation.pr2_baseline`: cold per-epoch solves,
exact geodetic bounding-box test, eager uplink tables).  It asserts the
two hard properties of the engine — quiet steady-state epochs run ≥ 1.5×
faster than the PR 2 baseline with **zero** Dijkstra solver calls, and
full-churn epochs never regress materially (the adaptive guard degrades
to cold-solve cost) — and emits the measurements as a ``BENCH_paths.json``
artifact (path via the ``BENCH_PATHS_JSON`` environment variable) so the
perf trajectory is tracked across PRs.

The fourth benchmark targets churn epochs themselves (PR 7): a prebuilt
Starlink ISL-flicker chain (a couple of inter-satellite links drop out
each epoch and the previous epoch's casualties return) advanced twice
through identical diffs — once with the bounded regional re-solve kernel
(:mod:`repro.topology._kernels`) and once with ``kernel_backend=None``,
the previous guarded path that degrades such epochs to cold solves.  The
kernel leg must finish its median epoch at least twice as fast.  Its
measurements merge into the same ``BENCH_paths.json`` under a
``churn_epochs`` key.

The fifth benchmark scales the table count (PR 8): the same prebuilt
ISL-flicker chain advanced with 64 carried single-source tables plus the
ground-station table — once through one :meth:`PathEngine.advance_all`
call per epoch (shared per-epoch work computed once, every violated row
stacked into one kernel invocation) and once through the per-table
``advance`` loop.  The batched leg must finish its median epoch at least
twice as fast; measurements merge into ``BENCH_paths.json`` under an
``all_pairs`` key.
"""

import itertools
import json
import os
import time as wallclock

import numpy as np

from repro.core import ConstellationCalculation
from repro.scenarios import west_africa_configuration
from repro.topology import NetworkGraph, PathEngine, ShortestPaths
from repro.topology import _kernels

_times = itertools.count(start=1)


def _merge_artifact(section, results):
    """Merge ``results`` under ``section`` in the shared BENCH_paths.json.

    Both path benchmarks write to one artifact, so each reads the
    existing file (if any) and updates only its own section — CI can run
    them in either order, or alone.
    """
    artifact = os.environ.get("BENCH_PATHS_JSON")
    if not artifact:
        return
    payload = {}
    if os.path.exists(artifact):
        try:
            with open(artifact) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = {}
    payload[section] = results
    with open(artifact, "w") as handle:
        json.dump(payload, handle, indent=2)


def test_constellation_update_under_one_second(benchmark):
    config = west_africa_configuration(duration_s=600.0, shells="all")
    calculation = ConstellationCalculation(config)

    def one_update():
        return calculation.state_at(float(next(_times)) * config.update_interval_s)

    state = benchmark(one_update)
    assert state.node_index.satellite_count == 4409
    assert state.graph.total_links() > 8000
    mean_seconds = benchmark.stats["mean"]
    print(f"\nmean update duration for 4,409 satellites: {mean_seconds * 1000:.1f} ms "
          f"(paper claim: < 1 s)")
    assert mean_seconds < 1.0


def test_diff_update_beats_full_rebuild():
    """Steady-state diff epochs must be faster than full rebuilds (full Starlink)."""
    config = west_africa_configuration(duration_s=3600.0, shells="all")
    calculation = ConstellationCalculation(config)
    interval = config.update_interval_s
    rounds = 25

    # Warm-up: first full snapshot plus one epoch of each path so caches,
    # visibility bounds and imports are all primed.
    previous = calculation.state_at(0.0)
    calculation.state_at(interval)
    previous, _ = calculation.diff_since(previous, interval)

    full_seconds = []
    for step in range(2, rounds + 2):
        started = wallclock.perf_counter()
        calculation.state_at(step * interval)
        full_seconds.append(wallclock.perf_counter() - started)

    diff_seconds = []
    churn = []
    for step in range(2, rounds + 2):
        started = wallclock.perf_counter()
        previous, diff = calculation.diff_since(previous, step * interval)
        diff_seconds.append(wallclock.perf_counter() - started)
        churn.append(diff.topology.structural_change_count)

    full_median = float(np.median(full_seconds))
    diff_median = float(np.median(diff_seconds))
    mean_churn = float(np.mean(churn))
    total_links = previous.graph.total_links()
    print(
        f"\nfull rebuild: {full_median * 1000:.2f} ms | diff path: "
        f"{diff_median * 1000:.2f} ms ({full_median / diff_median:.2f}x) | mean churn "
        f"{mean_churn:.1f} of {total_links} links per {interval:.0f} s epoch"
    )
    # Steady state: the structural churn is a tiny fraction of the edge set.
    assert mean_churn < total_links * 0.01
    # The differential path must win on wall-clock time; medians keep the
    # comparison robust to scheduler noise on shared CI runners.
    assert diff_median < full_median


def test_path_engine_breakdown_and_steady_state_speedup():
    """PR 3 path-engine claims: breakdown, zero-solve reuse, ≥1.5× steady state."""
    config = west_africa_configuration(
        duration_s=3600.0, shells="all", update_interval_s=1.0
    )
    interval = config.update_interval_s
    rounds = 20

    engine_calc = ConstellationCalculation(config)
    baseline_calc = ConstellationCalculation.pr2_baseline(config)

    # Warm-up: first full snapshot plus one diff epoch on each side, so
    # caches, visibility bounds and imports are all primed.
    engine_state = engine_calc.state_at(0.0)
    engine_state, _ = engine_calc.diff_since(engine_state, interval)
    baseline_state = baseline_calc.state_at(0.0)
    baseline_state, _ = baseline_calc.diff_since(baseline_state, interval)
    engine_calc.path_engine.reset_stats()

    def chain(calc, state):
        seconds = []
        for step in range(2, rounds + 2):
            started = wallclock.perf_counter()
            state, _ = calc.diff_since(state, step * interval)
            seconds.append(wallclock.perf_counter() - started)
        return state, float(np.median(seconds)) * 1000.0

    engine_state, engine_epoch_ms = chain(engine_calc, engine_state)
    baseline_state, baseline_epoch_ms = chain(baseline_calc, baseline_state)
    churn_stats = engine_calc.path_engine.stats.snapshot()

    # Steady-state reuse epochs: advancing without observable change (the
    # "none" leg of the dispatch) must perform ZERO Dijkstra solver calls
    # and beat the PR 2 baseline epoch by ≥ 1.5×.
    time_s = (rounds + 1) * interval
    solver_calls_before = engine_calc.path_engine.stats.solver_calls
    reuse_seconds = []
    for _ in range(5):
        started = wallclock.perf_counter()
        engine_state, diff = engine_calc.diff_since(engine_state, time_s)
        reuse_seconds.append(wallclock.perf_counter() - started)
        assert diff.topology.is_empty
    reuse_epoch_ms = float(np.median(reuse_seconds)) * 1000.0
    assert engine_calc.path_engine.stats.solver_calls == solver_calls_before

    # Path-layer breakdown: cold solve vs the engine's empty-diff advance.
    graph = engine_state.graph
    sources = engine_state.paths.sources
    started = wallclock.perf_counter()
    for _ in range(5):
        ShortestPaths(graph, sources=sources)
    cold_solve_ms = (wallclock.perf_counter() - started) / 5 * 1000.0
    engine = engine_calc.path_engine
    clone_diff = graph.diff_from(graph)
    started = wallclock.perf_counter()
    for _ in range(5):
        engine.advance(engine_state.paths, graph, clone_diff)
    empty_advance_ms = (wallclock.perf_counter() - started) / 5 * 1000.0

    results = {
        "scenario": "west-africa meetup, full phase-I Starlink (4,409 satellites)",
        "update_interval_s": interval,
        "path_sources": len(sources),
        "cold_solve_ms": cold_solve_ms,
        "empty_advance_ms": empty_advance_ms,
        "engine_epoch_ms": engine_epoch_ms,
        "baseline_epoch_ms": baseline_epoch_ms,
        "steady_reuse_epoch_ms": reuse_epoch_ms,
        "speedup_steady_reuse": baseline_epoch_ms / reuse_epoch_ms,
        "speedup_full_churn": baseline_epoch_ms / engine_epoch_ms,
        "engine_stats": churn_stats,
    }
    print()
    print(
        f"cold solve {cold_solve_ms:.2f} ms | empty-diff advance "
        f"{empty_advance_ms:.3f} ms ({cold_solve_ms / empty_advance_ms:.0f}x)"
    )
    print(
        f"epoch update — PR 2 baseline {baseline_epoch_ms:.2f} ms | engine "
        f"(churn) {engine_epoch_ms:.2f} ms ({results['speedup_full_churn']:.2f}x) "
        f"| engine (steady reuse) {reuse_epoch_ms:.2f} ms "
        f"({results['speedup_steady_reuse']:.2f}x)"
    )
    _merge_artifact("steady_state", results)

    # The engine's empty-diff advance is (near-)free compared to a solve.
    assert empty_advance_ms * 5.0 < cold_solve_ms
    # Steady-state epochs beat the PR 2 baseline by a clear margin.
    assert reuse_epoch_ms * 1.5 < baseline_epoch_ms
    # Genuine wholesale route churn (every ISL delay moves every epoch and
    # handovers re-hang whole regions) is solver work no matter what; the
    # adaptive guard must keep the engine at cold-solve parity there.
    assert engine_epoch_ms < baseline_epoch_ms * 1.25


def test_churn_epoch_flicker_speedup():
    """PR 7 kernel claim: ISL-flicker epochs run ≥ 2× the guarded path."""
    drops_per_epoch = 2
    epochs = 60

    config = west_africa_configuration(duration_s=600.0, shells="two-lowest")
    calculation = ConstellationCalculation(config)
    full = calculation.state_at(0.0).graph
    sources = list(calculation.node_index.ground_station_indices())
    index = full.index
    total = full.total_links()
    isl_edges = np.flatnonzero(full.link_type_codes == 0)

    # Prebuild the chain so both legs advance through *identical* graphs
    # and diffs and only the engine dispatch is on the clock.  Each epoch
    # cuts its failures from the full graph, so the previous epoch's
    # failed links come back — link flicker, not monotone decay.
    rng = np.random.default_rng(20220711)
    graphs = [full]
    for _ in range(epochs):
        failed = rng.choice(isl_edges, size=drops_per_epoch, replace=False)
        alive = np.setdiff1d(np.arange(total), failed)
        graphs.append(NetworkGraph.from_edge_arrays(
            index,
            full.node_a[alive], full.node_b[alive],
            full.distances_km[alive], full.delays_ms[alive],
            full.bandwidths_kbps[alive], full.link_type_codes[alive],
        ))
    diffs = [graphs[i + 1].diff_from(graphs[i]) for i in range(epochs)]

    def leg(backend):
        engine = PathEngine(sources=sources, kernel_backend=backend)
        table = engine.solve(graphs[0])
        seconds = []
        for i, diff in enumerate(diffs):
            started = wallclock.perf_counter()
            table = engine.advance(table, graphs[i + 1], diff)
            seconds.append(wallclock.perf_counter() - started)
        return float(np.median(seconds)) * 1000.0, engine

    # Warm-up pass per leg: the chain's graphs and diffs carry lazy
    # one-time caches (sorted key arrays, edge-id maps, CSR adjacency,
    # the solver's delay matrix) that whichever leg runs first would
    # otherwise pay for both.
    leg("auto")
    leg(None)
    kernel_epoch_ms, kernel_engine = leg("auto")
    legacy_epoch_ms, legacy_engine = leg(None)
    # Keep one honest reference point: what a cold solve costs here.
    started = wallclock.perf_counter()
    ShortestPaths(graphs[-1], sources=sources)
    cold_solve_ms = (wallclock.perf_counter() - started) * 1000.0

    results = {
        "scenario": "two-lowest Starlink shells, ISL flicker",
        "nodes": len(full.index),
        "epochs": epochs,
        "isl_drops_per_epoch": drops_per_epoch,
        "kernel_backend": kernel_engine.kernel_backend,
        "kernel_epoch_ms": kernel_epoch_ms,
        "legacy_epoch_ms": legacy_epoch_ms,
        "cold_solve_ms": cold_solve_ms,
        "speedup_vs_legacy": legacy_epoch_ms / kernel_epoch_ms,
        "kernel_stats": kernel_engine.stats.snapshot(),
        "legacy_stats": legacy_engine.stats.snapshot(),
    }
    print()
    print(
        f"churn epoch — legacy guarded path {legacy_epoch_ms:.2f} ms | "
        f"{kernel_engine.kernel_backend} kernel {kernel_epoch_ms:.2f} ms "
        f"({results['speedup_vs_legacy']:.2f}x) | cold solve {cold_solve_ms:.2f} ms"
    )
    _merge_artifact("churn_epochs", results)

    # The chain must exercise the kernel, not fall back to the solver.
    assert kernel_engine.stats.rows_kernel > 0
    # The tentpole claim: flicker epochs at least twice as fast as the
    # guarded path (which degrades them to cold solves), with any
    # available backend — the NumPy fallback alone must clear the bar.
    assert kernel_epoch_ms * 2.0 <= legacy_epoch_ms
    # The guard keeps the legacy leg at cold-solve-like cost, so the
    # kernel leg in turn beats a cold solve outright.
    assert kernel_epoch_ms < cold_solve_ms


def test_all_pairs_epoch_speedup():
    """PR 8 batching claim: 64-table epochs run ≥ 2× the per-table loop."""
    drops_per_epoch = 2
    epochs = 30
    extra_tables = 64

    config = west_africa_configuration(duration_s=600.0, shells="two-lowest")
    calculation = ConstellationCalculation(config)
    full = calculation.state_at(0.0).graph
    sources = list(calculation.node_index.ground_station_indices())
    index = full.index
    total = full.total_links()
    isl_edges = np.flatnonzero(full.link_type_codes == 0)

    # The all-pairs working set: the multi-source ground-station table
    # plus 64 single-source satellite tables, the shape the cost-aware
    # cache carries across epochs at its default cap.
    rng = np.random.default_rng(20220711)
    satellites = np.setdiff1d(
        np.arange(len(index)), np.asarray(sources, dtype=np.int64)
    )
    extras = rng.choice(satellites, size=extra_tables, replace=False)
    table_sources = [sources] + [[int(node)] for node in extras]

    # Prebuild the flicker chain (same idiom as the churn benchmark) so
    # both legs advance through identical graphs and diffs.
    graphs = [full]
    for _ in range(epochs):
        failed = rng.choice(isl_edges, size=drops_per_epoch, replace=False)
        alive = np.setdiff1d(np.arange(total), failed)
        graphs.append(NetworkGraph.from_edge_arrays(
            index,
            full.node_a[alive], full.node_b[alive],
            full.distances_km[alive], full.delays_ms[alive],
            full.bandwidths_kbps[alive], full.link_type_codes[alive],
        ))
    diffs = [graphs[i + 1].diff_from(graphs[i]) for i in range(epochs)]

    def batched_leg():
        engine = PathEngine(kernel_backend="auto")
        tables = [engine.solve(graphs[0], sources=s) for s in table_sources]
        seconds = []
        for i, diff in enumerate(diffs):
            started = wallclock.perf_counter()
            tables = engine.advance_all(tables, graphs[i + 1], diff)
            seconds.append(wallclock.perf_counter() - started)
        return float(np.median(seconds)) * 1000.0, engine

    def per_table_leg():
        engine = PathEngine(kernel_backend="auto")
        tables = [engine.solve(graphs[0], sources=s) for s in table_sources]
        seconds = []
        for i, diff in enumerate(diffs):
            started = wallclock.perf_counter()
            tables = [
                engine.advance(table, graphs[i + 1], diff) for table in tables
            ]
            seconds.append(wallclock.perf_counter() - started)
        return float(np.median(seconds)) * 1000.0, engine

    # Warm-up pass per leg (lazy graph/diff caches, imports, JIT).
    batched_leg()
    per_table_leg()
    batched_epoch_ms, batched_engine = batched_leg()
    per_table_epoch_ms, per_table_engine = per_table_leg()

    results = {
        "scenario": "two-lowest Starlink shells, ISL flicker, 65 tables",
        "nodes": len(full.index),
        "epochs": epochs,
        "tables": len(table_sources),
        "isl_drops_per_epoch": drops_per_epoch,
        "kernel_backend": batched_engine.kernel_backend,
        "batched_epoch_ms": batched_epoch_ms,
        "per_table_epoch_ms": per_table_epoch_ms,
        "speedup_vs_per_table": per_table_epoch_ms / batched_epoch_ms,
        "batched_stats": batched_engine.stats.snapshot(),
        "per_table_stats": per_table_engine.stats.snapshot(),
    }
    print()
    print(
        f"all-pairs epoch ({len(table_sources)} tables) — per-table loop "
        f"{per_table_epoch_ms:.2f} ms | batched {batched_epoch_ms:.2f} ms "
        f"({results['speedup_vs_per_table']:.2f}x)"
    )
    _merge_artifact("all_pairs", results)

    # The chain must genuinely take the stacked path, not the fallback.
    assert batched_engine.stats.batched_calls > 0
    assert batched_engine.stats.batched_rows > 0
    # The tentpole claim: with 64+ carried tables, one batched advance
    # per epoch is at least twice as fast as the per-table loop.
    assert batched_epoch_ms * 2.0 <= per_table_epoch_ms
