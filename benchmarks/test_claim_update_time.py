"""§3.1 claim — a constellation-calculation update completes within one second.

"In our tests, these calculations could be completed within one second even
on a standard laptop."  The benchmark times one full update (satellite
positions, ISL topology with line-of-sight checks, ground-station uplinks
and shortest paths) for the complete 4,409-satellite phase I Starlink
constellation with the §4 ground stations.
"""

import itertools

from repro.core import ConstellationCalculation
from repro.scenarios import west_africa_configuration

_times = itertools.count(start=1)


def test_constellation_update_under_one_second(benchmark):
    config = west_africa_configuration(duration_s=600.0, shells="all")
    calculation = ConstellationCalculation(config)

    def one_update():
        return calculation.state_at(float(next(_times)) * config.update_interval_s)

    state = benchmark(one_update)
    assert state.node_index.satellite_count == 4409
    assert state.graph.total_links() > 8000
    mean_seconds = benchmark.stats["mean"]
    print(f"\nmean update duration for 4,409 satellites: {mean_seconds * 1000:.1f} ms "
          f"(paper claim: < 1 s)")
    assert mean_seconds < 1.0
