"""§3.1 claim — a constellation-calculation update completes within one second.

"In our tests, these calculations could be completed within one second even
on a standard laptop."  The first benchmark times one full update (satellite
positions, ISL topology with line-of-sight checks, ground-station uplinks
and shortest paths) for the complete 4,409-satellite phase I Starlink
constellation with the §4 ground stations.

The second benchmark exercises the differential pipeline: for steady-state
epochs (consecutive updates at the configured interval, where only a
handful of uplinks appear/disappear) ``diff_since`` must beat the
full-rebuild ``state_at`` path while producing byte-identical state — it
reuses the previous epoch's certified visibility bounds, edge-structure
caches and CSR delay-matrix template instead of recomputing them.
"""

import itertools
import time as wallclock

import numpy as np

from repro.core import ConstellationCalculation
from repro.scenarios import west_africa_configuration

_times = itertools.count(start=1)


def test_constellation_update_under_one_second(benchmark):
    config = west_africa_configuration(duration_s=600.0, shells="all")
    calculation = ConstellationCalculation(config)

    def one_update():
        return calculation.state_at(float(next(_times)) * config.update_interval_s)

    state = benchmark(one_update)
    assert state.node_index.satellite_count == 4409
    assert state.graph.total_links() > 8000
    mean_seconds = benchmark.stats["mean"]
    print(f"\nmean update duration for 4,409 satellites: {mean_seconds * 1000:.1f} ms "
          f"(paper claim: < 1 s)")
    assert mean_seconds < 1.0


def test_diff_update_beats_full_rebuild():
    """Steady-state diff epochs must be faster than full rebuilds (full Starlink)."""
    config = west_africa_configuration(duration_s=3600.0, shells="all")
    calculation = ConstellationCalculation(config)
    interval = config.update_interval_s
    rounds = 25

    # Warm-up: first full snapshot plus one epoch of each path so caches,
    # visibility bounds and imports are all primed.
    previous = calculation.state_at(0.0)
    calculation.state_at(interval)
    previous, _ = calculation.diff_since(previous, interval)

    full_seconds = []
    for step in range(2, rounds + 2):
        started = wallclock.perf_counter()
        calculation.state_at(step * interval)
        full_seconds.append(wallclock.perf_counter() - started)

    diff_seconds = []
    churn = []
    for step in range(2, rounds + 2):
        started = wallclock.perf_counter()
        previous, diff = calculation.diff_since(previous, step * interval)
        diff_seconds.append(wallclock.perf_counter() - started)
        churn.append(diff.topology.structural_change_count)

    full_median = float(np.median(full_seconds))
    diff_median = float(np.median(diff_seconds))
    mean_churn = float(np.mean(churn))
    total_links = previous.graph.total_links()
    print(
        f"\nfull rebuild: {full_median * 1000:.2f} ms | diff path: "
        f"{diff_median * 1000:.2f} ms ({full_median / diff_median:.2f}x) | mean churn "
        f"{mean_churn:.1f} of {total_links} links per {interval:.0f} s epoch"
    )
    # Steady state: the structural churn is a tiny fraction of the edge set.
    assert mean_churn < total_links * 0.01
    # The differential path must win on wall-clock time; medians keep the
    # comparison robust to scheduler noise on shared CI runners.
    assert diff_median < full_median
