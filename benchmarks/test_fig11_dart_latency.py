"""Fig. 11 — mean end-to-end latency of the ocean alert system per deployment.

Paper result: the satellite-server deployment reduces end-to-end latency
from 22-183 ms (central processing on Ford Island) to 13-90 ms; ground
stations needing data from the same sensors observe similar delays; the lack
of ISLs between the first and last Iridium plane raises latency towards the
West Pacific, most prominently in the central deployment.
"""

from repro.analysis import render_table


def test_fig11_dart_deployment_comparison(benchmark, dart_central_run, dart_satellite_run):
    central = dart_central_run.results
    satellite = dart_satellite_run.results
    assert central.results_delivered > 1000
    assert satellite.results_delivered > 1000

    def aggregate():
        rows = []
        for results in (central, satellite):
            low, high = results.latency_range_ms()
            regions = results.mean_latency_by_region()
            rows.append([
                results.deployment,
                results.all_latencies().mean(),
                low,
                high,
                regions["west_pacific"],
                regions["americas"],
            ])
        return rows

    rows = benchmark(aggregate)
    print()
    print(render_table(
        ["deployment", "mean [ms]", "min sink mean [ms]", "max sink mean [ms]",
         "West Pacific [ms]", "Americas [ms]"],
        rows,
        title="Fig. 11 — mean observed end-to-end latency (paper: central 22-183 ms, satellite 13-90 ms)",
    ))

    central_row, satellite_row = rows
    # Shape 1: on-path processing on the satellites roughly halves latency.
    assert satellite_row[1] < central_row[1]
    assert central_row[1] / satellite_row[1] > 1.5
    # Shape 2: the whole latency range shifts down (min and max).
    assert satellite_row[2] < central_row[2]
    assert satellite_row[3] < central_row[3]
    # Shape 3: the Iridium seam penalises the West Pacific, strongest centrally.
    assert central_row[4] > central_row[5]
    central_penalty = central_row[4] - central_row[5]
    satellite_penalty = satellite_row[4] - satellite_row[5]
    assert central_penalty > satellite_penalty
