"""Ablation — rebalancing microVMs across hosts (FirePlace-style, §6.1).

The paper suggests mitigating per-host bottlenecks by dynamically migrating
satellite-server microVMs across hosts.  This ablation creates a skewed
placement (as happens when a bounding box drifts over the region served by
one host), rebalances it with the migration scheduler and reports the
remaining imbalance and the per-machine downtime cost.
"""

import numpy as np

from repro.analysis import render_table
from repro.hosts import Host, MigrationScheduler
from repro.microvm import MachineResources, MicroVM


def _skewed_hosts(host_count=3, machines=48, memory_mib=512):
    hosts = [Host(index=index, memory_mib=32 * 1024) for index in range(host_count)]
    rng = np.random.default_rng(1)
    for index in range(machines):
        machine = MicroVM(
            f"sat-{index}",
            MachineResources(vcpu_count=2, memory_mib=memory_mib),
            rng=np.random.default_rng(index),
        )
        # Two thirds of the machines land on host 0 (the skew to correct).
        target = hosts[0] if rng.random() < 0.66 else hosts[1 + index % (host_count - 1)]
        target.place(machine)
        machine.boot(0.0)
    return hosts


def test_migration_rebalancing(benchmark):
    def build_and_rebalance():
        hosts = _skewed_hosts()
        scheduler = MigrationScheduler(hosts, imbalance_threshold_mib=1024.0)
        before = scheduler.imbalance_mib()
        events = scheduler.rebalance(now_s=300.0)
        return hosts, scheduler, before, events

    hosts, scheduler, before, events = benchmark(build_and_rebalance)
    after = scheduler.imbalance_mib()
    downtimes = [event.downtime_s for event in events]

    rows = [
        ["reserved-memory imbalance before [MiB]", before],
        ["reserved-memory imbalance after [MiB]", after],
        ["microVMs migrated", len(events)],
        ["mean downtime per migration [s]", float(np.mean(downtimes)) if downtimes else 0.0],
        ["machines per host after rebalance",
         " / ".join(str(len(host.machines)) for host in hosts)],
    ]
    print()
    print(render_table(["metric", "value"], rows,
                       title="Ablation — FirePlace-style microVM rebalancing"))

    assert before > 4096.0
    assert after <= before / 2
    assert len(events) >= 3
    assert all(0.0 < downtime < 5.0 for downtime in downtimes)
