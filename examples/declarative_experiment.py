#!/usr/bin/env python3
"""Declarative experiments: specs, the scenario registry and fault programs.

This example shows the experiment harness end to end:

* listing the registered scenarios and building one by name,
* composing an :class:`~repro.experiments.ExperimentSpec` in Python,
* round-tripping it through TOML (the `repro-celestial run` file format),
* running it — including a declarative fault program — with the one
  :class:`~repro.experiments.ExperimentRunner`.

Run with:  python examples/declarative_experiment.py
"""

from repro.analysis import render_table
from repro.experiments import (
    ExperimentRunner,
    ExperimentSpec,
    FaultOp,
    MetricsSpec,
    RuntimeSpec,
    ScenarioSpec,
    WorkloadSpec,
    build,
    entries,
    list_scenarios,
)


def main() -> None:
    print("=== Registered scenarios ===")
    rows = [[item.name, item.description] for item in entries()]
    print(render_table(["scenario", "description"], rows))

    # Any scenario builds a plain Configuration, with factory parameters.
    config = build("iridium", duration_s=120.0, update_interval_s=30.0)
    print(f"\niridium: {config.total_satellites} satellites, "
          f"{config.ground_station_names} ground stations")

    # A spec names a scenario, a workload, the runtime and a fault program.
    # The fault program is data: each op is interpreted by the runner, so the
    # same schedule can be replayed, versioned and swept like any other
    # parameter.  Here the Hawaii ground station reboots mid-run.
    spec = ExperimentSpec(
        name="iridium-reboot",
        scenario=ScenarioSpec(
            name="iridium",
            params={"duration_s": 120.0, "update_interval_s": 30.0},
        ),
        workload=WorkloadSpec(app="none"),
        fault_program=(
            FaultOp(kind="terminate", at_s=45.0, target="hawaii"),
            FaultOp(kind="reboot", at_s=75.0, target="hawaii"),
        ),
        runtime=RuntimeSpec(parallelism="threads"),
        metrics=MetricsSpec(outputs=("summary", "fault-events")),
    )

    # Specs round-trip byte-stably through TOML — what you run is what you
    # can check in next to the paper's figures.
    text = spec.to_toml()
    assert ExperimentSpec.from_toml_text(text).to_toml() == text
    print("\n=== Spec as TOML (repro-celestial run <file>) ===")
    print(text)

    result = ExperimentRunner(spec).run()
    print(render_table(["metric", "value"], result.metrics, title=result.title))
    print("\nfault events:")
    for event in result.fault_events:
        print(f"  t={event.time_s:6.1f}s  {event.machine}: {event.kind} {event.detail}")

    assert list_scenarios()  # the registry is never empty once imported


if __name__ == "__main__":
    main()
