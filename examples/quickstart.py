#!/usr/bin/env python3
"""Quickstart: build a small LEO edge testbed and measure a few latencies.

This example builds the Iridium constellation with two ground stations,
runs the testbed for one simulated minute and shows:

* constellation/network state queries (positions, uplinks, paths),
* the DNS and HTTP info API that emulated machines would use,
* sending application messages over the emulated network.

Run with:  python examples/quickstart.py
"""

from repro import Celestial, ComputeParams, Configuration, GroundStationConfig, HostConfig, NetworkParams, ShellConfig
from repro.analysis import render_table
from repro.core import HTTPInfoServer
from repro.orbits import GroundStation, ShellGeometry


def build_configuration() -> Configuration:
    """A small configuration: the Iridium shell plus two ground stations."""
    iridium = ShellConfig(
        name="iridium",
        geometry=ShellGeometry(
            planes=6,
            satellites_per_plane=11,
            altitude_km=780.0,
            inclination_deg=90.0,
            arc_of_ascending_nodes_deg=180.0,
        ),
        network=NetworkParams(
            isl_bandwidth_kbps=100_000.0,
            uplink_bandwidth_kbps=100_000.0,
            min_elevation_deg=8.2,
        ),
        compute=ComputeParams(vcpu_count=1, memory_mib=1024),
    )
    return Configuration(
        shells=(iridium,),
        ground_stations=(
            GroundStationConfig(station=GroundStation("hawaii", 21.3649, -157.9497)),
            GroundStationConfig(station=GroundStation("guam", 13.4443, 144.7937)),
        ),
        hosts=HostConfig(count=3, cpu_cores=32, memory_mib=32 * 1024),
        update_interval_s=5.0,
        duration_s=60.0,
    )


def main() -> None:
    config = build_configuration()
    testbed = Celestial(config)
    testbed.start()

    hawaii = testbed.ground_station("hawaii")
    guam = testbed.ground_station("guam")

    # Application processes: Hawaii pings Guam once per second, Guam records
    # the end-to-end latency of every received message.
    sender = testbed.endpoint(hawaii)
    receiver = testbed.endpoint(guam)
    observed = []

    def ping():
        while True:
            sender.send(guam, 256, payload={"sent": testbed.sim.now})
            yield testbed.sim.timeout(1.0)

    def pong():
        while True:
            message = yield receiver.receive()
            observed.append((testbed.sim.now, message.latency_ms(testbed.sim.now)))

    testbed.sim.process(ping())
    testbed.sim.process(pong())
    testbed.run()  # runs for config.duration_s simulated seconds

    print("=== Constellation state ===")
    state = testbed.state
    print(f"time: {state.time_s:.0f} s, active satellites: {state.active_count()}")
    print(f"links in the network graph: {state.graph.total_links()}")
    uplinks = state.uplinks_of("hawaii")[:3]
    rows = [[f"{u.satellite}.{u.shell}", f"{u.distance_km:.0f}", f"{u.delay_ms:.2f}"] for u in uplinks]
    print(render_table(["satellite", "distance [km]", "delay [ms]"], rows,
                       title="Nearest uplinks of Hawaii"))

    print("\n=== Network paths ===")
    path = state.path(hawaii, guam)
    print(f"hawaii -> guam: {path.delay_ms:.2f} ms over {path.hop_count} hops "
          f"(RTT {path.rtt_ms:.2f} ms)")

    print("\n=== DNS and HTTP info API ===")
    print("A record for 13.0.celestial:", testbed.dns.a_record("13.0.celestial"))
    with HTTPInfoServer(testbed.info_api) as server:
        host, port = server.address
        print(f"info API listening on http://{host}:{port}/info "
              f"(e.g. /sat/0/13, /gst/hawaii, /path/hawaii/guam)")
        print("GET /info ->", testbed.info_api.get("/info"))

    print("\n=== Application measurements ===")
    latencies = [latency for _, latency in observed]
    print(f"messages received: {len(latencies)}, "
          f"mean latency: {sum(latencies) / len(latencies):.2f} ms, "
          f"min: {min(latencies):.2f} ms, max: {max(latencies):.2f} ms")
    print("\nHost resource usage (peak):")
    for index, trace in testbed.resource_traces().items():
        print(f"  host {index}: cpu {trace.peak_cpu_percent():.1f}%, "
              f"memory {trace.peak_memory_percent():.1f}%")


if __name__ == "__main__":
    main()
