#!/usr/bin/env python3
"""Fault injection on the LEO edge: radiation upsets, CPU degradation, packet loss.

Satellite servers are exposed to single event upsets caused by cosmic rays
(§2.3, §3.1).  This example runs a small Iridium testbed in which a ground
station continuously pings a satellite server while faults are injected:

1. the satellite is terminated and rebooted (a full radiation shutdown),
2. its CPU quota is degraded to a quarter (temporary performance degradation),
3. packet loss is injected on the uplink,
4. a stochastic radiation model reboots random satellites in the background.

Run with:  python examples/fault_injection.py
"""

from repro import Celestial, ComputeParams, Configuration, GroundStationConfig, HostConfig, NetworkParams, ShellConfig
from repro.core import RadiationModel
from repro.orbits import GroundStation, ShellGeometry


def build_testbed() -> Celestial:
    """A one-shell testbed with a single ground station."""
    config = Configuration(
        shells=(
            ShellConfig(
                name="iridium",
                geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                network=NetworkParams(min_elevation_deg=8.2),
                compute=ComputeParams(vcpu_count=1, memory_mib=1024),
            ),
        ),
        ground_stations=(
            GroundStationConfig(station=GroundStation("hawaii", 21.3649, -157.9497)),
        ),
        hosts=HostConfig(count=1, cpu_cores=32, memory_mib=32 * 1024),
        update_interval_s=5.0,
        duration_s=120.0,
    )
    return Celestial(config)


def main() -> None:
    testbed = build_testbed()
    testbed.start()
    testbed.run(until=1.0)

    hawaii = testbed.ground_station("hawaii")
    target = testbed.state.uplinks_of("hawaii")[0]
    satellite = testbed.satellite(target.shell, target.satellite)
    print(f"ground station uplink satellite: {satellite.name} "
          f"({target.distance_km:.0f} km, {target.delay_ms:.2f} ms)")

    sender = testbed.endpoint(hawaii)
    receiver = testbed.endpoint(satellite)
    delivered = []

    def ping():
        while True:
            sender.send(satellite, 128, payload={"sent": testbed.sim.now})
            yield testbed.sim.timeout(0.5)

    def receive():
        while True:
            message = yield receiver.receive()
            delivered.append(testbed.sim.now)

    testbed.sim.process(ping())
    testbed.sim.process(receive())
    injector = testbed.fault_injector

    def fault_script():
        yield testbed.sim.timeout(10.0)
        print(f"[t={testbed.sim.now:5.1f}s] terminating {satellite.name}")
        injector.terminate(satellite, testbed.sim.now)
        yield testbed.sim.timeout(10.0)
        back = injector.reboot(satellite, testbed.sim.now)
        print(f"[t={testbed.sim.now:5.1f}s] rebooting {satellite.name}, up again at t={back:.1f}s")
        yield testbed.sim.timeout(10.0)
        print(f"[t={testbed.sim.now:5.1f}s] degrading CPU quota to 25%")
        injector.degrade_cpu(satellite, 0.25, testbed.sim.now)
        slowed = testbed.processing_delay_s(satellite, 0.002)
        print(f"          a 2 ms inference now takes {slowed * 1000:.1f} ms")
        injector.restore_cpu(satellite, testbed.sim.now)
        yield testbed.sim.timeout(10.0)
        print(f"[t={testbed.sim.now:5.1f}s] injecting 50% packet loss on the uplink")
        injector.inject_packet_loss(hawaii, satellite, 0.5, testbed.sim.now)
        yield testbed.sim.timeout(20.0)
        injector.clear_packet_loss(hawaii, satellite, testbed.sim.now)
        print(f"[t={testbed.sim.now:5.1f}s] packet loss cleared")

    testbed.sim.process(fault_script())

    # A background radiation model reboots random satellites now and then.
    radiation = RadiationModel(events_per_machine_hour=20.0,
                               rng=testbed.streams.stream("radiation"))
    machines = [testbed.satellite(0, identifier) for identifier in range(66)]
    testbed.sim.process(radiation.process(testbed.sim, machines, injector))

    testbed.run(until=120.0)

    stats = testbed.network_statistics()
    print("\n=== Results ===")
    print(f"pings sent: {stats['sent']}, delivered: {stats['delivered']}, "
          f"dropped: {stats['dropped']}")
    print(f"background radiation upsets: {len(radiation.upsets)}")
    print("fault events injected:")
    for event in injector.events[:12]:
        print(f"  t={event.time_s:6.1f}s  {event.kind:<20s} {event.machine} {event.detail}")


if __name__ == "__main__":
    main()
