#!/usr/bin/env python3
"""The streaming serving tier: subscriptions, scopes and path queries.

This example runs a small Iridium constellation, attaches the streaming
gateway to its constellation database and connects three kinds of
subscribers over real sockets:

* a **full subscriber** that receives every epoch's keyframe/diff and
  reconstructs the constellation state bit-for-bit in its local replica,
* a **scoped subscriber** restricted to a geodetic bounding box — epochs
  whose changes fall outside the box arrive as lightweight skip markers
  that keep the epoch chain unbroken without shipping the payload,
* a **querying subscriber** that asks "path latency source → destination
  now" and is answered from the warm path tables, with its cache hits
  and misses attributed per client in the gateway statistics.

All subscribers share the same encoded bytes: each epoch is serialised
exactly once, however many clients are connected.

Run with:  python examples/streaming_clients.py [--epochs 8 --clients 4]
"""

import argparse
import json
import threading

from repro.core import ConstellationCalculation, ConstellationDatabase
from repro.experiments import build
from repro.serve import EpochSnapshot
from repro.serve.client import SubscriptionClient
from repro.serve.gateway import GatewayServer


def stream_epochs(calculation, database, epochs: int, step_s: float) -> None:
    """Publish ``epochs`` coordinator-style epochs into the database."""
    state = calculation.state_at(0.0)
    database.set_state(state)
    for step in range(1, epochs):
        state, diff = calculation.diff_since(state, step * step_s)
        database.set_state(state, diff=diff)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8,
                        help="number of published epochs")
    parser.add_argument("--clients", type=int, default=4,
                        help="number of full subscribers")
    args = parser.parse_args()

    config = build("iridium", duration_s=600.0, update_interval_s=5.0)
    calculation = ConstellationCalculation(config)
    database = ConstellationDatabase(keyframe_interval=10)

    with GatewayServer(database) as server:
        host, port = server.address
        print(f"gateway listening on {host}:{port}")

        # A fleet of full subscribers, each with its own replica.
        clients = [
            SubscriptionClient(host, port, client_id=f"full-{i}")
            for i in range(args.clients)
        ]
        # One subscriber scoped to a mid-Pacific bounding box.
        scoped = SubscriptionClient(
            host, port, client_id="pacific-box",
            scope={"kind": "bbox", "lat_min": 0.0, "lat_max": 30.0,
                   "lon_min": -170.0, "lon_max": -140.0},
        )

        publisher = threading.Thread(
            target=stream_epochs,
            args=(calculation, database, args.epochs, 30.0),
        )
        publisher.start()
        publisher.join()
        final_epoch = database.epoch

        # Every full subscriber reconstructs the final state bit-for-bit.
        reference = EpochSnapshot.from_state(database.state, final_epoch)
        for client in clients:
            client.sync_to_epoch(final_epoch)
            assert client.replica.snapshot().same_bits(reference)
        print(f"{len(clients)} full subscribers bit-identical at epoch "
              f"{final_epoch} ({reference.node_count} nodes, "
              f"{len(reference.node_a)} links)")

        # The scoped subscriber stays chained through skip markers.
        updates = scoped.sync_to_epoch(final_epoch)
        skipped = sum(1 for u in updates if u.decoded()[0].get("skip"))
        print(f"scoped subscriber: {len(updates)} updates, {skipped} "
              f"out-of-box epochs arrived as skip markers; replica at "
              f"epoch {scoped.replica.epoch}")

        # Path queries are served from the warm tables.
        asker = clients[0]
        answer = asker.query("hawaii", "0.0.celestial")
        print(f"path hawaii -> 0.0.celestial: "
              f"{json.dumps(answer, indent=2)}")

        stats = server.statistics()
        print(f"gateway: {stats['published_epochs']} epochs published, "
              f"{stats['encode_count']} encodes "
              f"(single-encode fan-out to {stats['subscriptions']} "
              f"subscribers), {stats['queries']} queries answered")

        for client in clients:
            client.close()
        scoped.close()


if __name__ == "__main__":
    main()
