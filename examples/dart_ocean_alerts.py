#!/usr/bin/env python3
"""The §5 case study: real-time ocean environment alerts with remote sensors.

DART buoys in the Pacific transmit pressure readings over the Iridium
constellation every second.  An LSTM inference service processes grouped
readings and forwards results to ships and islands in the vicinity.  The
script compares the two deployments of Fig. 11: central processing at the
Pacific Tsunami Warning Center versus on-satellite processing.

Run with:  python examples/dart_ocean_alerts.py [--buoys 100 --sinks 200 --duration 300]
"""

import argparse

from repro import Celestial
from repro.analysis import render_table
from repro.apps import DartExperiment
from repro.apps.dart.lstm import StackedLSTM
from repro.scenarios import dart_configuration


def run_deployment(deployment: str, buoys: int, sinks: int, duration_s: float,
                   run_inference: bool):
    """Run one deployment of the alert system and return its results."""
    config = dart_configuration(
        deployment=deployment,
        buoy_count=buoys,
        sink_count=sinks,
        duration_s=duration_s,
    )
    testbed = Celestial(config)
    experiment = DartExperiment(
        testbed,
        deployment=deployment,
        group_count=min(20, max(2, buoys // 5)),
        lstm=StackedLSTM(input_size=1, hidden_sizes=(16, 16)),
        run_inference=run_inference,
    )
    return experiment.run()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--buoys", type=int, default=40,
                        help="number of DART buoys (paper: 100)")
    parser.add_argument("--sinks", type=int, default=80,
                        help="number of ship/island data sinks (paper: 200)")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated duration in seconds (paper: 900)")
    parser.add_argument("--run-inference", action="store_true",
                        help="run the NumPy LSTM forward pass for every reading")
    args = parser.parse_args()

    results = {}
    for deployment in ("central", "satellite"):
        print(f"running {deployment} deployment "
              f"({args.buoys} buoys, {args.sinks} sinks, {args.duration:.0f} s simulated)...")
        results[deployment] = run_deployment(
            deployment, args.buoys, args.sinks, args.duration, args.run_inference
        )

    rows = []
    for deployment, result in results.items():
        low, high = result.latency_range_ms()
        regions = result.mean_latency_by_region()
        rows.append([
            deployment,
            result.all_latencies().mean(),
            low,
            high,
            regions["west_pacific"],
            regions["americas"],
            result.processing_ms.mean(),
        ])
    print()
    print(render_table(
        ["deployment", "mean [ms]", "min sink mean", "max sink mean",
         "West Pacific mean", "Americas mean", "processing [ms]"],
        rows,
        title="Fig. 11 — mean observed end-to-end latency per deployment",
    ))

    central = results["central"].all_latencies().mean()
    satellite = results["satellite"].all_latencies().mean()
    print(f"\nSatellite-server deployment improves mean end-to-end latency by "
          f"{central / satellite:.1f}x (paper: roughly 2x, 22-183 ms vs 13-90 ms).")
    print("The West Pacific region sees higher latency than the Americas in the "
          "central deployment because traffic must cross the Iridium seam "
          "(no ISLs between the first and last orbital plane).")


if __name__ == "__main__":
    main()
