#!/usr/bin/env python3
"""Evaluating a state-management strategy on the testbed (paper §6.7).

Celestial deliberately contains no state-management, request-routing or
service-management strategy — it is the testbed on which such middleware is
evaluated.  This example shows that workflow for *virtual stationarity*
(Bhattacherjee et al.): a key-value service is anchored to Accra, its state
is proactively migrated to whichever Starlink satellite currently serves that
location, and clients measure read latency and hit rate.  The baseline keeps
the state on the first satellite forever ("static"), so reads increasingly
miss and pay a redirect penalty as the constellation moves.

Run with:  python examples/virtual_stationarity.py [--duration 300]
"""

import argparse

from repro import Celestial, ComputeParams, Configuration, GroundStationConfig, HostConfig, NetworkParams, ShellConfig
from repro.analysis import render_table
from repro.apps import VirtualStationarityExperiment
from repro.orbits import GroundStation, ShellGeometry


def build_configuration(duration_s: float) -> Configuration:
    """A single dense Starlink shell with two West-African ground stations."""
    shell = ShellConfig(
        name="starlink-550",
        geometry=ShellGeometry(72, 22, 550.0, 53.0),
        network=NetworkParams(min_elevation_deg=25.0),
        compute=ComputeParams(vcpu_count=2, memory_mib=512),
    )
    return Configuration(
        shells=(shell,),
        ground_stations=(
            GroundStationConfig(station=GroundStation("accra", 5.6037, -0.1870),
                                compute=ComputeParams(vcpu_count=4, memory_mib=4096)),
            GroundStationConfig(station=GroundStation("abuja", 9.0765, 7.3986),
                                compute=ComputeParams(vcpu_count=4, memory_mib=4096)),
        ),
        hosts=HostConfig(count=2),
        update_interval_s=5.0,
        duration_s=duration_s,
    )


def run_policy(policy: str, duration_s: float):
    """Run one migration policy and return its results."""
    testbed = Celestial(build_configuration(duration_s))
    experiment = VirtualStationarityExperiment(
        testbed,
        anchor_station="accra",
        client_stations=["accra", "abuja"],
        policy=policy,
        state_size_bytes=256 * 1024,
        read_interval_s=0.5,
    )
    return experiment.run()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=300.0,
                        help="simulated duration in seconds")
    args = parser.parse_args()

    rows = []
    results = {}
    for policy in ("proactive", "static"):
        print(f"running {policy} state-management policy "
              f"({args.duration:.0f} s simulated)...")
        results[policy] = run_policy(policy, args.duration)
        result = results[policy]
        rows.append([
            policy,
            len(result.read_latency),
            result.read_latency.mean(),
            result.read_latency.percentile(95),
            100.0 * result.hit_rate,
            result.migration_count,
            result.migration_downtime_s * 1000.0,
        ])

    print()
    print(render_table(
        ["policy", "reads", "mean read latency [ms]", "p95 [ms]",
         "hit rate [%]", "migrations", "migration downtime [ms]"],
        rows,
        title="Virtual stationarity vs static placement",
    ))

    proactive, static = results["proactive"], results["static"]
    print(f"\nProactive migration keeps {100 * proactive.hit_rate:.1f}% of reads on the "
          f"local satellite vs {100 * static.hit_rate:.1f}% without migration; "
          f"mean read latency improves from {static.read_latency.mean():.1f} ms to "
          f"{proactive.read_latency.mean():.1f} ms at the cost of "
          f"{proactive.migration_count} state transfers.")
    print("Satellites that served the anchored state:",
          ", ".join(name for _, name in proactive.anchor_history))


if __name__ == "__main__":
    main()
