#!/usr/bin/env python3
"""The §4 experiment: a video-conference meetup server on the LEO edge.

Three clients in Accra, Abuja and Yaoundé run a WebRTC-style video conference
through a common bridge server.  The bridge is deployed either in the nearest
cloud data centre (Johannesburg) or on the currently-optimal Starlink
satellite, selected by a tracking service every five seconds.  The script
reproduces the shape of Figs. 4-6: per-pair latency CDFs, measured vs.
expected latency, and reproducibility across repetitions.

Run with:  python examples/west_africa_meetup.py [--duration 120] [--full]
"""

import argparse

from repro import Celestial
from repro.analysis import render_table, run_repetitions
from repro.apps import MeetupExperiment, VideoStreamParams
from repro.scenarios import west_africa_configuration

PAIRS = [
    ("accra", "abuja"),
    ("accra", "yaounde"),
    ("abuja", "yaounde"),
]


def run_mode(mode: str, duration_s: float, seed: int, full_fidelity: bool):
    """Run one deployment mode and return its results."""
    config = west_africa_configuration(
        duration_s=duration_s,
        shells="all" if full_fidelity else "two-lowest",
        seed=seed,
    )
    stream = VideoStreamParams(
        packet_interval_s=0.02 if full_fidelity else 0.1
    )
    testbed = Celestial(config)
    experiment = MeetupExperiment(testbed, mode=mode, stream=stream)
    return experiment.run()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated experiment duration in seconds (paper: 600)")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="number of seeded repetitions (paper: 3)")
    parser.add_argument("--full", action="store_true",
                        help="full fidelity: all five Starlink shells and 20 ms packet pacing")
    args = parser.parse_args()

    results = {}
    for mode in ("satellite", "cloud"):
        print(f"running {mode} bridge deployment ({args.duration:.0f} s simulated)...")
        results[mode] = run_mode(mode, args.duration, seed=0, full_fidelity=args.full)

    # Fig. 4: cumulative latency distributions per client pair.
    rows = []
    for source, destination in PAIRS:
        row = [f"{source} -> {destination}"]
        for mode in ("satellite", "cloud"):
            pair = results[mode].pair(source, destination).merged_with(
                results[mode].pair(destination, source)
            )
            threshold = 16.0 if mode == "satellite" else 46.0
            row += [pair.median(), pair.percentile(80), 100.0 * pair.fraction_below(threshold)]
        rows.append(row)
    print()
    print(render_table(
        ["client pair", "sat median", "sat p80", "% <= 16ms", "cloud median", "cloud p80", "% <= 46ms"],
        rows,
        title="Fig. 4 — end-to-end latency per client pair [ms]",
    ))
    print("\nsatellite bridges used:",
          ", ".join(results["satellite"].distinct_bridges
                    if hasattr(results["satellite"], "distinct_bridges")
                    else [name for _, name in results["satellite"].bridge_history]))

    # Fig. 5: measured vs expected latency over time (Abuja -> Accra, cloud bridge).
    measured = results["cloud"].pair("abuja", "accra")
    expected = results["cloud"].expected_pair("abuja", "accra")
    times, medians = measured.rolling_median(window_s=1.0)
    print("\nFig. 5 — Abuja -> Accra via the cloud bridge:")
    print(f"  measured rolling-median range: {medians.min():.1f} .. {medians.max():.1f} ms")
    print(f"  expected (network + processing): {expected.mean():.1f} ms on average")

    # Fig. 6: reproducibility across repetitions.
    print(f"\nFig. 6 — reproducibility across {args.repetitions} repetitions (cloud bridge):")
    repetitions = run_repetitions(
        lambda seed: run_mode("cloud", min(args.duration, 60.0), seed=seed,
                              full_fidelity=False).pair("yaounde", "abuja").median(),
        repetitions=args.repetitions,
        seeds=[0] * args.repetitions,
    )
    for repetition in repetitions:
        print(f"  run {repetition.repetition + 1}: median latency "
              f"{repetition.result:.3f} ms (identical seeds give identical runs)")


if __name__ == "__main__":
    main()
