"""Unit tests for handover analysis and measurement trace export."""

import json

import pytest

from repro.analysis import (
    LatencySeries,
    analyze_handovers,
    experiment_summary_to_json,
    latency_series_from_csv,
    latency_series_to_csv,
    resource_trace_to_csv,
)
from repro.core import ComputeParams, Configuration, ConstellationCalculation, GroundStationConfig, NetworkParams, ShellConfig
from repro.hosts import ResourceTrace, UsageSample
from repro.orbits import GroundStation, ShellGeometry


def _calculation():
    config = Configuration(
        shells=(
            ShellConfig(
                name="iridium",
                geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                network=NetworkParams(min_elevation_deg=8.2),
                compute=ComputeParams(vcpu_count=1, memory_mib=1024),
            ),
        ),
        ground_stations=(
            GroundStationConfig(station=GroundStation("hawaii", 21.3, -157.9)),
        ),
        update_interval_s=5.0,
    )
    return ConstellationCalculation(config)


class TestHandoverAnalysis:
    def test_handover_counts_and_rate(self):
        analysis = analyze_handovers(_calculation(), "hawaii", duration_s=1800.0, interval_s=30.0)
        # Iridium satellites pass overhead in minutes: the uplink must change
        # several times in half an hour, and the station stays covered.
        assert analysis.handover_count >= 2
        assert analysis.handover_rate_per_minute > 0.0
        assert 0.0 < analysis.mean_uplink_duration_s() <= 1800.0
        assert analysis.coverage_fraction > 0.9

    def test_events_record_transitions(self):
        analysis = analyze_handovers(_calculation(), "hawaii", duration_s=600.0, interval_s=30.0)
        assert analysis.events[0].previous is None
        for earlier, later in zip(analysis.events, analysis.events[1:]):
            assert later.time_s > earlier.time_s
            assert later.current != earlier.current

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_handovers(_calculation(), "hawaii", duration_s=0.0)
        with pytest.raises(ValueError):
            analyze_handovers(_calculation(), "hawaii", duration_s=10.0, interval_s=-1.0)


class TestTraceExport:
    def _series(self):
        series = LatencySeries("pair")
        series.add(0.0, 10.0, "a", "b")
        series.add(1.0, 12.5, "a", "b")
        series.add(2.0, 11.0, "b", "a")
        return series

    def test_latency_csv_roundtrip(self, tmp_path):
        series = self._series()
        path = latency_series_to_csv(series, tmp_path / "latency.csv")
        loaded = latency_series_from_csv(path)
        assert len(loaded) == 3
        assert loaded.values().tolist() == series.values().tolist()
        assert loaded.samples[0].source == "a"

    def test_resource_trace_csv(self, tmp_path):
        trace = ResourceTrace()
        trace.record(UsageSample(0.0, 0.2, 10.0, 4.0, 12.0, 30))
        trace.record(UsageSample(5.0, 0.3, 11.0, 4.0, 12.5, 31))
        path = resource_trace_to_csv(trace, tmp_path / "host.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("time_s,")
        assert lines[1].startswith("0.0,")

    def test_experiment_summary_json(self, tmp_path):
        path = experiment_summary_to_json(
            {"satellite": self._series()}, tmp_path / "summary.json",
            metadata={"mode": "satellite"},
        )
        payload = json.loads(path.read_text())
        assert payload["metadata"]["mode"] == "satellite"
        assert payload["series"]["satellite"]["samples"] == 3
        assert payload["series"]["satellite"]["median_ms"] == 11.0
