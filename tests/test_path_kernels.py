"""Property suite for the bounded regional re-solve kernel.

Randomized ISL flicker plus uplink handover churn drives the kernel path
(``repro.topology._kernels``) through ≥50-epoch chains on the Iridium and
Starlink constellations, asserting byte-identity of distances against a
cold ``ShortestPaths`` solve after every epoch.  Both production backends
are exercised — the vectorized NumPy frontier sweep and, when the
``[fast]`` extra is installed, the Numba heap — along with the
interpreted "python" reference heap the Numba leg compiles.  The Numba
parametrization skips cleanly when numba is absent; nothing in the
production import path requires it.
"""

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConstellationCalculation
from repro.scenarios import dart_configuration, west_africa_configuration
from repro.topology import NetworkGraph, PathEngine, ShortestPaths
from repro.topology import _kernels

#: Every backend the kernel seam offers; the Numba leg skips when the
#: ``[fast]`` extra is not installed instead of failing collection.
BACKENDS = [
    "numpy",
    "python",
    pytest.param(
        "numba",
        marks=pytest.mark.skipif(
            not _kernels.HAVE_NUMBA,
            reason="numba not installed (the optional [fast] extra)",
        ),
    ),
]

_ISL_CODE = 0
_UPLINK_CODE = 1


@functools.lru_cache(maxsize=None)
def _base_graph(name):
    """The epoch-0 constellation graph and its ground-station sources."""
    if name == "iridium":
        config = dart_configuration(buoy_count=5, sink_count=8, duration_s=600.0)
    else:
        config = west_africa_configuration(duration_s=600.0, shells="two-lowest")
    calculation = ConstellationCalculation(config)
    state = calculation.state_at(0.0)
    sources = tuple(calculation.node_index.ground_station_indices())
    return state.graph, sources


def _assert_distances_identical(table, graph, sources):
    """Distances and reachability must match a cold solve bit for bit."""
    cold = ShortestPaths(graph, sources=list(sources))
    incremental = table._distances
    reference = cold._distances
    finite = np.isfinite(reference)
    assert np.array_equal(np.isfinite(incremental), finite)
    assert np.array_equal(incremental[finite], reference[finite])


def _churn_engine(sources, backend):
    """An engine tuned so every affected row goes through the kernel."""
    engine = PathEngine(sources=list(sources), kernel_backend=backend)
    # Disable the adaptive cold-solve bypass and hand every violated row
    # straight to the kernel: the property under test is the kernel's
    # byte-identity contract, so it must stay under fire every epoch.
    engine.churn_bypass_threshold = 2.0
    engine.solver_handoff_gain_ms = 0.0
    return engine


def _run_flicker_chain(name, backend, seed, epochs):
    """Randomized ISL flicker + uplink handover churn against cold solves."""
    full, sources = _base_graph(name)
    index = full.index
    rng = np.random.default_rng(seed)
    engine = _churn_engine(sources, backend)
    graph = full
    table = engine.solve(graph)
    total = full.total_links()
    isl_edges = np.flatnonzero(full.link_type_codes == _ISL_CODE)
    uplink_edges = np.flatnonzero(full.link_type_codes == _UPLINK_CODE)
    for _ in range(epochs):
        # ISL flicker: a few inter-satellite links drop out this epoch and
        # any previously failed ones return (each epoch cuts from `full`).
        failed_isl = rng.choice(
            isl_edges, size=int(rng.integers(0, 6)), replace=False
        )
        # Handover churn: ground stations abandon a few uplinks.
        failed_uplink = rng.choice(
            uplink_edges, size=int(rng.integers(0, 4)), replace=False
        )
        alive = np.setdiff1d(
            np.arange(total), np.concatenate([failed_isl, failed_uplink])
        )
        delays = full.delays_ms.copy()
        jitter = rng.choice(total, size=int(rng.integers(1, 20)), replace=False)
        delays[jitter] = rng.uniform(0.5, 12.0, jitter.size)
        new_graph = NetworkGraph.from_edge_arrays(
            index,
            full.node_a[alive], full.node_b[alive],
            full.distances_km[alive], delays[alive],
            full.bandwidths_kbps[alive], full.link_type_codes[alive],
        )
        table = engine.advance(table, new_graph, new_graph.diff_from(graph))
        _assert_distances_identical(table, new_graph, sources)
        graph = new_graph
    # The chain must have genuinely exercised the kernel, not fallen back.
    assert engine.stats.kernel_calls > 0
    assert engine.stats.rows_kernel > 0
    return engine


class TestKernelChurnProperties:
    """≥50-epoch randomized churn chains, byte-identical to cold solves."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_iridium_flicker_and_handover_churn(self, backend, seed):
        _run_flicker_chain("iridium", backend, seed, epochs=50)

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=2, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_starlink_flicker_and_handover_churn(self, backend, seed):
        _run_flicker_chain("starlink", backend, seed, epochs=50)


class TestKernelSeam:
    """The backend seam itself: dispatch, validation, graceful absence."""

    def test_backends_produce_identical_tables(self):
        """All available backends agree bit for bit along one churn chain."""
        full, sources = _base_graph("iridium")
        tables = {}
        for backend in _kernels.KERNEL_BACKENDS:
            rng = np.random.default_rng(123)
            engine = _churn_engine(sources, backend)
            graph = full
            table = engine.solve(graph)
            total = full.total_links()
            for _ in range(30):
                failed = rng.choice(total, size=int(rng.integers(0, 8)), replace=False)
                alive = np.setdiff1d(np.arange(total), failed)
                delays = full.delays_ms.copy()
                jitter = rng.choice(total, size=10, replace=False)
                delays[jitter] = rng.uniform(0.5, 12.0, jitter.size)
                new_graph = NetworkGraph.from_edge_arrays(
                    full.index,
                    full.node_a[alive], full.node_b[alive],
                    full.distances_km[alive], delays[alive],
                    full.bandwidths_kbps[alive], full.link_type_codes[alive],
                )
                table = engine.advance(table, new_graph, new_graph.diff_from(graph))
                graph = new_graph
            assert engine.stats.rows_kernel > 0
            tables[backend] = table._distances
        reference = tables.pop(_kernels.KERNEL_BACKENDS[0])
        for backend, distances in tables.items():
            assert np.array_equal(distances, reference, equal_nan=True), backend

    def test_resolve_backend_validation(self):
        assert _kernels.resolve_backend(None) is None
        assert _kernels.resolve_backend("off") is None
        assert _kernels.resolve_backend("auto") == _kernels.DEFAULT_BACKEND
        assert _kernels.resolve_backend("numpy") == "numpy"
        with pytest.raises(ValueError):
            _kernels.resolve_backend("fortran")

    def test_numba_leg_gated_cleanly(self):
        """Without the [fast] extra the seam degrades, never breaks."""
        if _kernels.HAVE_NUMBA:
            assert _kernels.DEFAULT_BACKEND == "numba"
            assert "numba" in _kernels.KERNEL_BACKENDS
        else:
            assert _kernels.DEFAULT_BACKEND == "numpy"
            assert "numba" not in _kernels.KERNEL_BACKENDS
            with pytest.raises(ValueError):
                _kernels.resolve_backend("numba")
        # "auto" always resolves to an importable backend.
        engine = PathEngine(sources=[0], kernel_backend="auto")
        assert engine.kernel_backend == _kernels.DEFAULT_BACKEND

    def test_kernel_disabled_routes_to_solver(self):
        """kernel_backend=None restores the pure csgraph fallback path."""
        full, sources = _base_graph("iridium")
        rng = np.random.default_rng(5)
        engine = _churn_engine(sources, None)
        graph = full
        table = engine.solve(graph)
        total = full.total_links()
        for _ in range(10):
            failed = rng.choice(total, size=4, replace=False)
            alive = np.setdiff1d(np.arange(total), failed)
            new_graph = NetworkGraph.from_edge_arrays(
                full.index,
                full.node_a[alive], full.node_b[alive],
                full.distances_km[alive], full.delays_ms[alive],
                full.bandwidths_kbps[alive], full.link_type_codes[alive],
            )
            table = engine.advance(table, new_graph, new_graph.diff_from(graph))
            _assert_distances_identical(table, new_graph, sources)
            graph = new_graph
        assert engine.stats.kernel_calls == 0
        assert engine.stats.rows_kernel == 0
        assert engine.stats.rows_solved > 0
