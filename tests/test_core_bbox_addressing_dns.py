"""Unit tests for the bounding box, address calculation and DNS components."""

import ipaddress

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BoundingBox, CelestialDNS, DNSError
from repro.core.addressing import gateway_ip, machine_ip, network_for, parse_machine_ip
from repro.orbits import ecef_to_geodetic, geodetic_to_ecef


class TestBoundingBox:
    def test_contains_simple(self):
        box = BoundingBox(-5.0, 20.0, -15.0, 20.0)
        assert box.contains(5.0, 0.0)
        assert not box.contains(30.0, 0.0)
        assert not box.contains(5.0, 40.0)

    def test_contains_vectorised(self):
        box = BoundingBox(-5.0, 20.0, -15.0, 20.0)
        result = box.contains(np.array([0.0, 50.0]), np.array([0.0, 0.0]))
        assert result.tolist() == [True, False]

    def test_antimeridian_wrap(self):
        box = BoundingBox(-40.0, 50.0, 150.0, -120.0)
        assert box.wraps_antimeridian
        assert box.contains(0.0, 170.0)
        assert box.contains(0.0, -170.0)
        assert not box.contains(0.0, 0.0)

    def test_whole_earth(self):
        box = BoundingBox.whole_earth()
        assert box.contains(89.0, 179.0)
        assert box.area_fraction() == pytest.approx(1.0)

    def test_area_fraction_band(self):
        # A band covering half the longitudes between the equator and 30N.
        box = BoundingBox(0.0, 30.0, -90.0, 90.0)
        assert box.area_fraction() == pytest.approx(0.25 / 2.0)
        assert box.area_km2() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundingBox(10.0, 5.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            BoundingBox(-95.0, 0.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            BoundingBox(0.0, 10.0, -200.0, 10.0)

    def test_expanded(self):
        box = BoundingBox(-5.0, 20.0, -15.0, 20.0).expanded(5.0)
        assert box.lat_min == -10.0
        assert box.lat_max == 25.0
        assert box.lon_min == -20.0
        with pytest.raises(ValueError):
            box.expanded(-1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        lat=st.floats(min_value=-89.0, max_value=89.0),
        lon=st.floats(min_value=-179.0, max_value=179.0),
    )
    def test_property_expansion_preserves_membership(self, lat, lon):
        box = BoundingBox(-10.0, 10.0, -20.0, 20.0)
        if box.contains(lat, lon):
            assert box.expanded(3.0).contains(lat, lon)


class TestContainsEcef:
    """The certified geocentric bound must reproduce the exact geodetic
    verdicts element for element (the differential pipeline relies on it)."""

    BOXES = [
        BoundingBox(-2.0, 16.0, -8.0, 18.0),        # §4 West-Africa box
        BoundingBox(-35.0, 35.0, -180.0, -100.0),   # Pacific
        BoundingBox(10.0, 60.0, 170.0, -170.0),     # antimeridian wrap
        BoundingBox(-90.0, -60.0, -180.0, 180.0),   # polar cap
        BoundingBox.whole_earth(),
    ]

    def _exact(self, box, positions):
        lat, lon, _ = ecef_to_geodetic(positions)
        return box.contains(lat, lon)

    def test_random_leo_points_match_exact_path(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(20000, 3))
        points /= np.sqrt((points * points).sum(axis=1, keepdims=True))
        points *= rng.uniform(6650.0, 7950.0, (points.shape[0], 1))
        for box in self.BOXES:
            assert np.array_equal(box.contains_ecef(points), self._exact(box, points))

    def test_dense_sweep_across_latitude_edges(self):
        # Points packed tightly around the box latitude edges, inside the
        # uncertainty band of the geocentric bound, at several altitudes.
        box = self.BOXES[0]
        for altitude in (0.0, 550.0, 1325.0):
            for edge in (box.lat_min, box.lat_max):
                lats = np.linspace(edge - 0.6, edge + 0.6, 4001)
                lons = np.linspace(-10.0, 20.0, 4001)
                points = geodetic_to_ecef(lats, lons, altitude)
                assert np.array_equal(
                    box.contains_ecef(points), self._exact(box, points)
                )

    def test_scalar_input(self):
        box = self.BOXES[0]
        inside = geodetic_to_ecef(5.0, 3.0, 550.0)
        outside = geodetic_to_ecef(30.0, 3.0, 550.0)
        assert box.contains_ecef(inside) is True
        assert box.contains_ecef(outside) is False

    def test_subsurface_points_fall_back_to_exact(self):
        # The margin is only certified at or above the surface; points
        # below must still get exact verdicts via the fallback.
        box = self.BOXES[0]
        lats = np.linspace(-4.0, 18.0, 101)
        points = geodetic_to_ecef(lats, np.full_like(lats, 5.0), -500.0)
        assert np.array_equal(box.contains_ecef(points), self._exact(box, points))


class TestAddressing:
    def test_machine_and_gateway_in_same_block(self):
        shell_sizes = [66]
        network = network_for(shell_sizes, 0, 10)
        assert machine_ip(shell_sizes, 0, 10) in network
        assert gateway_ip(shell_sizes, 0, 10) in network
        assert machine_ip(shell_sizes, 0, 10) != gateway_ip(shell_sizes, 0, 10)

    def test_addresses_are_unique(self):
        shell_sizes = [22, 30]
        addresses = set()
        for shell, size in enumerate(shell_sizes):
            for identifier in range(size):
                addresses.add(machine_ip(shell_sizes, shell, identifier))
        assert len(addresses) == sum(shell_sizes)

    def test_parse_roundtrip(self):
        shell_sizes = [22, 30]
        assert parse_machine_ip(shell_sizes, machine_ip(shell_sizes, 1, 7)) == (1, 7)
        # Ground stations live in the virtual shell after all satellite shells.
        gst_address = machine_ip(shell_sizes, 2, 3)
        assert parse_machine_ip(shell_sizes, gst_address) == (2, 3)

    def test_invalid_lookups(self):
        with pytest.raises(IndexError):
            machine_ip([10], 0, 99)
        with pytest.raises(IndexError):
            machine_ip([10], 5, 0)
        with pytest.raises(ValueError):
            parse_machine_ip([10], ipaddress.IPv4Address("10.0.0.1"))

    def test_all_addresses_in_10_slash_8(self):
        shell_sizes = [100]
        network = ipaddress.IPv4Network("10.0.0.0/8")
        assert machine_ip(shell_sizes, 0, 99) in network


class TestDNS:
    def _dns(self):
        return CelestialDNS(shell_sizes=[66, 100], ground_station_names=["Accra", "abuja"])

    def test_resolve_satellite(self):
        dns = self._dns()
        address = dns.resolve("10.0.celestial")
        assert str(address).startswith("10.")
        assert dns.resolve("10.0.celestial") != dns.resolve("10.1.celestial")

    def test_paper_example_name(self):
        # §3.2: "878.0.celestial" resolves satellite 878 in the first shell.
        dns = CelestialDNS(shell_sizes=[1584], ground_station_names=[])
        assert dns.resolve("878.0.celestial") == machine_ip([1584], 0, 878)

    def test_resolve_ground_station_both_orders(self):
        dns = self._dns()
        assert dns.resolve("accra.gst.celestial") == dns.resolve("gst.accra.celestial")

    def test_reverse_lookup(self):
        dns = self._dns()
        address = dns.resolve("5.1.celestial")
        assert dns.reverse(address) == "5.1.celestial"
        gst_address = dns.resolve("abuja.gst.celestial")
        assert dns.reverse(gst_address) == "abuja.gst.celestial"

    def test_a_record(self):
        dns = self._dns()
        record = dns.a_record("3.0.celestial")
        assert record["type"] == "A"
        assert record["address"] == str(dns.resolve("3.0.celestial"))

    def test_unknown_names(self):
        dns = self._dns()
        with pytest.raises(DNSError):
            dns.resolve("999.0.celestial")
        with pytest.raises(DNSError):
            dns.resolve("1.9.celestial")
        with pytest.raises(DNSError):
            dns.resolve("lagos.gst.celestial")
        with pytest.raises(DNSError):
            dns.resolve("example.com")
        with pytest.raises(DNSError):
            dns.reverse("10.255.255.254")

    def test_canonical_names(self):
        dns = self._dns()
        assert dns.satellite_name(0, 878) == "878.0.celestial"
        assert dns.ground_station_name("Accra") == "accra.gst.celestial"
        with pytest.raises(DNSError):
            dns.ground_station_name("lagos")
