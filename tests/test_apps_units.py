"""Unit tests for application building blocks: processing model, LSTM, workload."""

import numpy as np
import pytest

from repro.apps import ProcessingDelayModel, StackedLSTM, VideoStreamParams
from repro.apps.dart.workload import SensorGroups, SensorReadingGenerator
from repro.apps.video import BridgeSelector
from repro.core.constellation import MachineId
from repro.orbits import GroundStation


class TestProcessingDelayModel:
    def test_median_and_std_match_configuration(self):
        model = ProcessingDelayModel(median_ms=1.37, std_ms=3.86,
                                     rng=np.random.default_rng(0), floor_ms=0.0)
        samples = np.array([model.sample_ms() for _ in range(40000)])
        assert np.median(samples) == pytest.approx(1.37, rel=0.05)
        assert np.std(samples) == pytest.approx(3.86, rel=0.25)
        assert np.all(samples >= 0.0)

    def test_zero_std_is_deterministic(self):
        model = ProcessingDelayModel(median_ms=2.0, std_ms=0.0)
        assert model.sample_ms() == 2.0
        assert model.sample_s() == pytest.approx(0.002)

    def test_expected_is_median(self):
        assert ProcessingDelayModel(median_ms=1.37).expected_ms() == 1.37

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessingDelayModel(median_ms=0.0)
        with pytest.raises(ValueError):
            ProcessingDelayModel(std_ms=-1.0)

    def test_floor_applies(self):
        model = ProcessingDelayModel(median_ms=0.1, std_ms=10.0, floor_ms=0.05,
                                     rng=np.random.default_rng(1))
        samples = [model.sample_ms() for _ in range(1000)]
        assert min(samples) >= 0.05


class TestVideoStreamParams:
    def test_packet_size_from_bitrate(self):
        stream = VideoStreamParams(bitrate_kbps=2600.0, packet_interval_s=0.02)
        # 2.6 Mb/s * 20 ms = 52 kbit = 6,500 bytes per packet.
        assert stream.packet_size_bytes == 6500

    def test_validation(self):
        with pytest.raises(ValueError):
            VideoStreamParams(bitrate_kbps=0.0)


class TestBridgeSelector:
    def test_history_tracks_changes_only(self):
        selector = BridgeSelector()
        a = MachineId(0, 1, "1.0.celestial")
        b = MachineId(0, 2, "2.0.celestial")
        assert selector.select(0.0, a)
        assert not selector.select(5.0, a)
        assert selector.select(10.0, b)
        assert selector.distinct_bridges == ["1.0.celestial", "2.0.celestial"]
        assert selector.current == b


class TestStackedLSTM:
    def test_output_shape_and_determinism(self):
        lstm = StackedLSTM(input_size=3, hidden_sizes=(8, 8), output_size=2, seed=1)
        sequence = np.random.default_rng(0).normal(size=(12, 3))
        out_a = lstm.forward(sequence)
        out_b = StackedLSTM(input_size=3, hidden_sizes=(8, 8), output_size=2, seed=1).forward(sequence)
        assert out_a.shape == (2,)
        np.testing.assert_allclose(out_a, out_b)

    def test_different_seeds_differ(self):
        sequence = np.ones((5, 1))
        a = StackedLSTM(1, (4,), seed=1).forward(sequence)
        b = StackedLSTM(1, (4,), seed=2).forward(sequence)
        assert not np.allclose(a, b)

    def test_one_dimensional_input_promoted(self):
        lstm = StackedLSTM(input_size=1, hidden_sizes=(4,))
        assert lstm.forward(np.arange(6.0)).shape == (1,)

    def test_input_size_checked(self):
        lstm = StackedLSTM(input_size=2, hidden_sizes=(4,))
        with pytest.raises(ValueError):
            lstm.forward(np.ones((5, 3)))
        with pytest.raises(ValueError):
            StackedLSTM(input_size=0)

    def test_parameter_count(self):
        lstm = StackedLSTM(input_size=1, hidden_sizes=(4,), output_size=1)
        # Layer: 4H*(in+H) weights + 4H bias = 16*(1+4)+16 = 96; output: 4 + 1.
        assert lstm.parameter_count() == 96 + 5

    def test_output_depends_on_sequence_history(self):
        lstm = StackedLSTM(input_size=1, hidden_sizes=(8,), seed=3)
        rising = lstm.forward(np.linspace(0.0, 1.0, 10))
        falling = lstm.forward(np.linspace(1.0, 0.0, 10))
        assert not np.allclose(rising, falling)

    def test_inference_nominal_seconds_about_two_ms(self):
        lstm = StackedLSTM(input_size=1, hidden_sizes=(16, 16))
        assert 0.001 <= lstm.inference_nominal_seconds() <= 0.01

    def test_outputs_bounded_for_bounded_inputs(self):
        lstm = StackedLSTM(input_size=1, hidden_sizes=(8, 8), seed=5)
        out = lstm.forward(np.random.default_rng(1).uniform(-1, 1, size=(50, 1)))
        # tanh-bounded hidden state keeps the read-out small for unit inputs.
        assert np.all(np.abs(out) < 10.0)


class TestSensorWorkload:
    def test_reading_generator_tide_and_anomaly(self):
        generator = SensorReadingGenerator(noise_std_hpa=0.0, anomaly_start_s=100.0)
        assert generator.reading(0.0) == pytest.approx(1013.0, abs=0.5)
        assert generator.reading(150.0) > generator.reading(50.0) + 10.0

    def test_window_shape(self):
        generator = SensorReadingGenerator()
        window = generator.window(end_time_s=100.0, samples=16)
        assert window.shape == (16,)

    def _stations(self, buoy_count=10, sink_count=20):
        buoys = [GroundStation(f"buoy-{i}", float(i), 150.0 + 2.0 * i) for i in range(buoy_count)]
        sinks = [GroundStation(f"sink-{i}", float(i % buoy_count), 150.5 + 2.0 * (i % buoy_count))
                 for i in range(sink_count)]
        return buoys, sinks

    def test_groups_cover_all_buoys_and_sinks(self):
        buoys, sinks = self._stations()
        groups = SensorGroups(buoys, sinks, group_count=4)
        assert set(groups.group_of_buoy) == {b.name for b in buoys}
        assert set(groups.group_of_sink) == {s.name for s in sinks}
        assert sum(len(v) for v in groups.sinks_of_group.values()) == len(sinks)

    def test_sinks_subscribe_to_nearby_group(self):
        buoys, sinks = self._stations()
        groups = SensorGroups(buoys, sinks, group_count=5)
        # A sink co-located with a buoy must subscribe to that buoy's group.
        assert groups.group_of_sink["sink-0"] == groups.group_of_buoy["buoy-0"]
        assert "sink-0" in groups.subscribers("buoy-0")

    def test_group_count_clamped_and_validated(self):
        buoys, sinks = self._stations(buoy_count=3)
        groups = SensorGroups(buoys, sinks, group_count=10)
        assert groups.group_count == 3
        with pytest.raises(ValueError):
            SensorGroups(buoys, sinks, group_count=0)
        with pytest.raises(ValueError):
            SensorGroups([], sinks, group_count=1)

    def test_centroid_within_buoy_spread(self):
        buoys, sinks = self._stations()
        groups = SensorGroups(buoys, sinks, group_count=2)
        lat, lon = groups.centroid(0)
        assert 0.0 <= lat <= 10.0
        assert 150.0 <= lon <= 170.0
