"""Integration tests for the Celestial testbed façade."""

import pytest

from repro import Celestial
from repro.core import ComputeParams, Configuration, GroundStationConfig, HostConfig, NetworkParams, ShellConfig
from repro.microvm import MachineState
from repro.orbits import GroundStation, ShellGeometry
from repro.scenarios import dart_configuration, west_africa_configuration


def _small_config(**overrides):
    parameters = dict(
        shells=(
            ShellConfig(
                name="iridium",
                geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                network=NetworkParams(min_elevation_deg=8.2, isl_bandwidth_kbps=100_000.0,
                                      uplink_bandwidth_kbps=100_000.0),
                compute=ComputeParams(vcpu_count=1, memory_mib=1024),
            ),
        ),
        ground_stations=(
            GroundStationConfig(station=GroundStation("hawaii", 21.3, -157.9)),
            GroundStationConfig(station=GroundStation("guam", 13.44, 144.79)),
        ),
        hosts=HostConfig(count=2, cpu_cores=32, memory_mib=32 * 1024),
        update_interval_s=5.0,
        duration_s=30.0,
    )
    parameters.update(overrides)
    return Configuration(**parameters)


class TestTestbedLifecycle:
    def test_start_creates_machines_and_state(self):
        testbed = Celestial(_small_config())
        testbed.start()
        testbed.run(until=1.0)
        assert testbed.database.has_state
        assert testbed.booted_machines() == 66 + 2
        assert testbed.machine_running(testbed.ground_station("hawaii"))
        assert testbed.state.active_count() == 66

    def test_updates_happen_at_interval(self):
        testbed = Celestial(_small_config())
        testbed.run(until=30.0)
        assert testbed.coordinator.stats.count == 7
        assert testbed.database.updated_at_s == 30.0

    def test_resource_traces_populated(self):
        testbed = Celestial(_small_config(), usage_sample_interval_s=5.0)
        testbed.run(until=30.0)
        traces = testbed.resource_traces()
        assert set(traces) == {0, 1}
        for trace in traces.values():
            assert len(trace) >= 6
            assert trace.peak_memory_percent() > 0.0

    def test_machine_access_and_estimate(self):
        testbed = Celestial(_small_config())
        testbed.run(until=1.0)
        satellite = testbed.satellite(0, 5)
        assert testbed.machine(satellite).state is MachineState.RUNNING
        assert testbed.resource_estimate.satellites_in_box == 66
        assert testbed.processing_delay_s(satellite, 0.002) == pytest.approx(0.002)

    def test_ensure_machine_is_idempotent(self):
        testbed = Celestial(_small_config())
        testbed.run(until=1.0)
        satellite = testbed.satellite(0, 5)
        before = testbed.booted_machines()
        testbed.ensure_machine(satellite)
        assert testbed.booted_machines() == before


class TestTestbedDataPlane:
    def test_message_latency_matches_state_delay(self):
        testbed = Celestial(_small_config())
        testbed.start()
        hawaii = testbed.ground_station("hawaii")
        guam = testbed.ground_station("guam")
        sender = testbed.endpoint(hawaii)
        receiver = testbed.endpoint(guam)
        latencies = []
        expected = []

        def send():
            yield testbed.sim.timeout(1.0)
            # The rule installed for the pair comes from the state current at
            # send time, so capture the expected delay at the same moment.
            expected.append(testbed.state.delay_ms(hawaii, guam))
            sender.send(guam, 256, payload="ping")

        def receive():
            message = yield receiver.receive()
            latencies.append(message.latency_ms(testbed.sim.now))

        testbed.sim.process(receive())
        testbed.sim.process(send())
        testbed.run(until=5.0)
        assert latencies[0] == pytest.approx(expected[0], rel=1e-6)

    def test_messages_to_stopped_machine_dropped(self):
        testbed = Celestial(_small_config())
        testbed.start()
        testbed.run(until=1.0)
        hawaii = testbed.ground_station("hawaii")
        satellite = testbed.satellite(0, 3)
        testbed.endpoint(satellite)
        sender = testbed.endpoint(hawaii)
        testbed.fault_injector.terminate(satellite, testbed.sim.now)

        def send():
            sender.send(satellite, 256)
            yield testbed.sim.timeout(0.5)

        testbed.sim.process(send())
        testbed.run(until=3.0)
        stats = testbed.network_statistics()
        assert stats["dropped"] >= 1
        assert stats["delivered"] == 0

    def test_fault_injected_packet_loss(self):
        testbed = Celestial(_small_config())
        testbed.start()
        testbed.run(until=1.0)
        hawaii = testbed.ground_station("hawaii")
        guam = testbed.ground_station("guam")
        testbed.endpoint(guam)
        sender = testbed.endpoint(hawaii)
        testbed.fault_injector.inject_packet_loss(hawaii, guam, 1.0, testbed.sim.now)

        def send():
            for _ in range(5):
                sender.send(guam, 128)
                yield testbed.sim.timeout(0.1)

        testbed.sim.process(send())
        testbed.run(until=3.0)
        assert testbed.network_statistics()["delivered"] == 0
        assert testbed.network_statistics()["dropped"] >= 5


class TestBoundingBoxSuspension:
    def test_out_of_box_satellites_not_created(self):
        config = west_africa_configuration(duration_s=10.0, shells="lowest")
        testbed = Celestial(config)
        testbed.run(until=10.0)
        assert testbed.booted_machines() < 100
        assert testbed.booted_machines() >= testbed.state.active_count()

    def test_satellites_suspended_after_leaving_box(self):
        config = west_africa_configuration(duration_s=120.0, shells="lowest")
        testbed = Celestial(config)
        testbed.run(until=120.0)
        suspended = sum(manager.suspension_count for manager in testbed.managers)
        # Over two minutes several satellites cross the box boundary.
        assert suspended > 0


class TestReproducibility:
    def _network_fingerprint(self, seed):
        config = _small_config(seed=seed)
        testbed = Celestial(config)
        testbed.start()
        hawaii = testbed.ground_station("hawaii")
        guam = testbed.ground_station("guam")
        sender = testbed.endpoint(hawaii)
        receiver = testbed.endpoint(guam)
        samples = []

        def send():
            while True:
                sender.send(guam, 256)
                yield testbed.sim.timeout(1.0)

        def receive():
            while True:
                message = yield receiver.receive()
                samples.append(round(message.latency_ms(testbed.sim.now), 6))

        testbed.sim.process(send())
        testbed.sim.process(receive())
        testbed.run(until=30.0)
        return samples

    def test_same_seed_identical_results(self):
        assert self._network_fingerprint(1) == self._network_fingerprint(1)

    def test_results_nonempty(self):
        assert len(self._network_fingerprint(2)) >= 25


class TestDartConfigurationIntegration:
    def test_small_dart_testbed_runs(self):
        config = dart_configuration(buoy_count=5, sink_count=10, duration_s=20.0)
        testbed = Celestial(config)
        testbed.run(until=20.0)
        assert testbed.booted_machines() == 66 + 16
        buoy = testbed.ground_station("buoy-0")
        center = testbed.ground_station("pacific-tsunami-warning-center")
        assert testbed.state.reachable(buoy, center)
