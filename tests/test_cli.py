"""Tests for the repro-celestial command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

_CONFIG_TOML = """
epoch = "2022-01-01T00:00:00"
update_interval_s = 5.0
duration_s = 60.0

[hosts]
count = 2
cpu_cores = 32
memory_mib = 98304

[[shells]]
name = "iridium"
[shells.geometry]
planes = 6
satellites_per_plane = 11
altitude_km = 780.0
inclination_deg = 90.0
arc_of_ascending_nodes_deg = 180.0
[shells.network]
min_elevation_deg = 8.2
[shells.compute]
vcpu_count = 1
memory_mib = 1024

[[ground_stations]]
name = "hawaii"
latitude_deg = 21.36
longitude_deg = -157.95
"""


@pytest.fixture()
def config_path(tmp_path):
    path = tmp_path / "config.toml"
    path.write_text(_CONFIG_TOML)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in (
            "validate", "snapshot", "scenarios", "run", "meetup", "dart",
            "handover", "cost",
        ):
            assert command in parser.format_help()


class TestValidateCommand:
    def test_validate_ok(self, config_path, capsys):
        exit_code = main(["validate", config_path])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "satellites" in output
        assert "66" in output

    def test_validate_flags_memory_problem(self, tmp_path, capsys):
        text = _CONFIG_TOML.replace("memory_mib = 98304", "memory_mib = 1024")
        path = tmp_path / "small.toml"
        path.write_text(text)
        exit_code = main(["validate", str(path)])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "warnings" in output


class TestSnapshotCommand:
    def test_snapshot_to_file(self, config_path, tmp_path, capsys):
        output_file = tmp_path / "snapshot.json"
        exit_code = main([
            "snapshot", config_path, "--time", "30", "--output", str(output_file), "--no-links",
        ])
        assert exit_code == 0
        payload = json.loads(output_file.read_text())
        assert len(payload["satellites"]) == 66
        assert "wrote" in capsys.readouterr().out

    def test_snapshot_geojson_to_stdout(self, config_path, capsys):
        exit_code = main(["snapshot", config_path, "--geojson"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["type"] == "FeatureCollection"

    def test_snapshot_json_config(self, tmp_path, capsys):
        # Round-trip the TOML config through JSON to exercise the JSON loader.
        import tomllib

        json_path = tmp_path / "config.json"
        json_path.write_text(json.dumps(tomllib.loads(_CONFIG_TOML)))
        assert main(["snapshot", str(json_path), "--geojson"]) == 0
        assert json.loads(capsys.readouterr().out)["type"] == "FeatureCollection"


class TestExperimentCommands:
    def test_meetup_command(self, capsys):
        exit_code = main([
            "meetup", "--mode", "cloud", "--duration", "20", "--shells", "lowest",
            "--packet-interval", "0.2",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "median latency" in output

    def test_dart_command(self, capsys):
        exit_code = main([
            "dart", "--deployment", "central", "--buoys", "5", "--sinks", "10",
            "--duration", "20",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "results delivered" in output

    def test_handover_command(self, config_path, capsys):
        exit_code = main([
            "handover", config_path, "--station", "hawaii", "--duration", "600",
            "--interval", "60",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "handovers" in output

    def test_cost_command(self, capsys):
        exit_code = main(["cost", "--minutes", "15"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "celestial_usd" in output


_SPEC_TOML = """
name = "cli-spec-smoke"

[scenario]
name = "pacific-dart"

[scenario.params]
buoy_count = 4
deployment = "central"
duration_s = 20.0
sink_count = 8

[workload]
app = "dart"

[workload.params]
deployment = "central"
group_count = 2

[metrics]
outputs = ["summary", "latency-csv"]
"""


class TestDeclarativeCommands:
    def test_scenarios_command(self, capsys):
        exit_code = main(["scenarios"])
        output = capsys.readouterr().out
        assert exit_code == 0
        for name in ("iridium", "pacific-dart", "west-africa-meetup"):
            assert name in output

    def test_run_command_writes_bundle(self, tmp_path, capsys):
        spec_path = tmp_path / "experiment.toml"
        spec_path.write_text(_SPEC_TOML)
        output_dir = tmp_path / "results"
        exit_code = main(["run", str(spec_path), "--output-dir", str(output_dir)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "DART experiment" in output
        assert (output_dir / "result.json").exists()
        assert (output_dir / "latency_dart.csv").exists()

    def test_run_command_no_output(self, tmp_path, capsys):
        spec_path = tmp_path / "experiment.toml"
        spec_path.write_text(_SPEC_TOML)
        exit_code = main(["run", str(spec_path), "--no-output", "--duration", "15"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "15s" in output
        assert "wrote" not in output

    def test_run_command_matches_dart_subcommand(self, tmp_path, capsys):
        main([
            "dart", "--deployment", "central", "--buoys", "4", "--sinks", "8",
            "--duration", "20",
        ])
        direct = capsys.readouterr().out
        spec_path = tmp_path / "experiment.toml"
        spec_path.write_text(_SPEC_TOML)
        main(["run", str(spec_path), "--no-output"])
        declarative = capsys.readouterr().out
        assert declarative == direct
