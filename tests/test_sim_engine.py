"""Unit tests for the discrete-event simulation engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Event, Interrupt, Simulation, SimulationError


def test_timeout_advances_time():
    sim = Simulation()
    log = []

    def proc():
        yield sim.timeout(5.0)
        log.append(sim.now)
        yield sim.timeout(2.5)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [5.0, 7.5]
    assert sim.now == 7.5


def test_negative_timeout_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_run_until_stops_early():
    sim = Simulation()
    fired = []

    def proc():
        yield sim.timeout(10.0)
        fired.append(True)

    sim.process(proc())
    sim.run(until=3.0)
    assert sim.now == 3.0
    assert not fired
    sim.run()
    assert fired == [True]


def test_events_at_same_time_fifo_order():
    sim = Simulation()
    order = []

    def proc(name):
        yield sim.timeout(1.0)
        order.append(name)

    for name in ["a", "b", "c", "d"]:
        sim.process(proc(name))
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_process_return_value_propagates():
    sim = Simulation()
    results = []

    def child():
        yield sim.timeout(1.0)
        return 42

    def parent():
        value = yield sim.process(child())
        results.append(value)

    sim.process(parent())
    sim.run()
    assert results == [42]


def test_waiting_on_already_finished_process():
    sim = Simulation()
    results = []

    def child():
        yield sim.timeout(1.0)
        return "done"

    def parent(child_proc):
        yield sim.timeout(5.0)
        value = yield child_proc
        results.append((sim.now, value))

    child_proc = sim.process(child())
    sim.process(parent(child_proc))
    sim.run()
    assert results == [(5.0, "done")]


def test_event_succeed_wakes_waiter():
    sim = Simulation()
    event = sim.event()
    woke = []

    def waiter():
        value = yield event
        woke.append((sim.now, value))

    def trigger():
        yield sim.timeout(3.0)
        event.succeed("payload")

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert woke == [(3.0, "payload")]


def test_event_double_trigger_rejected():
    sim = Simulation()
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_event_fail_raises_in_waiter():
    sim = Simulation()
    event = sim.event()
    caught = []

    def waiter():
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    def trigger():
        yield sim.timeout(1.0)
        event.fail(ValueError("boom"))

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert caught == ["boom"]


def test_interrupt_process():
    sim = Simulation()
    log = []

    def worker():
        try:
            yield sim.timeout(100.0)
            log.append("finished")
        except Interrupt as interrupt:
            log.append(("interrupted", sim.now, interrupt.cause))

    def interrupter(proc):
        yield sim.timeout(2.0)
        proc.interrupt("fault")

    proc = sim.process(worker())
    sim.process(interrupter(proc))
    sim.run()
    assert log == [("interrupted", 2.0, "fault")]


def test_all_of_waits_for_all():
    sim = Simulation()
    done = []

    def parent():
        timeouts = [sim.timeout(t) for t in (1.0, 4.0, 2.0)]
        yield sim.all_of(timeouts)
        done.append(sim.now)

    sim.process(parent())
    sim.run()
    assert done == [4.0]


def test_any_of_waits_for_first():
    sim = Simulation()
    done = []

    def parent():
        timeouts = [sim.timeout(t) for t in (3.0, 1.0, 2.0)]
        yield sim.any_of(timeouts)
        done.append(sim.now)

    sim.process(parent())
    sim.run()
    assert done == [1.0]


def test_yield_non_event_raises():
    sim = Simulation()

    def bad():
        yield 5

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_processed_events_counter():
    sim = Simulation()

    def proc():
        yield sim.timeout(1.0)
        yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    assert sim.processed_events >= 3


def test_peek_empty_queue_is_infinite():
    sim = Simulation()
    sim.run()
    assert sim.peek() == float("inf")


def test_run_until_past_raises():
    sim = Simulation()

    def proc():
        yield sim.timeout(10.0)

    sim.process(proc())
    sim.run(until=10.0)
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=30))
def test_property_time_is_monotone_and_matches_max_delay(delays):
    sim = Simulation()
    observed = []

    def proc(delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.process(proc(delay))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == pytest.approx(max(delays))
    assert len(observed) == len(delays)
