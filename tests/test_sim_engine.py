"""Unit tests for the discrete-event simulation engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Event, Interrupt, Simulation, SimulationError


def test_timeout_advances_time():
    sim = Simulation()
    log = []

    def proc():
        yield sim.timeout(5.0)
        log.append(sim.now)
        yield sim.timeout(2.5)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [5.0, 7.5]
    assert sim.now == 7.5


def test_negative_timeout_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_run_until_stops_early():
    sim = Simulation()
    fired = []

    def proc():
        yield sim.timeout(10.0)
        fired.append(True)

    sim.process(proc())
    sim.run(until=3.0)
    assert sim.now == 3.0
    assert not fired
    sim.run()
    assert fired == [True]


def test_events_at_same_time_fifo_order():
    sim = Simulation()
    order = []

    def proc(name):
        yield sim.timeout(1.0)
        order.append(name)

    for name in ["a", "b", "c", "d"]:
        sim.process(proc(name))
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_process_return_value_propagates():
    sim = Simulation()
    results = []

    def child():
        yield sim.timeout(1.0)
        return 42

    def parent():
        value = yield sim.process(child())
        results.append(value)

    sim.process(parent())
    sim.run()
    assert results == [42]


def test_waiting_on_already_finished_process():
    sim = Simulation()
    results = []

    def child():
        yield sim.timeout(1.0)
        return "done"

    def parent(child_proc):
        yield sim.timeout(5.0)
        value = yield child_proc
        results.append((sim.now, value))

    child_proc = sim.process(child())
    sim.process(parent(child_proc))
    sim.run()
    assert results == [(5.0, "done")]


def test_event_succeed_wakes_waiter():
    sim = Simulation()
    event = sim.event()
    woke = []

    def waiter():
        value = yield event
        woke.append((sim.now, value))

    def trigger():
        yield sim.timeout(3.0)
        event.succeed("payload")

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert woke == [(3.0, "payload")]


def test_event_double_trigger_rejected():
    sim = Simulation()
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_event_fail_raises_in_waiter():
    sim = Simulation()
    event = sim.event()
    caught = []

    def waiter():
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    def trigger():
        yield sim.timeout(1.0)
        event.fail(ValueError("boom"))

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert caught == ["boom"]


def test_interrupt_process():
    sim = Simulation()
    log = []

    def worker():
        try:
            yield sim.timeout(100.0)
            log.append("finished")
        except Interrupt as interrupt:
            log.append(("interrupted", sim.now, interrupt.cause))

    def interrupter(proc):
        yield sim.timeout(2.0)
        proc.interrupt("fault")

    proc = sim.process(worker())
    sim.process(interrupter(proc))
    sim.run()
    assert log == [("interrupted", 2.0, "fault")]


def test_interrupt_deregisters_stale_wait_callback():
    """Regression: interrupt() left _resume registered on the awaited event,
    so a later trigger resumed the generator a second time at the wrong
    simulated instant."""
    sim = Simulation()
    event = sim.event()
    log = []

    def worker():
        try:
            yield event
            log.append(("value", sim.now))
        except Interrupt:
            log.append(("interrupted", sim.now))
            yield sim.timeout(10.0)
            log.append(("resumed", sim.now))

    def interrupter(proc):
        yield sim.timeout(2.0)
        proc.interrupt("fault")

    def late_trigger():
        yield sim.timeout(5.0)
        event.succeed("late")

    proc = sim.process(worker())
    sim.process(interrupter(proc))
    sim.process(late_trigger())
    sim.run()
    # The stale event at t=5 must not resume the worker; it finishes its
    # post-interrupt timeout at t=12 exactly once.
    assert log == [("interrupted", 2.0), ("resumed", 12.0)]


def test_interrupt_supersedes_queued_resume_from_processed_event():
    """Regression: a resume proxy already queued for an event that had been
    processed must not fire after an interrupt supersedes the wait."""
    sim = Simulation()
    log = []

    def child():
        yield sim.timeout(1.0)
        return "done"

    def worker(child_proc):
        yield sim.timeout(5.0)
        try:
            # child finished at t=1, so this queues an immediate resume proxy.
            value = yield child_proc
            log.append(("value", value, sim.now))
        except Interrupt:
            log.append(("interrupted", sim.now))
            yield sim.timeout(1.0)
            log.append(("resumed", sim.now))

    def interrupter(proc):
        # Runs at t=5 after the worker queued its proxy resume.
        yield sim.timeout(5.0)
        proc.interrupt("fault")

    child_proc = sim.process(child())
    proc = sim.process(worker(child_proc))
    sim.process(interrupter(proc))
    sim.run()
    assert log == [("interrupted", 5.0), ("resumed", 6.0)]


def test_interrupt_before_process_first_runs_is_delivered():
    """An interrupt scheduled before the process has started (so the process
    re-waits on its first event in between) must still be delivered."""
    sim = Simulation()
    log = []

    def worker():
        try:
            yield sim.timeout(100.0)
            log.append("finished")
        except Interrupt as interrupt:
            log.append(("interrupted", sim.now, interrupt.cause))

    proc = sim.process(worker())
    proc.interrupt("early")
    sim.run()
    assert log == [("interrupted", 0.0, "early")]


def test_two_interrupts_in_same_timestep_both_delivered():
    sim = Simulation()
    log = []

    def worker():
        for _ in range(2):
            try:
                yield sim.timeout(100.0)
                log.append("finished")
            except Interrupt as interrupt:
                log.append(("interrupted", sim.now, interrupt.cause))

    def interrupter(proc):
        yield sim.timeout(1.0)
        proc.interrupt("first")
        proc.interrupt("second")

    proc = sim.process(worker())
    sim.process(interrupter(proc))
    sim.run()
    assert log == [("interrupted", 1.0, "first"), ("interrupted", 1.0, "second")]


def test_interrupt_delivery_detaches_the_new_wait():
    """When an interrupt is popped after the process re-waited on another
    event, that event must not resume the process a second time either."""
    sim = Simulation()
    first = sim.event()
    second = sim.event()
    log = []

    def worker():
        try:
            yield first
            log.append(("first", sim.now))
        except Interrupt:
            log.append(("interrupted-first", sim.now))
        try:
            yield second
            log.append(("second", sim.now))
        except Interrupt:
            log.append(("interrupted-second", sim.now))
            yield sim.timeout(10.0)
            log.append(("recovered", sim.now))

    proc = sim.process(worker())
    # Interrupt before the worker first runs: the init event pops first,
    # the worker waits on `first`, then the interrupt detaches that wait and
    # the handler moves on to wait on `second`.
    proc.interrupt("early")

    def late_triggers():
        yield sim.timeout(5.0)
        first.succeed("stale")
        second.succeed("fresh")

    sim.process(late_triggers())
    sim.run()
    assert log == [("interrupted-first", 0.0), ("second", 5.0)]


def test_interrupt_from_sibling_callback_of_same_event():
    """Regression: when two processes wait on one event and the first-resumed
    process interrupts the second, the second must get the Interrupt, not the
    event value — even though step() already snapshotted the callback list
    (so deregistration alone cannot stop the in-flight resume)."""
    sim = Simulation()
    event = sim.event()
    log = []

    def second():
        try:
            yield event
            log.append(("value", sim.now))
        except Interrupt:
            log.append(("interrupted", sim.now))
            yield sim.timeout(1.0)
            log.append(("recovered", sim.now))

    def trigger():
        yield sim.timeout(2.0)
        event.succeed("payload")

    # `first` registers on the event before `second`, so it resumes first.
    second_proc_holder = []

    def first():
        yield event
        second_proc_holder[0].interrupt("race")

    sim.process(first())
    second_proc_holder.append(sim.process(second()))
    sim.process(trigger())
    sim.run()
    assert log == [("interrupted", 2.0), ("recovered", 3.0)]


def test_interrupt_while_waiting_on_triggered_but_unprocessed_event():
    """An event that has been triggered but not yet processed can still be
    deregistered by an interrupt arriving in the same timestep."""
    sim = Simulation()
    event = sim.event()
    log = []

    def worker():
        try:
            yield event
            log.append(("value", sim.now))
        except Interrupt:
            log.append(("interrupted", sim.now))
            yield sim.timeout(3.0)
            log.append(("resumed", sim.now))

    def trigger_then_interrupt(proc):
        yield sim.timeout(2.0)
        event.succeed("payload")
        proc.interrupt("fault")

    proc = sim.process(worker())
    sim.process(trigger_then_interrupt(proc))
    sim.run()
    assert log == [("interrupted", 2.0), ("resumed", 5.0)]


def test_all_of_waits_for_all():
    sim = Simulation()
    done = []

    def parent():
        timeouts = [sim.timeout(t) for t in (1.0, 4.0, 2.0)]
        yield sim.all_of(timeouts)
        done.append(sim.now)

    sim.process(parent())
    sim.run()
    assert done == [4.0]


def test_any_of_waits_for_first():
    sim = Simulation()
    done = []

    def parent():
        timeouts = [sim.timeout(t) for t in (3.0, 1.0, 2.0)]
        yield sim.any_of(timeouts)
        done.append(sim.now)

    sim.process(parent())
    sim.run()
    assert done == [1.0]


def test_yield_non_event_raises():
    sim = Simulation()

    def bad():
        yield 5

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_processed_events_counter():
    sim = Simulation()

    def proc():
        yield sim.timeout(1.0)
        yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    assert sim.processed_events >= 3


def test_peek_empty_queue_is_infinite():
    sim = Simulation()
    sim.run()
    assert sim.peek() == float("inf")


def test_run_until_past_raises():
    sim = Simulation()

    def proc():
        yield sim.timeout(10.0)

    sim.process(proc())
    sim.run(until=10.0)
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=30))
def test_property_time_is_monotone_and_matches_max_delay(delays):
    sim = Simulation()
    observed = []

    def proc(delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.process(proc(delay))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == pytest.approx(max(delays))
    assert len(observed) == len(delays)
