"""Unit tests for simulation stores and resources."""

import pytest

from repro.sim import Resource, Simulation, SimulationError, Store


def test_store_put_get_fifo():
    sim = Simulation()
    store = Store(sim)
    received = []

    def producer():
        for item in ["a", "b", "c"]:
            yield sim.timeout(1.0)
            store.put(item)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append((sim.now, item))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == [(1.0, "a"), (2.0, "b"), (3.0, "c")]


def test_store_get_before_put_blocks():
    sim = Simulation()
    store = Store(sim)
    received = []

    def consumer():
        item = yield store.get()
        received.append((sim.now, item))

    def producer():
        yield sim.timeout(7.0)
        store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert received == [(7.0, "late")]


def test_store_capacity_blocks_put():
    sim = Simulation()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("first")
        log.append(("first-accepted", sim.now))
        yield store.put("second")
        log.append(("second-accepted", sim.now))

    def consumer():
        yield sim.timeout(5.0)
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("first-accepted", 0.0) in log
    assert ("got", "first", 5.0) in log
    assert ("second-accepted", 5.0) in log


def test_store_items_snapshot_and_len():
    sim = Simulation()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == [1, 2]


def test_store_invalid_capacity():
    sim = Simulation()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_resource_limits_concurrency():
    sim = Simulation()
    resource = Resource(sim, capacity=2)
    active = []
    max_active = []

    def worker(name):
        yield resource.request()
        active.append(name)
        max_active.append(len(active))
        yield sim.timeout(10.0)
        active.remove(name)
        resource.release()

    for i in range(5):
        sim.process(worker(i))
    sim.run()
    assert max(max_active) == 2
    assert resource.in_use == 0
    assert resource.available == 2


def test_resource_release_without_request_raises():
    sim = Simulation()
    resource = Resource(sim)
    with pytest.raises(SimulationError):
        resource.release()


def test_resource_invalid_capacity():
    sim = Simulation()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)
