"""Unit tests for the constellation database, info API, DNS-over-HTTP and animation."""

import json
import urllib.request

import pytest

from repro.core import (
    CelestialDNS,
    ComputeParams,
    Configuration,
    ConstellationCalculation,
    ConstellationDatabase,
    GroundStationConfig,
    HTTPInfoServer,
    InfoAPI,
    InfoAPIError,
    NetworkParams,
    ShellConfig,
    constellation_snapshot,
    snapshot_to_geojson,
)
from repro.orbits import GroundStation, ShellGeometry


@pytest.fixture(scope="module")
def setup():
    config = Configuration(
        shells=(
            ShellConfig(
                name="iridium",
                geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                network=NetworkParams(min_elevation_deg=8.2),
                compute=ComputeParams(vcpu_count=1, memory_mib=1024),
            ),
        ),
        ground_stations=(
            GroundStationConfig(station=GroundStation("hawaii", 21.3, -157.9)),
            GroundStationConfig(station=GroundStation("buoy-0", 10.0, -160.0)),
        ),
        update_interval_s=5.0,
    )
    calculation = ConstellationCalculation(config)
    database = ConstellationDatabase()
    database.set_state(calculation.state_at(0.0))
    dns = CelestialDNS(config.shell_sizes, config.ground_station_names)
    api = InfoAPI(database, calculation, dns)
    return config, calculation, database, api


class TestDatabase:
    def test_requires_state(self):
        database = ConstellationDatabase()
        assert not database.has_state
        with pytest.raises(RuntimeError):
            _ = database.state

    def test_epoch_increments(self, setup):
        _, calculation, database, _ = setup
        before = database.epoch
        database.set_state(calculation.state_at(5.0))
        assert database.epoch == before + 1
        assert database.updated_at_s == 5.0
        database.set_state(calculation.state_at(0.0))

    def test_constellation_info(self, setup):
        _, _, database, _ = setup
        info = database.constellation_info()
        assert info["satellites"] == 66
        assert info["ground_stations"] == 2
        assert info["links"] > 0

    def test_satellite_info(self, setup):
        _, _, database, _ = setup
        info = database.satellite_info(0, 13)
        assert info["name"] == "13.0.celestial"
        assert info["active"] is True
        assert len(info["position_ecef_km"]) == 3
        with pytest.raises(KeyError):
            database.satellite_info(0, 999)
        with pytest.raises(KeyError):
            database.satellite_info(9, 0)

    def test_ground_station_info(self, setup):
        _, _, database, _ = setup
        info = database.ground_station_info("hawaii")
        assert info["name"] == "hawaii"
        assert len(info["uplinks"]) >= 1
        with pytest.raises(KeyError):
            database.ground_station_info("atlantis")

    def test_path_info_and_pair_rule(self, setup):
        _, calculation, database, _ = setup
        hawaii = calculation.ground_station("hawaii")
        buoy = calculation.ground_station("buoy-0")
        path = database.path_info(hawaii, buoy)
        assert path["reachable"]
        assert path["delay_ms"] > 0
        assert path["rtt_ms"] == pytest.approx(2 * path["delay_ms"])
        assert len(path["hops"]) >= 3
        rule = database.pair_rule(hawaii, buoy)
        assert rule.reachable
        assert rule.delay_ms == pytest.approx(path["delay_ms"])
        # The rule is cached per epoch.
        assert database.pair_rule(hawaii, buoy) is rule


class TestInfoAPI:
    def test_info_routes(self, setup):
        _, _, _, api = setup
        assert api.get("/info")["satellites"] == 66
        assert api.get("/shell/0")["satellites"] == 66
        assert api.get("/sat/0/13")["name"] == "13.0.celestial"
        assert api.get("/gst/hawaii")["name"] == "hawaii"
        assert api.get("/self/13.0.celestial")["identifier"] == 13
        assert api.get("/self/hawaii")["name"] == "hawaii"
        path = api.get("/path/hawaii/buoy-0")
        assert path["reachable"]
        record = api.get("/dns/13.0.celestial")
        assert record["type"] == "A"

    def test_unknown_routes(self, setup):
        _, _, _, api = setup
        with pytest.raises(InfoAPIError):
            api.get("/bogus")
        with pytest.raises(InfoAPIError):
            api.get("/sat/0/9999")
        with pytest.raises(InfoAPIError):
            api.get("/gst/atlantis")
        with pytest.raises(InfoAPIError):
            api.get("/self/unknown-machine")

    def test_http_server_serves_json(self, setup):
        _, _, _, api = setup
        with HTTPInfoServer(api) as server:
            host, port = server.address
            with urllib.request.urlopen(f"http://{host}:{port}/info", timeout=5) as response:
                payload = json.loads(response.read())
                assert payload["satellites"] == 66
            with urllib.request.urlopen(f"http://{host}:{port}/sat/0/3", timeout=5) as response:
                assert json.loads(response.read())["name"] == "3.0.celestial"

    def test_http_server_404(self, setup):
        _, _, _, api = setup
        with HTTPInfoServer(api) as server:
            host, port = server.address
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"http://{host}:{port}/nope", timeout=5)


class TestDiffHistoryAPI:
    def _chained(self, epochs=6, keyframe_interval=4):
        config = Configuration(
            shells=(
                ShellConfig(
                    name="iridium",
                    geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                    network=NetworkParams(min_elevation_deg=8.2),
                    compute=ComputeParams(vcpu_count=1, memory_mib=1024),
                ),
            ),
            ground_stations=(
                GroundStationConfig(station=GroundStation("hawaii", 21.3, -157.9)),
            ),
            update_interval_s=5.0,
        )
        calculation = ConstellationCalculation(config)
        database = ConstellationDatabase(keyframe_interval=keyframe_interval)
        state = calculation.state_at(0.0)
        database.set_state(state)
        for step in range(1, epochs):
            state, diff = calculation.diff_since(state, step * 30.0)
            database.set_state(state, diff=diff)
        return calculation, database, InfoAPI(database, calculation)

    def test_wire_format_matches_diff_history(self):
        calculation, database, api = self._chained()
        payload = api.get("/diffs/1")
        assert payload["since_epoch"] == 1
        assert payload["epoch"] == database.epoch
        assert len(payload["diffs"]) == database.epoch - 1
        chain = database.diffs_since(1)
        for record, diff in zip(payload["diffs"], chain):
            assert record["time_s"] == diff.time_s
            assert record["previous_time_s"] == diff.previous_time_s
            assert record["summary"] == diff.summary()
            assert len(record["links_added"]) == diff.topology.links_added.size
            assert len(record["links_removed"]) == diff.topology.links_removed.size
            assert len(record["delay_changed"]) == diff.topology.delay_changed.size
            for a, b, delay in record["delay_changed"][:5]:
                assert isinstance(a, int) and isinstance(b, int)
                link = diff.topology.current.link_between(a, b)
                assert link is not None and link.delay_ms == delay
            for a, b, delay, bandwidth in record["links_added"][:5]:
                assert isinstance(a, int) and isinstance(b, int)
                link = diff.topology.current.link_between(a, b)
                assert link is not None
                assert link.delay_ms == delay and link.bandwidth_kbps == bandwidth
        # Consecutive epochs are numbered contiguously up to the current one.
        assert [r["epoch"] for r in payload["diffs"]] == list(
            range(2, database.epoch + 1)
        )
        # JSON-serialisable end to end.
        json.dumps(payload)

    def test_current_epoch_yields_empty_stream(self):
        _, database, api = self._chained()
        payload = api.get(f"/diffs/{database.epoch}")
        assert payload["diffs"] == []

    def test_pruned_and_future_epochs_are_errors(self):
        _, database, api = self._chained(epochs=12, keyframe_interval=3)
        with pytest.raises(InfoAPIError) as excinfo:
            api.get("/diffs/1")  # pruned away
        assert "keyframe" in str(excinfo.value)
        with pytest.raises(InfoAPIError):
            api.get(f"/diffs/{database.epoch + 5}")  # the future

    def test_served_over_http(self):
        _, database, api = self._chained()
        with HTTPInfoServer(api) as server:
            host, port = server.address
            with urllib.request.urlopen(
                f"http://{host}:{port}/diffs/1", timeout=5
            ) as response:
                payload = json.loads(response.read())
                assert payload["epoch"] == database.epoch
                assert len(payload["diffs"]) == database.epoch - 1
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"http://{host}:{port}/diffs/999", timeout=5)


class TestAnimation:
    def test_snapshot_structure(self, setup):
        _, _, database, _ = setup
        snapshot = constellation_snapshot(database.state)
        assert len(snapshot["satellites"]) == 66
        assert len(snapshot["ground_stations"]) == 2
        assert len(snapshot["links"]) == database.state.graph.total_links()
        altitudes = [sat["altitude_km"] for sat in snapshot["satellites"]]
        assert all(700.0 < altitude < 860.0 for altitude in altitudes)

    def test_snapshot_without_links(self, setup):
        _, _, database, _ = setup
        snapshot = constellation_snapshot(database.state, include_links=False)
        assert "links" not in snapshot

    def test_geojson_output(self, setup):
        _, _, database, _ = setup
        geojson = snapshot_to_geojson(database.state)
        assert geojson["type"] == "FeatureCollection"
        kinds = {feature["properties"]["kind"] for feature in geojson["features"]}
        assert kinds == {"satellite", "ground_station"}
        assert len(geojson["features"]) == 68
        # JSON serialisable end to end.
        json.dumps(geojson)


class TestKeyframeDiffReplay:
    """diffs_between / activity_at_epoch: the worker-recovery replay path."""

    def _advance(self, keyframe_interval=4, epochs=11, bounding_box=None):
        config = Configuration(
            shells=(
                ShellConfig(
                    name="iridium",
                    geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                    network=NetworkParams(min_elevation_deg=8.2),
                    compute=ComputeParams(vcpu_count=1, memory_mib=1024),
                ),
            ),
            ground_stations=(
                GroundStationConfig(station=GroundStation("hawaii", 21.3, -157.9)),
            ),
            bounding_box=bounding_box,
            update_interval_s=5.0,
        )
        calculation = ConstellationCalculation(config)
        database = ConstellationDatabase(keyframe_interval=keyframe_interval)
        state = calculation.state_at(0.0)
        database.set_state(state)
        masks_by_epoch = {1: {s: m.copy() for s, m in state.active_satellites.items()}}
        for step in range(1, epochs):
            state, diff = calculation.diff_since(state, step * 60.0)
            database.set_state(state, diff=diff)
            masks_by_epoch[database.epoch] = {
                s: m.copy() for s, m in state.active_satellites.items()
            }
        return database, masks_by_epoch

    def test_diffs_between_bounds_and_chain(self):
        database, _ = self._advance()
        chain = database.diffs_between(5, 9)
        assert len(chain) == 4
        assert chain == database.diffs_since(5)[:4]
        assert database.diffs_between(7, 7) == []
        with pytest.raises(KeyError):
            database.diffs_between(9, 99)
        with pytest.raises(KeyError):
            database.diffs_between(0, 2)  # pruned history

    def test_activity_replay_matches_recorded_masks(self):
        import numpy as np

        from repro.core import BoundingBox

        # A bounding box makes activity genuinely change across epochs.
        database, masks = self._advance(
            bounding_box=BoundingBox(-35.0, 35.0, -180.0, -100.0)
        )
        changed = any(
            not np.array_equal(masks[e][0], masks[e + 1][0])
            for e in range(4, database.epoch)
        )
        assert changed, "scenario too static to exercise the replay"
        for epoch in range(min(database._keyframes), database.epoch + 1):
            replayed = database.activity_at_epoch(epoch)
            for shell, mask in masks[epoch].items():
                assert np.array_equal(replayed[shell], mask), epoch

    def test_activity_before_retained_history_rejected(self):
        database, _ = self._advance()
        with pytest.raises(KeyError, match="keyframe"):
            database.activity_at_epoch(1)
