"""Unit tests for the constellation database, info API, DNS-over-HTTP and animation."""

import json
import urllib.request

import pytest

from repro.core import (
    CelestialDNS,
    ComputeParams,
    Configuration,
    ConstellationCalculation,
    ConstellationDatabase,
    GroundStationConfig,
    HTTPInfoServer,
    InfoAPI,
    InfoAPIError,
    NetworkParams,
    ShellConfig,
    constellation_snapshot,
    snapshot_to_geojson,
)
from repro.orbits import GroundStation, ShellGeometry


@pytest.fixture(scope="module")
def setup():
    config = Configuration(
        shells=(
            ShellConfig(
                name="iridium",
                geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                network=NetworkParams(min_elevation_deg=8.2),
                compute=ComputeParams(vcpu_count=1, memory_mib=1024),
            ),
        ),
        ground_stations=(
            GroundStationConfig(station=GroundStation("hawaii", 21.3, -157.9)),
            GroundStationConfig(station=GroundStation("buoy-0", 10.0, -160.0)),
        ),
        update_interval_s=5.0,
    )
    calculation = ConstellationCalculation(config)
    database = ConstellationDatabase()
    database.set_state(calculation.state_at(0.0))
    dns = CelestialDNS(config.shell_sizes, config.ground_station_names)
    api = InfoAPI(database, calculation, dns)
    return config, calculation, database, api


class TestDatabase:
    def test_requires_state(self):
        database = ConstellationDatabase()
        assert not database.has_state
        with pytest.raises(RuntimeError):
            _ = database.state

    def test_epoch_increments(self, setup):
        _, calculation, database, _ = setup
        before = database.epoch
        database.set_state(calculation.state_at(5.0))
        assert database.epoch == before + 1
        assert database.updated_at_s == 5.0
        database.set_state(calculation.state_at(0.0))

    def test_constellation_info(self, setup):
        _, _, database, _ = setup
        info = database.constellation_info()
        assert info["satellites"] == 66
        assert info["ground_stations"] == 2
        assert info["links"] > 0

    def test_satellite_info(self, setup):
        _, _, database, _ = setup
        info = database.satellite_info(0, 13)
        assert info["name"] == "13.0.celestial"
        assert info["active"] is True
        assert len(info["position_ecef_km"]) == 3
        with pytest.raises(KeyError):
            database.satellite_info(0, 999)
        with pytest.raises(KeyError):
            database.satellite_info(9, 0)

    def test_ground_station_info(self, setup):
        _, _, database, _ = setup
        info = database.ground_station_info("hawaii")
        assert info["name"] == "hawaii"
        assert len(info["uplinks"]) >= 1
        with pytest.raises(KeyError):
            database.ground_station_info("atlantis")

    def test_path_info_and_pair_rule(self, setup):
        _, calculation, database, _ = setup
        hawaii = calculation.ground_station("hawaii")
        buoy = calculation.ground_station("buoy-0")
        path = database.path_info(hawaii, buoy)
        assert path["reachable"]
        assert path["delay_ms"] > 0
        assert path["rtt_ms"] == pytest.approx(2 * path["delay_ms"])
        assert len(path["hops"]) >= 3
        rule = database.pair_rule(hawaii, buoy)
        assert rule.reachable
        assert rule.delay_ms == pytest.approx(path["delay_ms"])
        # The rule is cached per epoch.
        assert database.pair_rule(hawaii, buoy) is rule


class TestInfoAPI:
    def test_info_routes(self, setup):
        _, _, _, api = setup
        assert api.get("/info")["satellites"] == 66
        assert api.get("/shell/0")["satellites"] == 66
        assert api.get("/sat/0/13")["name"] == "13.0.celestial"
        assert api.get("/gst/hawaii")["name"] == "hawaii"
        assert api.get("/self/13.0.celestial")["identifier"] == 13
        assert api.get("/self/hawaii")["name"] == "hawaii"
        path = api.get("/path/hawaii/buoy-0")
        assert path["reachable"]
        record = api.get("/dns/13.0.celestial")
        assert record["type"] == "A"

    def test_unknown_routes(self, setup):
        _, _, _, api = setup
        with pytest.raises(InfoAPIError):
            api.get("/bogus")
        with pytest.raises(InfoAPIError):
            api.get("/sat/0/9999")
        with pytest.raises(InfoAPIError):
            api.get("/gst/atlantis")
        with pytest.raises(InfoAPIError):
            api.get("/self/unknown-machine")

    def test_http_server_serves_json(self, setup):
        _, _, _, api = setup
        with HTTPInfoServer(api) as server:
            host, port = server.address
            with urllib.request.urlopen(f"http://{host}:{port}/info", timeout=5) as response:
                payload = json.loads(response.read())
                assert payload["satellites"] == 66
            with urllib.request.urlopen(f"http://{host}:{port}/sat/0/3", timeout=5) as response:
                assert json.loads(response.read())["name"] == "3.0.celestial"

    def test_http_server_404(self, setup):
        _, _, _, api = setup
        with HTTPInfoServer(api) as server:
            host, port = server.address
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"http://{host}:{port}/nope", timeout=5)


class TestAnimation:
    def test_snapshot_structure(self, setup):
        _, _, database, _ = setup
        snapshot = constellation_snapshot(database.state)
        assert len(snapshot["satellites"]) == 66
        assert len(snapshot["ground_stations"]) == 2
        assert len(snapshot["links"]) == database.state.graph.total_links()
        altitudes = [sat["altitude_km"] for sat in snapshot["satellites"]]
        assert all(700.0 < altitude < 860.0 for altitude in altitudes)

    def test_snapshot_without_links(self, setup):
        _, _, database, _ = setup
        snapshot = constellation_snapshot(database.state, include_links=False)
        assert "links" not in snapshot

    def test_geojson_output(self, setup):
        _, _, database, _ = setup
        geojson = snapshot_to_geojson(database.state)
        assert geojson["type"] == "FeatureCollection"
        kinds = {feature["properties"]["kind"] for feature in geojson["features"]}
        assert kinds == {"satellite", "ground_station"}
        assert len(geojson["features"]) == 68
        # JSON serialisable end to end.
        json.dumps(geojson)
