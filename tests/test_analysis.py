"""Unit tests for latency metrics, repetition helpers, cost model and reports."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    GCPPriceTable,
    LatencySeries,
    celestial_experiment_cost,
    cost_comparison,
    median_repetition,
    per_satellite_vm_cost,
    render_table,
    run_repetitions,
)


class TestLatencySeries:
    def _series(self, values, start=0.0, step=1.0):
        series = LatencySeries("test")
        for index, value in enumerate(values):
            series.add(start + index * step, value)
        return series

    def test_basic_statistics(self):
        series = self._series([10.0, 20.0, 30.0, 40.0])
        assert series.mean() == 25.0
        assert series.median() == 25.0
        assert series.percentile(75) == pytest.approx(32.5)
        assert len(series) == 4

    def test_fraction_below(self):
        series = self._series([10.0, 12.0, 14.0, 50.0, 60.0])
        assert series.fraction_below(16.0) == pytest.approx(0.6)
        assert series.fraction_below(100.0) == 1.0

    def test_cdf_monotone(self):
        series = self._series([30.0, 10.0, 20.0])
        values, fractions = series.cdf()
        assert values.tolist() == [10.0, 20.0, 30.0]
        assert fractions.tolist() == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]

    def test_rolling_median(self):
        series = LatencySeries()
        for t in np.arange(0.0, 10.0, 0.25):
            series.add(float(t), 10.0 if t < 5.0 else 30.0)
        centres, medians = series.rolling_median(window_s=1.0)
        assert medians[0] == 10.0
        assert medians[-1] == 30.0
        assert len(centres) == len(medians)

    def test_filtered_and_merged(self):
        series = LatencySeries()
        series.add(0.0, 10.0, "a", "b")
        series.add(1.0, 20.0, "b", "a")
        filtered = series.filtered(source="a")
        assert len(filtered) == 1
        merged = filtered.merged_with(series.filtered(source="b"))
        assert len(merged) == 2

    def test_empty_series(self):
        series = LatencySeries()
        assert np.isnan(series.mean())
        assert np.isnan(series.fraction_below(10.0))
        times, medians = series.rolling_median()
        assert times.size == 0 and medians.size == 0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencySeries().add(0.0, -1.0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=50))
    def test_property_percentiles_bounded_by_extremes(self, values):
        series = self._series(values)
        assert series.percentile(0) == pytest.approx(min(values))
        assert series.percentile(100) == pytest.approx(max(values))
        assert min(values) <= series.mean() <= max(values)


class TestRepetitions:
    def test_run_repetitions_default_seeds(self):
        results = run_repetitions(lambda seed: seed * 10, repetitions=3)
        assert [r.result for r in results] == [0, 10, 20]
        assert [r.seed for r in results] == [0, 1, 2]

    def test_run_repetitions_custom_seeds(self):
        results = run_repetitions(lambda seed: seed, repetitions=2, seeds=[7, 9])
        assert [r.result for r in results] == [7, 9]
        with pytest.raises(ValueError):
            run_repetitions(lambda seed: seed, repetitions=2, seeds=[1])
        with pytest.raises(ValueError):
            run_repetitions(lambda seed: seed, repetitions=0)

    def test_median_repetition(self):
        results = run_repetitions(lambda seed: {"metric": [5.0, 1.0, 3.0][seed]}, repetitions=3)
        median = median_repetition(results, key=lambda result: result["metric"])
        assert median.result["metric"] == 3.0
        with pytest.raises(ValueError):
            median_repetition([], key=lambda result: result)


class TestCostModel:
    def test_celestial_cheaper_than_per_satellite_vms(self):
        celestial = celestial_experiment_cost()
        naive = per_satellite_vm_cost()
        assert celestial < naive
        assert naive / celestial > 5.0

    def test_cost_scales_with_duration_and_count(self):
        table = GCPPriceTable()
        assert table.cost("f1-micro", 10, 30.0) == pytest.approx(2 * table.cost("f1-micro", 10, 15.0))
        assert table.cost("f1-micro", 20, 15.0) == pytest.approx(2 * table.cost("f1-micro", 10, 15.0))

    def test_minimum_billing(self):
        table = GCPPriceTable()
        assert table.cost("f1-micro", 1, 0.1) == table.cost("f1-micro", 1, 1.0)

    def test_unknown_machine_type(self):
        with pytest.raises(KeyError):
            GCPPriceTable().hourly("quantum-mega-128")
        with pytest.raises(ValueError):
            GCPPriceTable().cost("f1-micro", -1, 10.0)

    def test_comparison_structure(self):
        comparison = cost_comparison()
        assert comparison["celestial_usd"] < comparison["per_satellite_vm_usd"]
        assert comparison["savings_factor"] > 1.0
        assert comparison["paper_celestial_usd"] == 3.30
        assert comparison["paper_per_satellite_vm_usd"] == 539.66


class TestReport:
    def test_render_table(self):
        text = render_table(
            ["pair", "median [ms]"],
            [["accra->abuja", 9.02], ["abuja->yaounde", 10.5]],
            title="Fig. 4",
        )
        lines = text.splitlines()
        assert lines[0] == "Fig. 4"
        assert "pair" in lines[1]
        assert "accra->abuja" in lines[3]
        assert "9.02" in text

    def test_render_table_validates_row_length(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])
