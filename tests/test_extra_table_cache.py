"""The cost-aware extra-table cache: bounding, eviction policy, stats.

``ConstellationState._paths_from`` lazily caches single-source tables
for satellite-to-satellite queries.  This suite pins the cache's three
contracts: the effective cap is enforced at *insert* time (and a cap of
0 disables caching outright), the memory guard shrinks the cap on large
graphs, and eviction is cost-aware — a table that earns query hits
survives a flood of one-shot queries, while an evicted table re-solves
cold on its next use.  Hits, misses and evictions are asserted all the
way through ``UpdateStats`` (the ``path_statistics`` plumbing).
"""

import pytest

from repro.core import ConstellationCalculation
from repro.core.constellation import _ExtraTableScores
from repro.core.coordinator import UpdateStats
from repro.scenarios import dart_configuration


@pytest.fixture(scope="module")
def config():
    return dart_configuration(buoy_count=4, sink_count=4, duration_s=600.0)


def _query(state, calculation, identifier, probe_identifier=0):
    """A satellite-to-satellite delay query (forces an extra table)."""
    return state.delay_ms(
        calculation.satellite(0, identifier),
        calculation.satellite(0, probe_identifier),
    )


class TestInsertTimeBounding:
    def test_cap_enforced_on_every_insert(self, config):
        calculation = ConstellationCalculation(config, max_carried_extra_tables=3)
        state = calculation.state_at(0.0)
        for i in range(1, 10):
            _query(state, calculation, i)
            # Never exceeds the cap intra-epoch, not just at the carry.
            assert len(state._extra_paths) <= 3
        assert len(state._extra_paths) == 3
        assert calculation.path_engine.stats.cache_evictions == 6
        assert calculation.path_engine.stats.cache_misses == 9

    def test_cap_zero_disables_caching_and_carry(self, config):
        calculation = ConstellationCalculation(config, max_carried_extra_tables=0)
        state = calculation.state_at(0.0)
        _query(state, calculation, 1)
        _query(state, calculation, 1)
        assert state._extra_paths == {}
        # Both queries re-solved cold: nothing was cached, so no hits.
        assert calculation.path_engine.stats.cache_misses == 2
        assert calculation.path_engine.stats.cache_hits == 0
        state, _ = calculation.diff_since(state, 5.0)
        assert state._extra_paths == {}

    def test_memory_guard_shrinks_cap_on_large_graphs(self, config):
        calculation = ConstellationCalculation(config, max_carried_extra_tables=10**9)

        class _FakeGraph:
            def __init__(self, nodes, links):
                self.index = list(range(nodes))
                self._links = links

            def total_links(self):
                return self._links

        budget = calculation.EXTRA_TABLE_MEMORY_BUDGET_MB * 1024 * 1024
        # Mid-size constellation: the memory bound, not the configured
        # cap, decides — and it shrinks as the node count grows.
        mid = calculation._extra_table_cap(_FakeGraph(20_000, 80_000))
        assert mid == budget // (20_000 * 20 + 80_000)
        large = calculation._extra_table_cap(_FakeGraph(200_000, 800_000))
        assert large < mid
        # Extreme synthetic counts floor at the 32-table minimum.
        assert calculation._extra_table_cap(_FakeGraph(10**7, 10**8)) == 32


class TestCostAwareEviction:
    def test_hot_table_survives_one_shot_flood(self, config):
        calculation = ConstellationCalculation(config, max_carried_extra_tables=3)
        state = calculation.state_at(0.0)
        # Table for satellite 1 becomes hot: repeated queries record hits.
        _query(state, calculation, 1)
        for _ in range(5):
            assert _query(state, calculation, 1) == pytest.approx(
                _query(state, calculation, 1)
            )
        hot_node = state.node_for(calculation.satellite(0, 1))
        # Flood of one-shot queries, each inserting (and evicting).
        for i in range(2, 12):
            _query(state, calculation, i)
        assert hot_node in state._extra_paths  # the hot table survived
        assert len(state._extra_paths) == 3
        assert calculation.path_engine.stats.cache_hits >= 5

    def test_hot_table_survives_the_epoch_carry(self, config):
        calculation = ConstellationCalculation(config, max_carried_extra_tables=2)
        state = calculation.state_at(0.0)
        _query(state, calculation, 1)  # A: inserted first ...
        for _ in range(3):
            _query(state, calculation, 1)  # ... and hot
        _query(state, calculation, 2)  # B: more recent, never re-read
        hot_node = state.node_for(calculation.satellite(0, 1))
        state, _ = calculation.diff_since(state, 5.0)
        assert hot_node in state._extra_paths
        # A third table now evicts cold B, not hot A, despite B's recency.
        _query(state, calculation, 3)
        assert hot_node in state._extra_paths
        assert state.node_for(calculation.satellite(0, 2)) not in state._extra_paths

    def test_evicted_table_resolves_cold_on_next_use(self, config):
        calculation = ConstellationCalculation(config, max_carried_extra_tables=1)
        state = calculation.state_at(0.0)
        _query(state, calculation, 1)
        _query(state, calculation, 2)  # evicts satellite 1's table
        stats = calculation.path_engine.stats
        assert stats.cache_evictions == 1
        cold_before = stats.cold_solves
        misses_before = stats.cache_misses
        reference = _query(state, calculation, 1)  # must re-solve cold
        assert stats.cold_solves == cold_before + 1
        assert stats.cache_misses == misses_before + 1
        # ... and the re-solved answer is the correct one.
        node = state.node_for(calculation.satellite(0, 1))
        probe = state.node_for(calculation.satellite(0, 0))
        assert reference == state._extra_paths[node].delay_ms(node, probe)

    def test_scores_decay_and_drop(self):
        scores = _ExtraTableScores()
        scores.record_insert(7)
        for _ in range(5):
            scores.record_hit(7)
        scores.record_cost(7, 4.0)
        scores.record_insert(9)
        # 7 earned enough hits to outvalue its advance cost: (5+1)/(4+1)
        # beats the untouched table's (0+1)/(0+1), so 9 evicts first.
        assert scores.rank(9) < scores.rank(7)
        scores.decay()
        assert scores.hits[7] == 2.5
        assert scores.costs[7] == 2.0
        scores.drop(7)
        assert 7 not in scores.hits and 7 not in scores.costs


class TestStatsPlumbing:
    def test_cache_counters_reach_update_stats(self, config):
        calculation = ConstellationCalculation(config, max_carried_extra_tables=2)
        state = calculation.state_at(0.0)
        before = calculation.path_engine.stats.snapshot()
        for i in range(1, 5):
            _query(state, calculation, i)
        _query(state, calculation, 4)  # one hit
        after = calculation.path_engine.stats.snapshot()
        stats = UpdateStats()
        stats.record_path_engine(before, after)
        totals = stats.path_engine_totals
        assert totals["cache_misses"] == 4
        assert totals["cache_hits"] == 1
        assert totals["cache_evictions"] == 2
        assert stats.path_cache_events == {
            "hits": 1, "misses": 4, "evictions": 2,
        }
        # The batched-advance attribution rides the same snapshot.
        assert "tables_advanced" in totals
        assert "batched_rows" in totals

    def test_advanced_epochs_attribute_tables_and_batches(self, config):
        calculation = ConstellationCalculation(config, max_carried_extra_tables=8)
        state = calculation.state_at(0.0)
        for i in range(1, 5):
            _query(state, calculation, i)
        for step in range(1, 4):
            state, _ = calculation.diff_since(state, step * 5.0)
        totals = calculation.path_engine.stats.snapshot()
        # Each advanced epoch carried the main table plus four extras.
        assert totals["tables_advanced"] >= 15
        if totals["batched_calls"]:
            assert totals["batched_rows"] > 0
