"""Unit and property tests for Keplerian elements and the Kepler propagator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orbits import (
    KeplerPropagator,
    KeplerianElements,
    constants,
    mean_motion_from_semi_major_axis,
    semi_major_axis_from_mean_motion,
    solve_kepler,
)
from repro.orbits.kepler import j2_secular_rates


def test_mean_motion_of_550km_orbit():
    a = constants.EARTH_RADIUS_KM + 550.0
    period = 2 * math.pi / mean_motion_from_semi_major_axis(a)
    # A 550 km circular orbit has a period of roughly 95.5 minutes.
    assert period / 60.0 == pytest.approx(95.6, abs=0.5)


def test_mean_motion_semi_major_axis_roundtrip():
    a = 7000.0
    n = mean_motion_from_semi_major_axis(a)
    assert semi_major_axis_from_mean_motion(n) == pytest.approx(a)


def test_mean_motion_invalid_input():
    with pytest.raises(ValueError):
        mean_motion_from_semi_major_axis(-1.0)
    with pytest.raises(ValueError):
        semi_major_axis_from_mean_motion(0.0)


def test_solve_kepler_circular_is_identity():
    assert solve_kepler(1.234, 0.0) == pytest.approx(1.234)


def test_solve_kepler_satisfies_equation():
    eccentric = solve_kepler(2.0, 0.3)
    assert eccentric - 0.3 * math.sin(eccentric) == pytest.approx(2.0, abs=1e-10)


def test_solve_kepler_rejects_hyperbolic():
    with pytest.raises(ValueError):
        solve_kepler(1.0, 1.2)


@settings(max_examples=100, deadline=None)
@given(
    mean_anomaly=st.floats(min_value=-10.0, max_value=10.0),
    eccentricity=st.floats(min_value=0.0, max_value=0.95),
)
def test_property_kepler_equation_residual(mean_anomaly, eccentricity):
    eccentric = solve_kepler(mean_anomaly, eccentricity)
    residual = eccentric - eccentricity * math.sin(eccentric) - mean_anomaly
    assert abs(residual) < 1e-9


def test_elements_validation():
    with pytest.raises(ValueError):
        KeplerianElements(6000.0, 0.0, 53.0, 0.0, 0.0, 0.0)
    with pytest.raises(ValueError):
        KeplerianElements(7000.0, 1.5, 53.0, 0.0, 0.0, 0.0)


def test_circular_constructor_and_altitude():
    elements = KeplerianElements.circular(altitude_km=550.0, inclination_deg=53.0)
    assert elements.altitude_km == pytest.approx(550.0)
    assert elements.eccentricity == 0.0
    assert elements.period_s == pytest.approx(5736, rel=0.01)


def test_with_mean_anomaly_copies():
    elements = KeplerianElements.circular(550.0, 53.0)
    shifted = elements.with_mean_anomaly(90.0)
    assert shifted.mean_anomaly_deg == 90.0
    assert elements.mean_anomaly_deg == 0.0


def test_circular_orbit_radius_is_constant():
    elements = KeplerianElements.circular(550.0, 53.0)
    propagator = KeplerPropagator(elements, include_j2=False)
    for t in np.linspace(0.0, elements.period_s, 13):
        radius = np.linalg.norm(propagator.position_eci(float(t)))
        assert radius == pytest.approx(elements.semi_major_axis_km, rel=1e-9)


def test_two_body_orbit_closes_after_one_period():
    elements = KeplerianElements.circular(550.0, 53.0, raan_deg=30.0, mean_anomaly_deg=42.0)
    propagator = KeplerPropagator(elements, include_j2=False)
    start = propagator.position_eci(0.0)
    end = propagator.position_eci(elements.period_s)
    np.testing.assert_allclose(start, end, atol=1e-3)


def test_velocity_magnitude_circular():
    elements = KeplerianElements.circular(550.0, 53.0)
    propagator = KeplerPropagator(elements, include_j2=False)
    _, velocity = propagator.position_velocity_eci(100.0)
    expected = math.sqrt(constants.EARTH_MU_KM3_S2 / elements.semi_major_axis_km)
    assert np.linalg.norm(velocity) == pytest.approx(expected, rel=1e-9)
    # LEO speed is in excess of 27,000 km/h (paper §1).
    assert np.linalg.norm(velocity) * 3600.0 > 27000.0


def test_inclination_bounds_z_extent():
    elements = KeplerianElements.circular(550.0, 53.0)
    propagator = KeplerPropagator(elements, include_j2=False)
    samples = np.array(
        [propagator.position_eci(t) for t in np.linspace(0, elements.period_s, 200)]
    )
    max_latitude_extent = np.max(np.abs(samples[:, 2])) / elements.semi_major_axis_km
    assert math.degrees(math.asin(max_latitude_extent)) == pytest.approx(53.0, abs=0.2)


def test_j2_raan_regression_for_prograde_orbit():
    raan_dot, argp_dot, m_dot = j2_secular_rates(6928.0, 0.0, math.radians(53.0))
    # Prograde orbits regress (RAAN decreases).
    assert raan_dot < 0.0
    # Roughly -5 degrees/day for a 550 km, 53 degree orbit.
    assert math.degrees(raan_dot) * constants.SECONDS_PER_DAY == pytest.approx(-5.0, abs=0.8)
    assert argp_dot != 0.0
    assert m_dot > 0.0


def test_polar_orbit_has_no_raan_drift():
    raan_dot, _, _ = j2_secular_rates(7158.0, 0.0, math.radians(90.0))
    assert raan_dot == pytest.approx(0.0, abs=1e-12)


def test_j2_propagator_shifts_node_over_time():
    elements = KeplerianElements.circular(550.0, 53.0)
    with_j2 = KeplerPropagator(elements, include_j2=True)
    without_j2 = KeplerPropagator(elements, include_j2=False)
    day = constants.SECONDS_PER_DAY
    raan_with = with_j2.elements_at(day).raan_deg
    raan_without = without_j2.elements_at(day).raan_deg
    # About five degrees of nodal regression per day.
    difference = (raan_with - raan_without + 180.0) % 360.0 - 180.0
    assert difference == pytest.approx(-5.0, abs=0.8)


@settings(max_examples=30, deadline=None)
@given(
    altitude=st.floats(min_value=300.0, max_value=2000.0),
    inclination=st.floats(min_value=0.0, max_value=180.0),
    t=st.floats(min_value=0.0, max_value=20000.0),
)
def test_property_positions_stay_on_sphere(altitude, inclination, t):
    elements = KeplerianElements.circular(altitude, inclination)
    propagator = KeplerPropagator(elements, include_j2=True)
    radius = np.linalg.norm(propagator.position_eci(t))
    assert radius == pytest.approx(elements.semi_major_axis_km, rel=1e-6)
