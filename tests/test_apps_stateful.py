"""Integration tests for the virtual-stationarity state management extension."""

import pytest

from repro import Celestial
from repro.apps import VirtualStationarityExperiment
from repro.core import ComputeParams, Configuration, GroundStationConfig, HostConfig, NetworkParams, ShellConfig
from repro.orbits import GroundStation, ShellGeometry


def _configuration(duration_s=300.0, seed=0):
    # A dense low shell so the anchor satellite changes every few minutes.
    shell = ShellConfig(
        name="starlink-0",
        geometry=ShellGeometry(72, 22, 550.0, 53.0),
        network=NetworkParams(min_elevation_deg=25.0),
        compute=ComputeParams(vcpu_count=2, memory_mib=512),
    )
    return Configuration(
        shells=(shell,),
        ground_stations=(
            GroundStationConfig(station=GroundStation("accra", 5.6037, -0.1870),
                                compute=ComputeParams(vcpu_count=4, memory_mib=4096)),
            GroundStationConfig(station=GroundStation("abuja", 9.0765, 7.3986),
                                compute=ComputeParams(vcpu_count=4, memory_mib=4096)),
        ),
        hosts=HostConfig(count=2, cpu_cores=32, memory_mib=32 * 1024),
        update_interval_s=5.0,
        duration_s=duration_s,
        seed=seed,
    )


def _run(policy, duration_s=300.0):
    testbed = Celestial(_configuration(duration_s=duration_s))
    experiment = VirtualStationarityExperiment(
        testbed,
        anchor_station="accra",
        client_stations=["accra", "abuja"],
        policy=policy,
        read_interval_s=1.0,
    )
    return experiment.run()


@pytest.fixture(scope="module")
def proactive_results():
    return _run("proactive")


@pytest.fixture(scope="module")
def static_results():
    return _run("static")


class TestVirtualStationarity:
    def test_reads_are_answered(self, proactive_results):
        assert len(proactive_results.read_latency) > 200
        assert proactive_results.hits + proactive_results.misses > 200

    def test_proactive_migration_happens(self, proactive_results):
        # Over five minutes the serving satellite for Accra changes at least
        # once, so state must have been migrated.
        assert proactive_results.migration_count >= 1
        assert proactive_results.migration_downtime_s > 0.0
        assert len(proactive_results.anchor_history) >= 2

    def test_proactive_hit_rate_beats_static(self, proactive_results, static_results):
        assert proactive_results.hit_rate > 0.8
        assert static_results.hit_rate < proactive_results.hit_rate
        assert static_results.misses > proactive_results.misses

    def test_static_pays_redirect_latency(self, proactive_results, static_results):
        # Misses pay an extra round trip to the actual state holder, so the
        # static policy's mean read latency is higher.
        assert static_results.read_latency.mean() > proactive_results.read_latency.mean()

    def test_static_policy_never_migrates(self, static_results):
        assert static_results.migration_count == 0

    def test_invalid_policy_rejected(self):
        testbed = Celestial(_configuration(duration_s=10.0))
        with pytest.raises(ValueError):
            VirtualStationarityExperiment(testbed, anchor_station="accra", policy="teleport")
