"""Property suite for the epoch-batched multi-table advance path.

``PathEngine.advance_all`` advances the whole carried table set across
one diff by stacking every table's violated rows into one flat kernel
invocation.  Its contract is byte-identity with the per-table loop:
randomized ISL flicker plus uplink handover churn drives ≥50-epoch
chains on the Iridium and Starlink constellations, and after every epoch
every table's distances must match (a) a second engine advancing the
same tables one at a time through ``advance`` and (b) a cold
``csgraph.dijkstra`` solve — across all three kernel backends (the Numba
leg skips cleanly when the ``[fast]`` extra is absent).  The suite also
pins the batching itself (one kernel call per epoch instead of one per
table) and the fallback legs (kernel disabled, churn bypass, trivial
diffs).
"""

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConstellationCalculation
from repro.scenarios import dart_configuration, west_africa_configuration
from repro.topology import NetworkGraph, PathEngine, ShortestPaths
from repro.topology import _kernels

#: Every backend the kernel seam offers; the Numba leg skips when the
#: ``[fast]`` extra is not installed instead of failing collection.
BACKENDS = [
    "numpy",
    "python",
    pytest.param(
        "numba",
        marks=pytest.mark.skipif(
            not _kernels.HAVE_NUMBA,
            reason="numba not installed (the optional [fast] extra)",
        ),
    ),
]

_ISL_CODE = 0
_UPLINK_CODE = 1


@functools.lru_cache(maxsize=None)
def _base_graph(name):
    """The epoch-0 constellation graph and its ground-station sources."""
    if name == "iridium":
        config = dart_configuration(buoy_count=5, sink_count=8, duration_s=600.0)
    else:
        config = west_africa_configuration(duration_s=600.0, shells="two-lowest")
    calculation = ConstellationCalculation(config)
    state = calculation.state_at(0.0)
    sources = tuple(calculation.node_index.ground_station_indices())
    return state.graph, sources


def _assert_distances_identical(table, graph, sources):
    """Distances and reachability must match a cold solve bit for bit."""
    cold = ShortestPaths(graph, sources=list(sources))
    incremental = table._distances
    reference = cold._distances
    finite = np.isfinite(reference)
    assert np.array_equal(np.isfinite(incremental), finite)
    assert np.array_equal(incremental[finite], reference[finite])


def _churn_engine(backend):
    """An engine tuned so every affected row goes through the kernel."""
    engine = PathEngine(kernel_backend=backend)
    engine.churn_bypass_threshold = 2.0
    engine.solver_handoff_gain_ms = 0.0
    return engine


def _table_sources(name, rng, extra_tables=6):
    """The main ground-station source set plus satellite single-sources."""
    full, sources = _base_graph(name)
    satellites = np.setdiff1d(
        np.arange(len(full.index)), np.asarray(sources, dtype=np.int64)
    )
    extras = rng.choice(satellites, size=extra_tables, replace=False)
    return [list(sources)] + [[int(node)] for node in extras]


def _flicker_graph(full, rng):
    """One churn epoch: ISL flicker, uplink handovers, delay jitter."""
    total = full.total_links()
    isl_edges = np.flatnonzero(full.link_type_codes == _ISL_CODE)
    uplink_edges = np.flatnonzero(full.link_type_codes == _UPLINK_CODE)
    failed_isl = rng.choice(isl_edges, size=int(rng.integers(0, 6)), replace=False)
    failed_uplink = rng.choice(
        uplink_edges, size=int(rng.integers(0, 4)), replace=False
    )
    alive = np.setdiff1d(
        np.arange(total), np.concatenate([failed_isl, failed_uplink])
    )
    delays = full.delays_ms.copy()
    jitter = rng.choice(total, size=int(rng.integers(1, 20)), replace=False)
    delays[jitter] = rng.uniform(0.5, 12.0, jitter.size)
    return NetworkGraph.from_edge_arrays(
        full.index,
        full.node_a[alive], full.node_b[alive],
        full.distances_km[alive], delays[alive],
        full.bandwidths_kbps[alive], full.link_type_codes[alive],
    )


def _run_batched_chain(name, backend, seed, epochs, make_engine=_churn_engine):
    """Advance a multi-table set batched and per-table over one chain."""
    full, _ = _base_graph(name)
    rng = np.random.default_rng(seed)
    batched_engine = make_engine(backend)
    reference_engine = make_engine(backend)
    table_sources = _table_sources(name, rng)
    graph = full
    batched = [batched_engine.solve(graph, sources=s) for s in table_sources]
    reference = [reference_engine.solve(graph, sources=s) for s in table_sources]
    for _ in range(epochs):
        new_graph = _flicker_graph(full, rng)
        diff = new_graph.diff_from(graph)
        batched = batched_engine.advance_all(batched, new_graph, diff)
        reference = [
            reference_engine.advance(table, new_graph, diff)
            for table in reference
        ]
        for sources, batched_table, reference_table in zip(
            table_sources, batched, reference
        ):
            # The batched path must equal the per-table loop bit for bit
            # (infs included — raw bytes), and both equal the cold solve.
            assert (
                batched_table._distances.tobytes()
                == reference_table._distances.tobytes()
            )
            _assert_distances_identical(batched_table, new_graph, sources)
        graph = new_graph
    return batched_engine, reference_engine


class TestAdvanceAllByteIdentity:
    """≥50-epoch randomized churn chains, batched ≡ per-table ≡ cold."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_iridium_flicker_and_handover_churn(self, backend, seed):
        batched, reference = _run_batched_chain(
            "iridium", backend, seed, epochs=50
        )
        # The chain must genuinely exercise the stacked kernel path ...
        assert batched.stats.batched_calls > 0
        assert batched.stats.batched_rows > 0
        assert batched.stats.kernel_calls > 0
        # ... and collapse the per-table kernel calls into per-epoch ones.
        assert batched.stats.kernel_calls < reference.stats.kernel_calls
        assert batched.stats.rows_kernel == reference.stats.rows_kernel

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=1, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_starlink_flicker_and_handover_churn(self, backend, seed):
        batched, _ = _run_batched_chain("starlink", backend, seed, epochs=50)
        assert batched.stats.batched_calls > 0
        assert batched.stats.kernel_calls > 0


class TestAdvanceAllFallbacks:
    """The legs that cannot batch must still match the per-table loop."""

    def test_churn_guard_engines_stay_identical(self):
        """Default guard settings: bypassed tables fall back per table."""
        batched, reference = _run_batched_chain(
            "iridium", "numpy", seed=7, epochs=30,
            make_engine=lambda backend: PathEngine(kernel_backend=backend),
        )
        # Identical inputs → the guard must have tripped identically.
        assert batched.stats.bypassed_epochs == reference.stats.bypassed_epochs

    def test_kernel_disabled_delegates_per_table(self):
        """kernel_backend=None: advance_all is exactly the advance loop."""
        batched, reference = _run_batched_chain(
            "iridium", None, seed=11, epochs=10
        )
        assert batched.stats.batched_calls == 0
        assert batched.stats.kernel_calls == 0
        assert batched.stats.snapshot() == reference.stats.snapshot()

    def test_trivial_diff_rebinds_every_table(self):
        """An empty diff reuses every table with zero solver work."""
        full, _ = _base_graph("iridium")
        engine = _churn_engine("numpy")
        rng = np.random.default_rng(3)
        tables = [
            engine.solve(full, sources=s)
            for s in _table_sources("iridium", rng, extra_tables=3)
        ]
        solver_calls = engine.stats.solver_calls
        advanced = engine.advance_all(tables, full, full.diff_from(full))
        assert engine.stats.solver_calls == solver_calls
        assert engine.stats.batched_calls == 0
        assert engine.last_advance_costs == [0.0] * len(tables)
        for before, after in zip(tables, advanced):
            assert after._distances is before._distances

    def test_advance_costs_attribute_work_per_table(self):
        """last_advance_costs is parallel to the input tables and ≥ 0."""
        batched, _ = _run_batched_chain("iridium", "numpy", seed=5, epochs=5)
        costs = batched.last_advance_costs
        assert len(costs) == 7  # main + 6 satellite tables
        assert all(cost >= 0.0 for cost in costs)

    def test_empty_table_list(self):
        engine = _churn_engine("numpy")
        full, _ = _base_graph("iridium")
        assert engine.advance_all([], full, full.diff_from(full)) == []
