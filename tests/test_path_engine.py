"""Equivalence suite for the incremental shortest-path engine.

The engine's contract is byte-identity: distances and reachability of a
table advanced across any chain of :class:`TopologyDiff`\\ s must equal a
cold ``ShortestPaths`` solve on the final graph bit for bit — across empty
diffs, delay-only jitter, structural churn (uplink handovers and injected
ISL faults) and solver fallbacks.  Predecessor trees may differ only
between equal-delay alternatives, which the path-reconstruction check pins
down: every reconstructed path must exist edge-by-edge and its hop-delay
sum must reproduce the reported distance exactly.
"""

import numpy as np
import pytest

from repro.core import ConstellationCalculation, ConstellationDatabase
from repro.scenarios import dart_configuration, west_africa_configuration
from repro.topology import (
    LinkType,
    NetworkGraph,
    NodeIndex,
    PathEngine,
    ShortestPaths,
)
from repro.topology.graph import DELAY_EPSILON_MS


def _assert_tables_identical(table, graph, sources):
    """Byte-identical distances/reachability vs a cold solve, valid preds."""
    cold = ShortestPaths(graph, sources=sources)
    incremental = table._distances
    reference = cold._distances
    finite = np.isfinite(reference)
    assert np.array_equal(np.isfinite(incremental), finite)
    assert np.array_equal(incremental[finite], reference[finite])
    # Predecessors may differ from the cold solve only between equal-delay
    # paths: reconstructed paths must exist and re-sum to the distance.
    for row, source in enumerate(sources[:4]):
        for target in (0, incremental.shape[1] // 2, incremental.shape[1] - 1):
            result = table.path(source, target)
            if not result.reachable or len(result.hops) < 2:
                continue
            hops = np.asarray(result.hops, dtype=np.int64)
            edges = graph.edge_ids_between(hops[:-1], hops[1:])
            assert (edges >= 0).all()
            total = 0.0
            for edge in edges:
                total = total + max(float(graph.delays_ms[edge]), DELAY_EPSILON_MS)
            assert total == result.delay_ms


class TestEngineOnSyntheticChains:
    """Graph-level chains with adversarial epoch mixes."""

    def _random_graph(self, rng, index, n_sat, n_gst):
        n = len(index)
        ring_a = np.arange(n_sat)
        ring_b = (ring_a + 1) % n_sat
        chord_a = rng.integers(0, n_sat, 30)
        chord_b = (chord_a + rng.integers(2, 20, 30)) % n_sat
        gst = np.repeat(np.arange(n_sat, n), 3)
        sat = rng.integers(0, n_sat, n_gst * 3)
        node_a = np.concatenate([ring_a, chord_a, gst])
        node_b = np.concatenate([ring_b, chord_b, sat])
        keep = node_a != node_b
        node_a, node_b = node_a[keep], node_b[keep]
        keys = np.minimum(node_a, node_b) * n + np.maximum(node_a, node_b)
        _, first = np.unique(keys, return_index=True)
        first = np.sort(first)
        node_a, node_b = node_a[first], node_b[first]
        delays = rng.uniform(1.0, 10.0, node_a.size)
        return NetworkGraph.from_edge_arrays(
            index, node_a, node_b, delays * 300.0, delays,
            np.full(node_a.size, 1e4), np.zeros(node_a.size, np.int8),
        )

    def _mutated(self, rng, index, graph, kind):
        if kind == "empty":
            return NetworkGraph.from_edge_arrays(
                index, graph.node_a, graph.node_b, graph.distances_km,
                graph.delays_ms.copy(), graph.bandwidths_kbps,
                graph.link_type_codes, structure_from=graph,
            )
        if kind == "bandwidth":
            bandwidths = graph.bandwidths_kbps.copy()
            bandwidths[rng.integers(0, bandwidths.size)] *= 2.0
            return NetworkGraph.from_edge_arrays(
                index, graph.node_a, graph.node_b, graph.distances_km,
                graph.delays_ms.copy(), bandwidths, graph.link_type_codes,
                structure_from=graph,
            )
        delays = graph.delays_ms.copy()
        count = (
            rng.integers(1, 4) if kind == "localized"
            else rng.integers(1, graph.total_links())
        )
        touched = rng.choice(graph.total_links(), size=count, replace=False)
        delays[touched] = rng.uniform(0.5, 12.0, count)
        return NetworkGraph.from_edge_arrays(
            index, graph.node_a, graph.node_b, graph.distances_km, delays,
            graph.bandwidths_kbps, graph.link_type_codes, structure_from=graph,
        )

    @pytest.mark.parametrize("seed", [3, 11])
    def test_mixed_chain_byte_identical(self, seed):
        rng = np.random.default_rng(seed)
        n_sat, n_gst = 40, 4
        index = NodeIndex([n_sat], [f"g{i}" for i in range(n_gst)])
        sources = list(index.ground_station_indices())
        engine = PathEngine(sources=sources)
        graph = self._random_graph(rng, index, n_sat, n_gst)
        table = engine.solve(graph)
        kinds = ["delay", "localized", "structural", "empty", "bandwidth"]
        for _ in range(220):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            if kind == "structural":
                new_graph = self._random_graph(rng, index, n_sat, n_gst)
            else:
                new_graph = self._mutated(rng, index, graph, kind)
            diff = new_graph.diff_from(graph)
            before = engine.stats.solver_calls
            table = engine.advance(table, new_graph, diff)
            if diff.is_empty:
                assert engine.stats.solver_calls == before
            _assert_tables_identical(table, new_graph, sources)
            graph = new_graph
        assert engine.stats.empty_reuses > 0
        assert engine.stats.structural_epochs > 0
        assert engine.stats.repaired_epochs > 0

    def test_empty_diff_reuses_arrays_without_solving(self):
        rng = np.random.default_rng(0)
        index = NodeIndex([20], ["g0", "g1"])
        sources = list(index.ground_station_indices())
        engine = PathEngine(sources=sources)
        graph = self._random_graph(rng, index, 20, 2)
        table = engine.solve(graph)
        clone = self._mutated(rng, index, graph, "empty")
        diff = clone.diff_from(graph)
        assert diff.is_empty
        advanced = engine.advance(table, clone, diff)
        assert engine.stats.solver_calls == 1  # only the initial cold solve
        assert engine.stats.empty_reuses == 1
        assert advanced._distances is table._distances
        assert advanced._predecessors is table._predecessors
        assert advanced.graph is clone

    def test_membership_index_carried_across_delay_only_epochs(self):
        """The edge→tree membership index survives delay-only chains.

        With the structure token shared between epochs (the production
        ``structure_from`` carry) the reverse index must be built at most
        once and point-patched after — the reuse counter proves the
        cross-epoch carry instead of a silent per-diff rebuild.
        """
        rng = np.random.default_rng(7)
        index = NodeIndex([40], ["g0", "g1", "g2"])
        sources = list(index.ground_station_indices())
        engine = PathEngine(sources=sources)
        engine.churn_bypass_threshold = 2.0
        graph = self._random_graph(rng, index, 40, 3)
        table = engine.solve(graph)
        for _ in range(15):
            changed = self._mutated(rng, index, graph, "localized")
            diff = changed.diff_from(graph)
            assert diff.is_structural_noop
            table = engine.advance(table, changed, diff)
            _assert_tables_identical(table, changed, sources)
            graph = changed
        assert engine.stats.membership_reuses > 0
        assert engine.stats.membership_rebuilds <= 1

    def test_bandwidth_only_diff_is_a_none_dispatch(self):
        rng = np.random.default_rng(1)
        index = NodeIndex([20], ["g0", "g1"])
        sources = list(index.ground_station_indices())
        engine = PathEngine(sources=sources)
        graph = self._random_graph(rng, index, 20, 2)
        table = engine.solve(graph)
        changed = self._mutated(rng, index, graph, "bandwidth")
        diff = changed.diff_from(graph)
        assert not diff.is_empty and diff.is_structural_noop
        advanced = engine.advance(table, changed, diff)
        assert engine.stats.solver_calls == 1
        assert advanced._distances is table._distances

    def test_zero_repair_threshold_forces_solver_rows(self):
        rng = np.random.default_rng(2)
        index = NodeIndex([30], ["g0", "g1", "g2"])
        sources = list(index.ground_station_indices())
        engine = PathEngine(
            sources=sources, repair_threshold=0.0, kernel_backend=None
        )
        graph = self._random_graph(rng, index, 30, 3)
        table = engine.solve(graph)
        for _ in range(25):
            new_graph = self._mutated(rng, index, graph, "delay")
            table = engine.advance(table, new_graph, new_graph.diff_from(graph))
            _assert_tables_identical(table, new_graph, sources)
            graph = new_graph
        assert engine.stats.rows_repaired == 0
        assert engine.stats.rows_solved > 0

    def test_incompatible_table_degrades_to_cold_solve(self):
        rng = np.random.default_rng(4)
        index = NodeIndex([20], ["g0", "g1"])
        sources = list(index.ground_station_indices())
        engine = PathEngine(sources=sources)
        graph = self._random_graph(rng, index, 20, 2)
        floyd = ShortestPaths(graph, sources=sources, method="floyd-warshall")
        changed = self._mutated(rng, index, graph, "delay")
        diff = changed.diff_from(graph)
        advanced = engine.advance(floyd, changed, diff)
        _assert_tables_identical(advanced, changed, sources)
        # A table from a foreign graph likewise cold-solves rather than
        # repairing against mismatched arrays.
        foreign = engine.advance(advanced, graph, diff)
        _assert_tables_identical(foreign, graph, sources)

    def test_isl_fault_injection_churn(self):
        """Forced structural churn: random ISL outages and recoveries.

        Models radiation/weather link faults: every epoch a random subset
        of ISLs drops out and previously failed ones return, on top of
        delay jitter — heavy exercise for the removal (subtree re-hang)
        and reconnection paths, including reachability changes.
        """
        rng = np.random.default_rng(7)
        n_sat, n_gst = 36, 3
        index = NodeIndex([n_sat], [f"g{i}" for i in range(n_gst)])
        sources = list(index.ground_station_indices())
        engine = PathEngine(sources=sources)
        # Disable the adaptive cold-solve bypass: this test wants the
        # repair machinery itself under fire every epoch.
        engine.churn_bypass_threshold = 2.0
        full = self._random_graph(rng, index, n_sat, n_gst)
        graph = full
        table = engine.solve(graph)
        for _ in range(200):
            total = full.total_links()
            failed = rng.choice(total, size=int(rng.integers(0, 6)), replace=False)
            alive = np.setdiff1d(np.arange(total), failed)
            delays = full.delays_ms.copy()
            jitter = rng.choice(total, size=int(rng.integers(1, 20)), replace=False)
            delays[jitter] = rng.uniform(0.5, 12.0, jitter.size)
            new_graph = NetworkGraph.from_edge_arrays(
                index,
                full.node_a[alive], full.node_b[alive],
                full.distances_km[alive], delays[alive],
                full.bandwidths_kbps[alive], full.link_type_codes[alive],
            )
            table = engine.advance(table, new_graph, new_graph.diff_from(graph))
            _assert_tables_identical(table, new_graph, sources)
            graph = new_graph
        assert engine.stats.structural_epochs > 100

    def test_churn_guard_bypasses_to_cold_solves(self):
        """Wholesale churn flips the engine into cold-solve mode (and back)."""
        rng = np.random.default_rng(9)
        index = NodeIndex([30], ["g0", "g1", "g2", "g3"])
        sources = list(index.ground_station_indices())
        engine = PathEngine(sources=sources)
        graph = self._random_graph(rng, index, 30, 4)
        table = engine.solve(graph)
        for _ in range(30):
            new_graph = self._random_graph(rng, index, 30, 4)
            table = engine.advance(table, new_graph, new_graph.diff_from(graph))
            _assert_tables_identical(table, new_graph, sources)
            graph = new_graph
        # Full-graph rewrites every epoch: the guard must have engaged,
        # and bypassed epochs stay byte-identical (checked above).
        assert engine.stats.bypassed_epochs > 0


class TestEngineOnConstellations:
    """≥200-epoch incremental-vs-cold equivalence on real constellations."""

    def _run_chain(self, config, epochs, interval):
        calculation = ConstellationCalculation(config)
        sources = list(calculation.node_index.ground_station_indices())
        state = calculation.state_at(0.0)
        _assert_tables_identical(state.paths, state.graph, sources)
        for step in range(1, epochs + 1):
            state, _ = calculation.diff_since(state, step * interval)
            _assert_tables_identical(state.paths, state.graph, sources)
        return calculation, state

    def test_iridium_two_hundred_epochs(self):
        config = dart_configuration(buoy_count=5, sink_count=8, duration_s=7200.0)
        calculation, _ = self._run_chain(config, epochs=200, interval=30.0)
        stats = calculation.path_engine.stats
        # The run must genuinely exercise the dispatch, not just one leg.
        assert stats.structural_epochs > 0
        assert stats.repaired_epochs + stats.empty_reuses > 0

    def test_starlink_two_hundred_epochs(self):
        config = west_africa_configuration(
            duration_s=7200.0, shells="two-lowest", update_interval_s=2.0
        )
        calculation, _ = self._run_chain(config, epochs=200, interval=2.0)
        stats = calculation.path_engine.stats
        assert stats.structural_epochs > 0

    def test_empty_diff_epoch_solves_nothing(self):
        config = dart_configuration(buoy_count=4, sink_count=4, duration_s=600.0)
        calculation = ConstellationCalculation(config)
        state = calculation.state_at(0.0)
        solver_calls = calculation.path_engine.stats.solver_calls
        # Same timestamp → byte-identical epoch arrays → empty diff.
        state2, diff = calculation.diff_since(state, 0.0)
        assert diff.topology.is_empty
        assert calculation.path_engine.stats.solver_calls == solver_calls
        assert state2.paths._distances is state.paths._distances

    def test_extra_tables_ride_the_diff_pipeline(self):
        config = dart_configuration(buoy_count=4, sink_count=4, duration_s=600.0)
        calculation = ConstellationCalculation(config)
        state = calculation.state_at(0.0)
        a = calculation.satellite(0, 3)
        b = calculation.satellite(0, 40)
        first = state.delay_ms(a, b)  # creates a lazily cached extra table
        assert np.isfinite(first)
        node = state.node_for(a)
        assert node in state._extra_paths
        cold_solves = calculation.path_engine.stats.cold_solves
        state, _ = calculation.diff_since(state, 5.0)
        # The satellite table was advanced, not re-solved from scratch...
        assert node in state._extra_paths
        assert calculation.path_engine.stats.cold_solves == cold_solves
        # ...and answers byte-identically to a cold single-source solve.
        reference = ShortestPaths(state.graph, sources=[node])
        assert state.delay_ms(a, b) == reference.delay_ms(node, state.node_for(b))

    def test_more_than_thirty_two_extra_tables_are_carried(self):
        """The lifted cap carries well over 32 satellite tables per epoch."""
        config = dart_configuration(buoy_count=4, sink_count=4, duration_s=600.0)
        calculation = ConstellationCalculation(config)
        assert calculation.max_carried_extra_tables > 32
        state = calculation.state_at(0.0)
        probe = calculation.satellite(0, 0)
        satellites = [calculation.satellite(0, i) for i in range(1, 41)]
        for satellite in satellites:
            state.delay_ms(satellite, probe)  # creates a cached extra table
        assert len(state._extra_paths) == 40
        cold_solves = calculation.path_engine.stats.cold_solves
        state, _ = calculation.diff_since(state, 5.0)
        # Every table rode the diff pipeline (no cold re-solves) ...
        assert len(state._extra_paths) == 40
        assert calculation.path_engine.stats.cold_solves == cold_solves
        # ... and answers byte-identically to a cold single-source solve.
        for satellite in satellites[::13]:
            node = state.node_for(satellite)
            reference = ShortestPaths(state.graph, sources=[node])
            assert state.delay_ms(satellite, probe) == reference.delay_ms(
                node, state.node_for(probe)
            )

    def test_extra_table_cap_is_configurable_and_memory_bounded(self):
        config = dart_configuration(buoy_count=4, sink_count=4, duration_s=600.0)
        limited = ConstellationCalculation(config, max_carried_extra_tables=2)
        state = limited.state_at(0.0)
        probe = limited.satellite(0, 0)
        for i in range(1, 6):
            state.delay_ms(limited.satellite(0, i), probe)
        # The cap is enforced on insert (evicting as it goes), not just
        # at the epoch carry, so the cache never exceeds it intra-epoch.
        assert len(state._extra_paths) == 2
        assert limited.path_engine.stats.cache_evictions == 3
        state, _ = limited.diff_since(state, 5.0)
        assert len(state._extra_paths) == 2  # most recent two survive
        # The memory guard wins over a huge configured cap on any graph.
        greedy = ConstellationCalculation(config, max_carried_extra_tables=10**9)
        cap = greedy._extra_table_cap(state.graph)
        per_table = len(state.graph.index) * 20 + state.graph.total_links()
        budget = greedy.EXTRA_TABLE_MEMORY_BUDGET_MB * 1024 * 1024
        assert cap == max(32, budget // per_table)
        with pytest.raises(ValueError):
            ConstellationCalculation(config, max_carried_extra_tables=-1)

    def test_engine_survives_keyframe_replay(self):
        """A retained keyframe state can seed a replay of the diff chain."""
        config = dart_configuration(buoy_count=4, sink_count=4, duration_s=600.0)
        calculation = ConstellationCalculation(config)
        database = ConstellationDatabase(keyframe_interval=4, retained_keyframes=2)
        state = calculation.state_at(0.0)
        database.set_state(state)
        for step in range(1, 12):
            state, diff = calculation.diff_since(state, step * 5.0)
            database.set_state(state, diff=diff)
        keyframe_epoch = database.keyframe_epochs()[0]
        replayed = database.keyframe_state(keyframe_epoch).paths
        engine = PathEngine(sources=replayed.sources)
        for diff in database.diffs_since(keyframe_epoch):
            replayed = engine.advance(replayed, diff.topology.current, diff.topology)
        sources = replayed.sources
        _assert_tables_identical(replayed, database.state.graph, sources)
        assert np.array_equal(
            replayed._distances, database.state.paths._distances
        )
