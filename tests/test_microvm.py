"""Unit tests for the microVM substrate (machines, kernels, rootfs, cgroups)."""

import numpy as np
import pytest

from repro.microvm import (
    CPUQuota,
    KernelImage,
    MachineResources,
    MachineState,
    MicroVM,
    MicroVMError,
    OverlayStore,
    RootFilesystemImage,
)


def _machine(name="sat-0", vcpus=2, memory=512):
    return MicroVM(name, MachineResources(vcpu_count=vcpus, memory_mib=memory),
                   rng=np.random.default_rng(1))


class TestKernelAndRootfs:
    def test_kernel_command_line(self):
        kernel = KernelImage()
        assert "console=ttyS0" in kernel.command_line
        extended = kernel.with_args("quiet")
        assert extended.command_line.endswith("quiet")
        assert "quiet" not in kernel.command_line

    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            KernelImage(size_mib=0.0)

    def test_rootfs_validation(self):
        with pytest.raises(ValueError):
            RootFilesystemImage(size_mib=-1.0)

    def test_overlay_store_dedup(self):
        store = OverlayStore()
        base = RootFilesystemImage("rootfs.img", size_mib=350.0)
        for i in range(10):
            store.create_overlay(f"sat-{i}", base, overlay_mib=4.0)
        assert store.machine_count == 10
        assert store.deduplicated_storage_mib() == pytest.approx(350.0 + 40.0)
        assert store.naive_storage_mib() == pytest.approx(10 * 354.0)
        assert store.savings_mib() == pytest.approx(9 * 350.0)

    def test_overlay_grow_and_remove(self):
        store = OverlayStore()
        base = RootFilesystemImage()
        store.create_overlay("sat-0", base, overlay_mib=2.0)
        store.grow_overlay("sat-0", 8.0)
        assert store.deduplicated_storage_mib() == pytest.approx(base.size_mib + 10.0)
        store.remove_overlay("sat-0")
        assert store.machine_count == 0
        with pytest.raises(KeyError):
            store.grow_overlay("sat-0", 1.0)

    def test_overlay_duplicate_machine_rejected(self):
        store = OverlayStore()
        store.create_overlay("sat-0", RootFilesystemImage())
        with pytest.raises(ValueError):
            store.create_overlay("sat-0", RootFilesystemImage())


class TestCPUQuota:
    def test_effective_cores(self):
        quota = CPUQuota(vcpu_count=2, quota_fraction=0.5)
        assert quota.effective_cores == 1.0

    def test_scaled_duration(self):
        quota = CPUQuota(vcpu_count=2, quota_fraction=0.5)
        assert quota.scaled_duration(1.0) == pytest.approx(2.0)
        assert quota.scaled_duration(1.0, parallelism=2) == pytest.approx(1.0)
        # Parallelism beyond the allocated vCPUs does not help.
        assert quota.scaled_duration(1.0, parallelism=8) == pytest.approx(1.0)

    def test_set_quota_runtime(self):
        quota = CPUQuota(vcpu_count=1)
        quota.set_quota(0.25)
        assert quota.scaled_duration(1.0) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CPUQuota(vcpu_count=0)
        with pytest.raises(ValueError):
            CPUQuota(vcpu_count=1, quota_fraction=0.0)
        quota = CPUQuota(vcpu_count=1)
        with pytest.raises(ValueError):
            quota.set_quota(2.0)
        with pytest.raises(ValueError):
            quota.scaled_duration(-1.0)


class TestMicroVMLifecycle:
    def test_resources_validation(self):
        with pytest.raises(ValueError):
            MachineResources(vcpu_count=0, memory_mib=512)
        with pytest.raises(ValueError):
            MachineResources(vcpu_count=1, memory_mib=0)

    def test_boot_is_subsecond(self):
        machine = _machine()
        finished = machine.boot(10.0)
        assert 10.0 < finished < 11.0
        assert machine.state is MachineState.RUNNING
        assert machine.boot_count == 1

    def test_suspend_resume_cycle(self):
        machine = _machine()
        machine.boot(0.0)
        machine.suspend(5.0)
        assert machine.state is MachineState.SUSPENDED
        assert not machine.is_running
        assert machine.is_booted
        machine.resume(9.0)
        assert machine.is_running

    def test_illegal_transitions(self):
        machine = _machine()
        with pytest.raises(MicroVMError):
            machine.suspend(0.0)
        with pytest.raises(MicroVMError):
            machine.resume(0.0)
        with pytest.raises(MicroVMError):
            machine.stop(0.0)
        machine.boot(0.0)
        with pytest.raises(MicroVMError):
            machine.boot(1.0)

    def test_fault_injection_stop_and_reboot(self):
        machine = _machine()
        machine.boot(0.0)
        machine.stop(100.0)
        assert machine.state is MachineState.STOPPED
        finished = machine.reboot(101.0)
        assert machine.state is MachineState.RUNNING
        assert finished > 101.0
        assert machine.boot_count == 2

    def test_fail_and_reboot(self):
        machine = _machine()
        machine.boot(0.0)
        machine.fail(50.0)
        assert machine.state is MachineState.FAILED
        machine.reboot(51.0)
        assert machine.is_running

    def test_memory_reserved_even_when_suspended(self):
        machine = _machine(memory=1024)
        assert machine.memory_footprint_mib() == 0.0
        machine.boot(0.0)
        assert machine.memory_footprint_mib() == 1024.0
        machine.suspend(1.0)
        assert machine.memory_footprint_mib() == 1024.0
        machine.stop(2.0)
        assert machine.memory_footprint_mib() == 0.0

    def test_cpu_usage_depends_on_state_and_busy_fraction(self):
        machine = _machine(vcpus=4)
        assert machine.cpu_cores_in_use() == 0.0
        machine.boot(0.0)
        idle = machine.cpu_cores_in_use()
        busy = machine.cpu_cores_in_use(busy_fraction=1.0)
        assert 0.0 < idle < busy
        assert busy == pytest.approx(4.0)
        machine.suspend(1.0)
        assert machine.cpu_cores_in_use(busy_fraction=1.0) == 0.0

    def test_state_at_reconstructs_history(self):
        machine = _machine()
        machine.boot(10.0)
        machine.suspend(20.0)
        machine.resume(30.0)
        assert machine.state_at(5.0) is MachineState.CREATED
        assert machine.state_at(15.0) is MachineState.RUNNING
        assert machine.state_at(25.0) is MachineState.SUSPENDED
        assert machine.state_at(35.0) is MachineState.RUNNING
