"""Unit tests for the paper's scenario configurations."""

import numpy as np
import pytest

from repro.core import Celestial, ConstellationCalculation, validate_configuration
from repro.scenarios import (
    CLIENT_LOCATIONS,
    MIXED_GROUND_STATIONS,
    PACIFIC_TSUNAMI_WARNING_CENTER,
    OperatorDegradation,
    TELESAT_GROUND_STATIONS,
    dart_configuration,
    degraded_operator_configuration,
    generate_buoys,
    generate_sinks,
    iridium_shell,
    kuiper_first_shell,
    kuiper_shells,
    kuiper_total_satellites,
    mixed_operator_configuration,
    oneweb_shell,
    oneweb_total_satellites,
    starlink_first_shell,
    starlink_phase1_shells,
    starlink_phase1_total_satellites,
    telesat_configuration,
    telesat_shells,
    telesat_total_satellites,
    victim_shell_index,
    west_africa_configuration,
    west_africa_bounding_box,
)


class TestStarlink:
    def test_phase1_totals(self):
        shells = starlink_phase1_shells()
        assert len(shells) == 5
        totals = [shell.geometry.total_satellites for shell in shells]
        assert totals == [1584, 1600, 400, 375, 450]
        assert starlink_phase1_total_satellites() == 4409

    def test_first_shell_geometry(self):
        shell = starlink_first_shell()
        assert shell.geometry.planes == 72
        assert shell.geometry.satellites_per_plane == 22
        assert shell.geometry.altitude_km == 550.0
        assert shell.geometry.inclination_deg == 53.0

    def test_limit_parameter(self):
        assert len(starlink_phase1_shells(limit=2)) == 2

    def test_altitudes_match_paper(self):
        altitudes = [shell.geometry.altitude_km for shell in starlink_phase1_shells()]
        assert altitudes == [550.0, 1110.0, 1130.0, 1275.0, 1325.0]


class TestIridium:
    def test_geometry_matches_paper(self):
        shell = iridium_shell()
        assert shell.geometry.total_satellites == 66
        assert shell.geometry.planes == 6
        assert shell.geometry.altitude_km == 780.0
        assert shell.geometry.arc_of_ascending_nodes_deg == 180.0
        assert shell.geometry.is_polar_star

    def test_sensor_bandwidth(self):
        shell = iridium_shell()
        assert shell.network.uplink_bandwidth_kbps == 88.0
        assert shell.network.isl_bandwidth_kbps == 100_000.0


class TestKuiper:
    def test_shell_totals(self):
        shells = kuiper_shells()
        assert len(shells) == 3
        totals = [shell.geometry.total_satellites for shell in shells]
        assert totals == [1156, 1296, 784]
        assert kuiper_total_satellites() == 3236

    def test_first_shell_geometry(self):
        shell = kuiper_first_shell()
        assert shell.geometry.planes == 34
        assert shell.geometry.satellites_per_plane == 34
        assert shell.geometry.altitude_km == 630.0
        assert shell.geometry.arc_of_ascending_nodes_deg == 360.0
        assert not shell.geometry.is_polar_star

    def test_min_elevation_stricter_than_starlink(self):
        assert kuiper_shells()[0].network.min_elevation_deg == 35.0
        assert starlink_first_shell().network.min_elevation_deg == 25.0

    def test_limit_parameter(self):
        assert len(kuiper_shells(limit=2)) == 2


class TestOneWeb:
    def test_geometry_is_near_polar_walker_star(self):
        shell = oneweb_shell()
        assert shell.geometry.total_satellites == 648
        assert oneweb_total_satellites() == 648
        assert shell.geometry.planes == 18
        assert shell.geometry.altitude_km == 1200.0
        assert shell.geometry.arc_of_ascending_nodes_deg == 180.0
        assert shell.geometry.is_polar_star

    def test_seam_removes_inter_plane_links(self):
        # A Walker-star +GRID drops the inter-plane links across the seam:
        # 2*N - satellites_per_plane links instead of the seamless 2*N.
        from repro.topology.isl import grid_plus_isl_pairs

        geometry = oneweb_shell().geometry
        pairs = grid_plus_isl_pairs(geometry)
        assert len(pairs) == 2 * 648 - 36


class TestMixedOperator:
    def test_composition(self):
        config = mixed_operator_configuration(duration_s=60.0)
        names = [shell.name for shell in config.shells]
        assert names == ["starlink-0", "kuiper-0", "oneweb"]
        assert config.total_satellites == 1584 + 1156 + 648
        assert set(config.ground_station_names) == set(MIXED_GROUND_STATIONS)

    def test_full_kuiper_option(self):
        config = mixed_operator_configuration(duration_s=60.0, kuiper_shell_limit=None)
        assert config.total_satellites == 1584 + 3236 + 648

    def test_multi_shell_uplink_selection(self):
        # The polar station only sees the near-polar OneWeb shell; the
        # equatorial station must reach all three operators' shells.
        config = mixed_operator_configuration(duration_s=60.0)
        state = ConstellationCalculation(config).state_at(0.0)
        polar_shells = {u.shell for u in state.uplinks_of("longyearbyen")}
        equatorial_shells = {u.shell for u in state.uplinks_of("quito")}
        assert polar_shells == {2}
        assert equatorial_shells == {0, 1, 2}

    def test_validates(self):
        config = mixed_operator_configuration(duration_s=60.0)
        assert isinstance(validate_configuration(config), list)


class TestWestAfrica:
    def test_configuration_composition(self):
        config = west_africa_configuration(duration_s=60.0)
        assert config.duration_s == 60.0
        assert config.update_interval_s == 2.0
        names = set(config.ground_station_names)
        assert {"accra", "abuja", "yaounde", "johannesburg-cloud", "johannesburg-tracking"} == names
        assert config.hosts.count == 3
        assert config.hosts.total_cores == 96

    def test_client_resources_match_paper(self):
        config = west_africa_configuration()
        accra = config.ground_station_config("accra")
        assert accra.compute.vcpu_count == 4
        assert accra.compute.memory_mib == 4096
        bridge = config.ground_station_config("johannesburg-cloud")
        assert bridge.compute.vcpu_count == 2
        assert bridge.compute.memory_mib == 512

    def test_bounding_box_contains_clients_but_not_johannesburg(self):
        box = west_africa_bounding_box()
        for station in CLIENT_LOCATIONS.values():
            assert box.contains(station.latitude_deg, station.longitude_deg)
        assert not box.contains(-26.2, 28.0)

    def test_shell_selection(self):
        assert len(west_africa_configuration(shells="all").shells) == 5
        assert len(west_africa_configuration(shells="two-lowest").shells) == 2
        assert len(west_africa_configuration(shells="lowest").shells) == 1

    def test_no_bounding_box_option(self):
        config = west_africa_configuration(use_bounding_box=False)
        assert config.bounding_box is None

    def test_validates_cleanly(self):
        warnings = validate_configuration(west_africa_configuration(shells="lowest"))
        # Over-provisioning of CPU cores is expected (the paper relies on it).
        assert all("memory" not in warning for warning in warnings)


class TestPacific:
    def test_buoys_and_sinks_deterministic(self):
        assert [b.name for b in generate_buoys(5)] == [f"buoy-{i}" for i in range(5)]
        first = [(b.latitude_deg, b.longitude_deg) for b in generate_buoys(10)]
        second = [(b.latitude_deg, b.longitude_deg) for b in generate_buoys(10)]
        assert first == second

    def test_buoys_in_pacific(self):
        for buoy in generate_buoys(50):
            assert -40.0 <= buoy.latitude_deg <= 50.0
            assert buoy.longitude_deg >= 150.0 or buoy.longitude_deg <= -120.0

    def test_sinks_near_buoys(self):
        buoys = generate_buoys(20)
        sinks = generate_sinks(buoys, 40)
        assert len(sinks) == 40
        for sink in sinks:
            assert -60.0 <= sink.latitude_deg <= 60.0

    def test_dart_configuration_counts(self):
        config = dart_configuration(buoy_count=100, sink_count=200)
        assert config.total_satellites == 66
        assert len(config.ground_stations) == 301
        assert config.update_interval_s == 5.0
        assert config.hosts.count == 4
        central = config.ground_station_config(PACIFIC_TSUNAMI_WARNING_CENTER.name)
        assert central.compute.vcpu_count == 8
        assert central.compute.memory_mib == 8192

    def test_dart_configuration_satellite_resources(self):
        config = dart_configuration(deployment="satellite", buoy_count=10, sink_count=10)
        assert config.shells[0].compute.vcpu_count == 1
        assert config.shells[0].compute.memory_mib == 1024
        buoy = config.ground_station_config("buoy-0")
        assert buoy.uplink_bandwidth_kbps == 88.0

    def test_invalid_deployment(self):
        with pytest.raises(ValueError):
            dart_configuration(deployment="fog")


class TestTelesat:
    def test_hybrid_composition(self):
        polar, inclined = telesat_shells()
        assert polar.geometry.total_satellites == 78
        assert inclined.geometry.total_satellites == 220
        assert telesat_total_satellites() == 298
        # The defining property: one operator mixing both Walker patterns.
        assert polar.geometry.is_polar_star
        assert not inclined.geometry.is_polar_star
        assert polar.geometry.inclination_deg == pytest.approx(98.98)
        assert inclined.geometry.inclination_deg == pytest.approx(50.88)
        assert polar.geometry.altitude_km < inclined.geometry.altitude_km

    def test_configuration(self):
        config = telesat_configuration(duration_s=60.0)
        assert [shell.name for shell in config.shells] == [
            "telesat-polar",
            "telesat-inclined",
        ]
        assert config.total_satellites == 298
        assert set(config.ground_station_names) == set(TELESAT_GROUND_STATIONS)
        assert isinstance(validate_configuration(config), list)

    def test_coverage_split_between_shells(self):
        # Alert (82.5 N) lies beyond the inclined shell's ~76 N footprint
        # edge, so its uplinks can only come from the polar star shell; the
        # equatorial and mid-latitude stations must be served.
        config = telesat_configuration(duration_s=60.0)
        state = ConstellationCalculation(config).state_at(0.0)
        alert_shells = {u.shell for u in state.uplinks_of("alert")}
        assert alert_shells == {0}
        assert state.uplinks_of("singapore")
        assert state.uplinks_of("ottawa")


def _small_degraded_testbed():
    """A scaled-down two-operator testbed for the degradation machinery."""
    from repro.core import (
        ComputeParams,
        Configuration,
        GroundStationConfig,
        HostConfig,
        NetworkParams,
        ShellConfig,
    )
    from repro.orbits import GroundStation, ShellGeometry

    compute = ComputeParams(vcpu_count=1, memory_mib=256)
    config = Configuration(
        shells=(
            ShellConfig(
                name="healthy",
                geometry=ShellGeometry(6, 11, 780.0, 86.4, 180.0),
                network=NetworkParams(min_elevation_deg=8.2),
                compute=compute,
            ),
            ShellConfig(
                name="oneweb",
                geometry=ShellGeometry(6, 6, 1200.0, 87.9, 180.0),
                network=NetworkParams(min_elevation_deg=15.0),
                compute=compute,
            ),
        ),
        ground_stations=(
            GroundStationConfig(
                station=GroundStation("hawaii", 21.3, -157.9), compute=compute
            ),
        ),
        hosts=HostConfig(count=2, cpu_cores=32, memory_mib=64 * 1024),
        update_interval_s=30.0,
        duration_s=300.0,
    )
    return Celestial(config)


class TestDegradedOperator:
    def test_configuration_names_victim(self):
        config, victim = degraded_operator_configuration(duration_s=60.0)
        assert config.shells[victim].name == "oneweb"
        assert config.total_satellites == 1584 + 1156 + 648
        with pytest.raises(ValueError):
            victim_shell_index(config, "nonexistent")

    def test_progressive_isl_loss_via_fault_injection(self):
        testbed = _small_degraded_testbed()
        victim = victim_shell_index(testbed.config)
        degradation = OperatorDegradation(
            testbed, victim, isls_per_step=5, interval_s=30.0, target_fraction=0.4
        )
        testbed.start()
        testbed.sim.process(degradation.process())
        testbed.run(until=240.0)
        # The cascade ran and every severed pair is an intra-victim ISL.
        assert degradation.steps
        assert len(degradation.severed) >= 5
        span = testbed.state.node_index.satellites_of_shell(victim)
        for node_a, node_b in degradation.severed:
            assert node_a in span and node_b in span
        # Severed ISLs are applied through the fault-injection API: the
        # network carries a total-loss override in both directions and the
        # injector logged the events.
        loss_events = [
            event
            for event in testbed.fault_injector.events
            if event.kind == "packet-loss"
        ]
        assert len(loss_events) == 2 * len(degradation.severed)
        # Monotone progress up to the target fraction.
        totals = [step.total_severed for step in degradation.steps]
        assert totals == sorted(totals)
        assert degradation.done or degradation.steps[-1].remaining_intact == 0
        # Every injected loss targets the victim shell, so the healthy
        # operator's shell is untouched.
        for event in loss_events:
            source, _, destination = event.machine.partition("->")
            for name in (source, destination):
                _identifier, shell, _ = name.split(".", 2)
                assert int(shell) == victim

    def test_rejects_invalid_parameters(self):
        testbed = _small_degraded_testbed()
        with pytest.raises(ValueError):
            OperatorDegradation(testbed, 1, target_fraction=0.0)
        with pytest.raises(ValueError):
            OperatorDegradation(testbed, 1, isls_per_step=0)
