"""Unit tests for the paper's scenario configurations."""

import numpy as np
import pytest

from repro.core import ConstellationCalculation, validate_configuration
from repro.scenarios import (
    CLIENT_LOCATIONS,
    MIXED_GROUND_STATIONS,
    PACIFIC_TSUNAMI_WARNING_CENTER,
    dart_configuration,
    generate_buoys,
    generate_sinks,
    iridium_shell,
    kuiper_first_shell,
    kuiper_shells,
    kuiper_total_satellites,
    mixed_operator_configuration,
    oneweb_shell,
    oneweb_total_satellites,
    starlink_first_shell,
    starlink_phase1_shells,
    starlink_phase1_total_satellites,
    west_africa_bounding_box,
    west_africa_configuration,
)


class TestStarlink:
    def test_phase1_totals(self):
        shells = starlink_phase1_shells()
        assert len(shells) == 5
        totals = [shell.geometry.total_satellites for shell in shells]
        assert totals == [1584, 1600, 400, 375, 450]
        assert starlink_phase1_total_satellites() == 4409

    def test_first_shell_geometry(self):
        shell = starlink_first_shell()
        assert shell.geometry.planes == 72
        assert shell.geometry.satellites_per_plane == 22
        assert shell.geometry.altitude_km == 550.0
        assert shell.geometry.inclination_deg == 53.0

    def test_limit_parameter(self):
        assert len(starlink_phase1_shells(limit=2)) == 2

    def test_altitudes_match_paper(self):
        altitudes = [shell.geometry.altitude_km for shell in starlink_phase1_shells()]
        assert altitudes == [550.0, 1110.0, 1130.0, 1275.0, 1325.0]


class TestIridium:
    def test_geometry_matches_paper(self):
        shell = iridium_shell()
        assert shell.geometry.total_satellites == 66
        assert shell.geometry.planes == 6
        assert shell.geometry.altitude_km == 780.0
        assert shell.geometry.arc_of_ascending_nodes_deg == 180.0
        assert shell.geometry.is_polar_star

    def test_sensor_bandwidth(self):
        shell = iridium_shell()
        assert shell.network.uplink_bandwidth_kbps == 88.0
        assert shell.network.isl_bandwidth_kbps == 100_000.0


class TestKuiper:
    def test_shell_totals(self):
        shells = kuiper_shells()
        assert len(shells) == 3
        totals = [shell.geometry.total_satellites for shell in shells]
        assert totals == [1156, 1296, 784]
        assert kuiper_total_satellites() == 3236

    def test_first_shell_geometry(self):
        shell = kuiper_first_shell()
        assert shell.geometry.planes == 34
        assert shell.geometry.satellites_per_plane == 34
        assert shell.geometry.altitude_km == 630.0
        assert shell.geometry.arc_of_ascending_nodes_deg == 360.0
        assert not shell.geometry.is_polar_star

    def test_min_elevation_stricter_than_starlink(self):
        assert kuiper_shells()[0].network.min_elevation_deg == 35.0
        assert starlink_first_shell().network.min_elevation_deg == 25.0

    def test_limit_parameter(self):
        assert len(kuiper_shells(limit=2)) == 2


class TestOneWeb:
    def test_geometry_is_near_polar_walker_star(self):
        shell = oneweb_shell()
        assert shell.geometry.total_satellites == 648
        assert oneweb_total_satellites() == 648
        assert shell.geometry.planes == 18
        assert shell.geometry.altitude_km == 1200.0
        assert shell.geometry.arc_of_ascending_nodes_deg == 180.0
        assert shell.geometry.is_polar_star

    def test_seam_removes_inter_plane_links(self):
        # A Walker-star +GRID drops the inter-plane links across the seam:
        # 2*N - satellites_per_plane links instead of the seamless 2*N.
        from repro.topology.isl import grid_plus_isl_pairs

        geometry = oneweb_shell().geometry
        pairs = grid_plus_isl_pairs(geometry)
        assert len(pairs) == 2 * 648 - 36


class TestMixedOperator:
    def test_composition(self):
        config = mixed_operator_configuration(duration_s=60.0)
        names = [shell.name for shell in config.shells]
        assert names == ["starlink-0", "kuiper-0", "oneweb"]
        assert config.total_satellites == 1584 + 1156 + 648
        assert set(config.ground_station_names) == set(MIXED_GROUND_STATIONS)

    def test_full_kuiper_option(self):
        config = mixed_operator_configuration(duration_s=60.0, kuiper_shell_limit=None)
        assert config.total_satellites == 1584 + 3236 + 648

    def test_multi_shell_uplink_selection(self):
        # The polar station only sees the near-polar OneWeb shell; the
        # equatorial station must reach all three operators' shells.
        config = mixed_operator_configuration(duration_s=60.0)
        state = ConstellationCalculation(config).state_at(0.0)
        polar_shells = {u.shell for u in state.uplinks_of("longyearbyen")}
        equatorial_shells = {u.shell for u in state.uplinks_of("quito")}
        assert polar_shells == {2}
        assert equatorial_shells == {0, 1, 2}

    def test_validates(self):
        config = mixed_operator_configuration(duration_s=60.0)
        assert isinstance(validate_configuration(config), list)


class TestWestAfrica:
    def test_configuration_composition(self):
        config = west_africa_configuration(duration_s=60.0)
        assert config.duration_s == 60.0
        assert config.update_interval_s == 2.0
        names = set(config.ground_station_names)
        assert {"accra", "abuja", "yaounde", "johannesburg-cloud", "johannesburg-tracking"} == names
        assert config.hosts.count == 3
        assert config.hosts.total_cores == 96

    def test_client_resources_match_paper(self):
        config = west_africa_configuration()
        accra = config.ground_station_config("accra")
        assert accra.compute.vcpu_count == 4
        assert accra.compute.memory_mib == 4096
        bridge = config.ground_station_config("johannesburg-cloud")
        assert bridge.compute.vcpu_count == 2
        assert bridge.compute.memory_mib == 512

    def test_bounding_box_contains_clients_but_not_johannesburg(self):
        box = west_africa_bounding_box()
        for station in CLIENT_LOCATIONS.values():
            assert box.contains(station.latitude_deg, station.longitude_deg)
        assert not box.contains(-26.2, 28.0)

    def test_shell_selection(self):
        assert len(west_africa_configuration(shells="all").shells) == 5
        assert len(west_africa_configuration(shells="two-lowest").shells) == 2
        assert len(west_africa_configuration(shells="lowest").shells) == 1

    def test_no_bounding_box_option(self):
        config = west_africa_configuration(use_bounding_box=False)
        assert config.bounding_box is None

    def test_validates_cleanly(self):
        warnings = validate_configuration(west_africa_configuration(shells="lowest"))
        # Over-provisioning of CPU cores is expected (the paper relies on it).
        assert all("memory" not in warning for warning in warnings)


class TestPacific:
    def test_buoys_and_sinks_deterministic(self):
        assert [b.name for b in generate_buoys(5)] == [f"buoy-{i}" for i in range(5)]
        first = [(b.latitude_deg, b.longitude_deg) for b in generate_buoys(10)]
        second = [(b.latitude_deg, b.longitude_deg) for b in generate_buoys(10)]
        assert first == second

    def test_buoys_in_pacific(self):
        for buoy in generate_buoys(50):
            assert -40.0 <= buoy.latitude_deg <= 50.0
            assert buoy.longitude_deg >= 150.0 or buoy.longitude_deg <= -120.0

    def test_sinks_near_buoys(self):
        buoys = generate_buoys(20)
        sinks = generate_sinks(buoys, 40)
        assert len(sinks) == 40
        for sink in sinks:
            assert -60.0 <= sink.latitude_deg <= 60.0

    def test_dart_configuration_counts(self):
        config = dart_configuration(buoy_count=100, sink_count=200)
        assert config.total_satellites == 66
        assert len(config.ground_stations) == 301
        assert config.update_interval_s == 5.0
        assert config.hosts.count == 4
        central = config.ground_station_config(PACIFIC_TSUNAMI_WARNING_CENTER.name)
        assert central.compute.vcpu_count == 8
        assert central.compute.memory_mib == 8192

    def test_dart_configuration_satellite_resources(self):
        config = dart_configuration(deployment="satellite", buoy_count=10, sink_count=10)
        assert config.shells[0].compute.vcpu_count == 1
        assert config.shells[0].compute.memory_mib == 1024
        buoy = config.ground_station_config("buoy-0")
        assert buoy.uplink_bandwidth_kbps == 88.0

    def test_invalid_deployment(self):
        with pytest.raises(ValueError):
            dart_configuration(deployment="fog")
