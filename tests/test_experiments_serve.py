"""Harness-layer tests of the serving tier and the new fault-op kinds.

Covers :class:`ServeSpec` (validation, byte-stable round-trips, the CLI's
``--serve`` address parser), the runner attaching a
:class:`~repro.serve.gateway.GatewayServer` to a run and recording its
statistics in the result bundle, the tunable table-cache value function
surfacing in ``result.json``, and — for the ``bandwidth-cap`` and
``ground-outage`` fault ops — injector event logs identical to hand-wired
runs of the same schedule.
"""

import json

import pytest

from repro.core import (
    ComputeParams,
    Configuration,
    GroundStationConfig,
    NetworkParams,
    ShellConfig,
)
from repro.core.testbed import Celestial
from repro.experiments import (
    ExperimentRunner,
    ExperimentSpec,
    ExperimentSpecError,
    FaultOp,
    ScenarioSpec,
    ServeSpec,
    WorkloadSpec,
    build,
    scenario,
    unregister,
)
from repro.orbits import GroundStation, ShellGeometry


class TestServeSpec:
    def test_validation(self):
        with pytest.raises(ExperimentSpecError, match="queue"):
            ServeSpec(queue_limit=0)
        with pytest.raises(ExperimentSpecError, match="timeout"):
            ServeSpec(ack_timeout_s=0.0)
        with pytest.raises(ExperimentSpecError, match="port"):
            ServeSpec(port=70000)

    def test_round_trips_are_byte_stable(self):
        spec = ExperimentSpec(
            name="serve-round-trip",
            scenario=ScenarioSpec(name="iridium"),
            workload=WorkloadSpec(app="none"),
            serve=ServeSpec(port=9099, queue_limit=16, auth_secret="orbital"),
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        toml = spec.to_toml()
        again = ExperimentSpec.from_toml_text(toml)
        assert again == spec
        assert again.to_toml() == toml

    def test_default_serve_table_round_trips(self):
        spec = ExperimentSpec(
            name="serve-defaults",
            scenario=ScenarioSpec(name="iridium"),
            workload=WorkloadSpec(app="none"),
            serve=ServeSpec(),
        )
        again = ExperimentSpec.from_toml_text(spec.to_toml())
        assert again.serve == ServeSpec()

    def test_with_serve_parses_addresses(self):
        spec = ExperimentSpec(
            name="serve-cli",
            scenario=ScenarioSpec(name="iridium"),
            workload=WorkloadSpec(app="none"),
        )
        assert spec.with_serve("").serve == ServeSpec()
        assert spec.with_serve("0.0.0.0:9099").serve == ServeSpec(
            host="0.0.0.0", port=9099
        )
        assert spec.with_serve(":9099").serve == ServeSpec(port=9099)
        assert spec.with_serve("10.0.0.7").serve == ServeSpec(host="10.0.0.7")


class TestRunnerServe:
    def test_gateway_serves_the_run_and_lands_in_the_bundle(self, tmp_path):
        spec = ExperimentSpec(
            name="serve-run",
            scenario=ScenarioSpec(
                name="iridium", params={"duration_s": 20.0, "update_interval_s": 5.0}
            ),
            workload=WorkloadSpec(app="none"),
            serve=ServeSpec(),
        )
        output_dir = tmp_path / "bundle"
        result = ExperimentRunner(spec, output_dir=output_dir).run()
        stats = result.serve_statistics
        assert stats["published_epochs"] >= 3
        assert stats["encode_count"] >= stats["published_epochs"]
        summary = json.loads((output_dir / "result.json").read_text())
        assert summary["serve"]["published_epochs"] == stats["published_epochs"]

    def test_cache_value_function_is_recorded(self):
        config = build("iridium", duration_s=30.0, update_interval_s=15.0)

        def flat_score(hits: float, cost: float) -> float:
            return hits

        testbed = Celestial(
            config, cache_decay_half_life=3.0, cache_score=flat_score
        )
        try:
            parameters = testbed.path_engine_statistics()["cache_parameters"]
        finally:
            testbed.close()
        assert parameters["decay_half_life_epochs"] == 3.0
        assert parameters["decay_factor"] == pytest.approx(0.5 ** (1.0 / 3.0))
        assert parameters["score"] == "flat_score"


class TestBandwidthCapEquivalence:
    def test_spec_run_matches_hand_wired_event_log(self):
        params = {"duration_s": 60.0, "update_interval_s": 30.0}
        config = build("iridium", **params)
        testbed = Celestial(config)
        try:
            testbed.start()
            injector = testbed.fault_injector
            hawaii = testbed.ground_station("hawaii")
            satellite = testbed.satellite(0, 0)
            testbed.ensure_machine(satellite)

            def cap():
                yield testbed.sim.timeout(30.0)
                injector.apply_op(
                    "bandwidth-cap",
                    testbed.sim.now,
                    source=hawaii,
                    destination=satellite,
                    bandwidth_kbps=256.0,
                )

            def clear():
                yield testbed.sim.timeout(45.0)
                injector.apply_op(
                    "clear-bandwidth-cap",
                    testbed.sim.now,
                    source=hawaii,
                    destination=satellite,
                )

            testbed.sim.process(cap())
            testbed.sim.process(clear())
            testbed.run()
            manual_events = list(injector.events)
        finally:
            testbed.close()
        assert [event.kind for event in manual_events] == [
            "bandwidth-cap",
            "bandwidth-cap-cleared",
        ]

        spec = ExperimentSpec(
            name="bandwidth-cap-equivalence",
            scenario=ScenarioSpec(name="iridium", params=params),
            workload=WorkloadSpec(app="none"),
            fault_program=(
                FaultOp(
                    kind="bandwidth-cap",
                    at_s=30.0,
                    target="hawaii->0/0",
                    params={"bandwidth_kbps": 256.0},
                ),
                FaultOp(kind="clear-bandwidth-cap", at_s=45.0, target="hawaii->0/0"),
            ),
        )
        result = ExperimentRunner(spec).run()
        assert result.fault_events == manual_events


def _two_station_configuration(duration_s: float = 60.0) -> Configuration:
    compute = ComputeParams(vcpu_count=1, memory_mib=256)
    return Configuration(
        shells=(
            ShellConfig(
                name="iridium",
                geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                network=NetworkParams(min_elevation_deg=8.2),
                compute=compute,
            ),
        ),
        ground_stations=(
            GroundStationConfig(
                station=GroundStation("hawaii", 21.3, -157.9), compute=compute
            ),
            GroundStationConfig(
                station=GroundStation("reykjavik", 64.1, -21.9), compute=compute
            ),
        ),
        update_interval_s=30.0,
        duration_s=duration_s,
    )


class TestGroundOutageEquivalence:
    def test_named_stations_match_hand_wired_event_log(self):
        config = _two_station_configuration()
        testbed = Celestial(config)
        try:
            testbed.start()
            injector = testbed.fault_injector
            stations = [
                testbed.ground_station("hawaii"),
                testbed.ground_station("reykjavik"),
            ]

            def down():
                yield testbed.sim.timeout(20.0)
                for machine in stations:
                    injector.apply_op("terminate", testbed.sim.now, machine=machine)

            def recover():
                yield testbed.sim.timeout(20.0 + 25.0)
                for machine in stations:
                    injector.apply_op("reboot", testbed.sim.now, machine=machine)

            testbed.sim.process(down())
            testbed.sim.process(recover())
            testbed.run()
            manual_events = list(injector.events)
        finally:
            testbed.close()
        assert [event.kind for event in manual_events] == [
            "terminate",
            "terminate",
            "reboot",
            "reboot",
        ]

        @scenario("tmp-serve-outage")
        def factory():
            return _two_station_configuration()

        try:
            spec = ExperimentSpec(
                name="ground-outage-equivalence",
                scenario=ScenarioSpec(name="tmp-serve-outage"),
                workload=WorkloadSpec(app="none"),
                fault_program=(
                    FaultOp(
                        kind="ground-outage",
                        at_s=20.0,
                        target="hawaii,reykjavik",
                        params={"duration_s": 25.0},
                    ),
                ),
            )
            result = ExperimentRunner(spec).run()
        finally:
            unregister("tmp-serve-outage")
        assert result.fault_events == manual_events

    def test_regional_blackout_selects_stations_by_bounding_box(self):
        @scenario("tmp-serve-region")
        def factory():
            return _two_station_configuration()

        try:
            spec = ExperimentSpec(
                name="regional-blackout",
                scenario=ScenarioSpec(name="tmp-serve-region"),
                workload=WorkloadSpec(app="none"),
                fault_program=(
                    FaultOp(
                        kind="ground-outage",
                        at_s=20.0,
                        params={
                            # Only hawaii sits inside this box.
                            "lat_min": 15.0,
                            "lat_max": 25.0,
                            "lon_min": -165.0,
                            "lon_max": -150.0,
                            "duration_s": 10.0,
                        },
                    ),
                ),
            )
            result = ExperimentRunner(spec).run()
        finally:
            unregister("tmp-serve-region")
        assert [(e.time_s, e.machine, e.kind) for e in result.fault_events] == [
            (20.0, "hawaii", "terminate"),
            (30.0, "hawaii", "reboot"),
        ]

    def test_empty_selection_rejected(self):
        @scenario("tmp-serve-empty")
        def factory():
            return _two_station_configuration()

        try:
            spec = ExperimentSpec(
                name="empty-outage",
                scenario=ScenarioSpec(name="tmp-serve-empty"),
                workload=WorkloadSpec(app="none"),
                fault_program=(
                    FaultOp(
                        kind="ground-outage",
                        params={
                            "lat_min": -5.0,
                            "lat_max": 5.0,
                            "lon_min": 0.0,
                            "lon_max": 5.0,
                        },
                    ),
                ),
            )
            with pytest.raises(ExperimentSpecError, match="no ground stations"):
                ExperimentRunner(spec).run()
        finally:
            unregister("tmp-serve-empty")

    def test_region_requires_all_bounds(self):
        @scenario("tmp-serve-bounds")
        def factory():
            return _two_station_configuration()

        try:
            spec = ExperimentSpec(
                name="missing-bounds",
                scenario=ScenarioSpec(name="tmp-serve-bounds"),
                workload=WorkloadSpec(app="none"),
                fault_program=(
                    FaultOp(kind="ground-outage", params={"lat_min": 0.0}),
                ),
            )
            with pytest.raises(ExperimentSpecError, match="missing params"):
                ExperimentRunner(spec).run()
        finally:
            unregister("tmp-serve-bounds")
