"""Unit tests for ISL topology generation and link parameter computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orbits import ShellGeometry, constants
from repro.topology import (
    grid_plus_isl_pairs,
    link_delay_ms,
    propagation_delay_ms,
    serialization_delay_ms,
)
from repro.topology.isl import isl_count
from repro.topology.linkparams import fiber_delay_ms


class TestGridPlusISL:
    def test_delta_shell_has_two_links_per_satellite(self):
        geometry = ShellGeometry(planes=6, satellites_per_plane=10, altitude_km=550.0,
                                 inclination_deg=53.0, arc_of_ascending_nodes_deg=360.0)
        pairs = grid_plus_isl_pairs(geometry)
        # +GRID: every satellite has 4 links (2 intra-plane, 2 inter-plane),
        # so the undirected link count is 2 * N.
        assert len(pairs) == 2 * geometry.total_satellites

    def test_star_shell_misses_seam_links(self):
        star = ShellGeometry(planes=6, satellites_per_plane=11, altitude_km=780.0,
                             inclination_deg=86.4, arc_of_ascending_nodes_deg=180.0)
        pairs = grid_plus_isl_pairs(star)
        # The seam between the first and last plane removes satellites_per_plane links.
        assert len(pairs) == 2 * star.total_satellites - star.satellites_per_plane

    def test_iridium_seam_has_no_cross_links(self):
        star = ShellGeometry(planes=6, satellites_per_plane=11, altitude_km=780.0,
                             inclination_deg=86.4, arc_of_ascending_nodes_deg=180.0)
        pairs = grid_plus_isl_pairs(star)
        first_plane = set(range(11))
        last_plane = set(range(5 * 11, 6 * 11))
        for a, b in pairs:
            assert not (a in first_plane and b in last_plane)
            assert not (a in last_plane and b in first_plane)

    def test_pairs_are_unique_and_ordered(self):
        geometry = ShellGeometry(4, 5, 550.0, 53.0)
        pairs = grid_plus_isl_pairs(geometry)
        assert len(pairs) == len(set(pairs))
        assert all(a < b for a, b in pairs)

    def test_single_plane_ring(self):
        geometry = ShellGeometry(planes=1, satellites_per_plane=8, altitude_km=550.0,
                                 inclination_deg=53.0)
        pairs = grid_plus_isl_pairs(geometry)
        assert len(pairs) == 8

    def test_two_satellite_plane_single_link(self):
        geometry = ShellGeometry(planes=1, satellites_per_plane=2, altitude_km=550.0,
                                 inclination_deg=53.0)
        assert isl_count(geometry) == 1

    @settings(max_examples=30, deadline=None)
    @given(planes=st.integers(min_value=2, max_value=12),
           per_plane=st.integers(min_value=3, max_value=20))
    def test_property_every_satellite_has_three_to_four_links(self, planes, per_plane):
        geometry = ShellGeometry(planes, per_plane, 550.0, 53.0,
                                 arc_of_ascending_nodes_deg=180.0)
        pairs = grid_plus_isl_pairs(geometry)
        degree = np.zeros(geometry.total_satellites, dtype=int)
        for a, b in pairs:
            degree[a] += 1
            degree[b] += 1
        # Seam satellites have 3 links, everyone else has 4.
        assert set(np.unique(degree)) <= {3, 4}
        assert np.count_nonzero(degree == 3) == 2 * per_plane


class TestLinkParams:
    def test_propagation_delay_speed_of_light(self):
        # 300 km at c is almost exactly 1 ms.
        assert propagation_delay_ms(299.792458) == pytest.approx(1.0)

    def test_link_delay_quantisation(self):
        delay = link_delay_ms(1000.0, quantize=True)
        assert delay == pytest.approx(3.3)
        assert (delay / 0.1) == pytest.approx(round(delay / 0.1))

    def test_link_delay_vectorised(self):
        delays = link_delay_ms(np.array([300.0, 600.0]))
        assert delays.shape == (2,)
        assert delays[1] == pytest.approx(2 * delays[0])

    def test_serialization_delay(self):
        # 1250 bytes at 10 Mb/s = 1 ms.
        assert serialization_delay_ms(1250.0, 10_000.0) == pytest.approx(1.0)

    def test_serialization_delay_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            serialization_delay_ms(100.0, 0.0)

    def test_fiber_slower_than_vacuum(self):
        assert fiber_delay_ms(1000.0) == pytest.approx(link_delay_ms(1000.0) * 1.47, rel=1e-6)

    def test_meetup_example_delays(self):
        # Sanity-check the paper's Fig. 3 numbers: Accra to Johannesburg is
        # roughly 4,500 km away; a one-way trip over the satellite network
        # at c plus up/down links lands in the tens of milliseconds.
        distance = 4500.0
        assert 10.0 < propagation_delay_ms(distance) < 20.0
