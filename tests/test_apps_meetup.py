"""Integration tests for the §4 meetup/video-conference experiment."""

import numpy as np
import pytest

from repro import Celestial
from repro.apps import MeetupExperiment, VideoStreamParams
from repro.scenarios import west_africa_configuration

# A coarser stream than the paper's 20 ms pacing keeps the test suite fast
# while preserving the latency statistics.
_TEST_STREAM = VideoStreamParams(bitrate_kbps=2600.0, packet_interval_s=0.1)


def _run(mode, duration_s=60.0, seed=0, shells="lowest"):
    config = west_africa_configuration(duration_s=duration_s, shells=shells, seed=seed)
    testbed = Celestial(config)
    experiment = MeetupExperiment(testbed, mode=mode, stream=_TEST_STREAM)
    return experiment.run()


@pytest.fixture(scope="module")
def satellite_results():
    return _run("satellite")


@pytest.fixture(scope="module")
def cloud_results():
    return _run("cloud")


class TestMeetupExperiment:
    def test_all_pairs_measured(self, satellite_results):
        assert len(satellite_results.measured) == 6
        for series in satellite_results.measured.values():
            assert len(series) > 100

    def test_satellite_bridge_latency_shape(self, satellite_results):
        # Paper: end-to-end latency below ~16 ms for at least 80% of the call.
        merged = satellite_results.all_measurements()
        assert merged.fraction_below(16.0) >= 0.8
        assert merged.median() < 16.0

    def test_cloud_bridge_latency_shape(self, cloud_results):
        # Paper: cloud bridge RTT around 46 ms for the most distant client.
        merged = cloud_results.all_measurements()
        assert 30.0 < merged.median() < 55.0
        assert merged.fraction_below(46.0) >= 0.6

    def test_satellite_beats_cloud(self, satellite_results, cloud_results):
        satellite = satellite_results.all_measurements().median()
        cloud = cloud_results.all_measurements().median()
        assert satellite < cloud
        # The paper's headline: 16 ms vs 46 ms RTT, roughly a 3x improvement.
        assert cloud / satellite > 2.0

    def test_cloud_bridge_never_changes(self, cloud_results):
        assert cloud_results.bridge_history[0][1] == "johannesburg-cloud"
        assert len(cloud_results.bridge_history) == 1

    def test_satellite_bridge_handovers_happen(self, satellite_results):
        assert len(satellite_results.bridge_history) >= 2
        assert all(name.endswith(".celestial") for _, name in satellite_results.bridge_history)

    def test_only_low_shells_selected(self):
        results = _run("satellite", duration_s=40.0, shells="two-lowest", seed=3)
        # Paper §4.2: only satellites of the lowest, densest shells are selected.
        assert set(results.selected_shells) <= {0, 1}
        assert 0 in set(results.selected_shells)

    def test_expected_latency_tracks_measured(self, cloud_results):
        for pair, expected_series in cloud_results.expected.items():
            measured_series = cloud_results.measured[pair]
            if len(expected_series) == 0 or len(measured_series) == 0:
                continue
            # Expected (network + median processing) should be within a few
            # milliseconds of the measured median (Fig. 5 agreement).
            assert abs(expected_series.mean() - measured_series.median()) < 6.0

    def test_reproducible_across_identical_runs(self):
        first = _run("cloud", duration_s=30.0, seed=7)
        second = _run("cloud", duration_s=30.0, seed=7)
        a = first.all_measurements().values()
        b = second.all_measurements().values()
        assert len(a) == len(b)
        np.testing.assert_allclose(a, b)

    def test_invalid_mode_rejected(self):
        config = west_africa_configuration(duration_s=10.0, shells="lowest")
        with pytest.raises(ValueError):
            MeetupExperiment(Celestial(config), mode="balloon")
