"""Unit tests for the virtual network data plane and endpoints."""

import pytest

from repro.core.constellation import MachineId
from repro.net import Message, PairRule, VirtualNetwork
from repro.net.endpoint import NetworkEndpoint
from repro.sim import Simulation


def _machine(name, shell=0, identifier=0):
    return MachineId(shell, identifier, name)


class _FakeRules:
    """Configurable rule provider / running check used instead of a testbed."""

    def __init__(self):
        self.delay_ms = 10.0
        self.reachable = True
        self.running = True
        self.bandwidth = None

    def rule(self, source, destination):
        return PairRule(self.delay_ms, self.bandwidth, self.reachable)

    def is_running(self, machine):
        return self.running


def _network(sim, fake):
    return VirtualNetwork(sim, rule_provider=fake.rule, running_check=fake.is_running)


class TestMessage:
    def test_latency_and_validation(self):
        message = Message(_machine("a"), _machine("b"), 100, sent_at_s=1.0)
        assert message.latency_ms(1.05) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            Message(_machine("a"), _machine("b"), 0)

    def test_message_ids_unique(self):
        a = Message(_machine("a"), _machine("b"), 1)
        b = Message(_machine("a"), _machine("b"), 1)
        assert a.message_id != b.message_id


class TestVirtualNetwork:
    def test_delivery_after_delay(self):
        sim = Simulation()
        fake = _FakeRules()
        network = _network(sim, fake)
        source, destination = _machine("src"), _machine("dst", identifier=1)
        inbox = network.register_endpoint(destination)
        received = []

        def receiver():
            message = yield inbox.get()
            received.append((sim.now, message.payload))

        sim.process(receiver())
        assert network.send(Message(source, destination, 100, payload="hi", sent_at_s=0.0))
        sim.run()
        assert received == [(0.010, "hi")]
        assert network.messages_delivered == 1

    def test_drop_when_machine_not_running(self):
        sim = Simulation()
        fake = _FakeRules()
        fake.running = False
        network = _network(sim, fake)
        destination = _machine("dst")
        network.register_endpoint(destination)
        assert not network.send(Message(_machine("src"), destination, 100))
        assert network.messages_dropped == 1

    def test_drop_when_unreachable(self):
        sim = Simulation()
        fake = _FakeRules()
        fake.reachable = False
        network = _network(sim, fake)
        destination = _machine("dst")
        network.register_endpoint(destination)
        assert not network.send(Message(_machine("src"), destination, 100))

    def test_drop_without_registered_endpoint(self):
        sim = Simulation()
        network = _network(sim, _FakeRules())
        assert not network.send(Message(_machine("src"), _machine("ghost"), 100))

    def test_rule_refresh_after_update(self):
        sim = Simulation()
        fake = _FakeRules()
        network = _network(sim, fake)
        source, destination = _machine("src"), _machine("dst")
        inbox = network.register_endpoint(destination)
        arrivals = []

        def receiver():
            while True:
                message = yield inbox.get()
                arrivals.append(sim.now - message.sent_at_s)

        def sender():
            network.send(Message(source, destination, 100, sent_at_s=sim.now))
            yield sim.timeout(1.0)
            fake.delay_ms = 30.0
            network.mark_updated()
            network.send(Message(source, destination, 100, sent_at_s=sim.now))

        sim.process(receiver())
        sim.process(sender())
        sim.run(until=10.0)
        assert arrivals[0] == pytest.approx(0.010)
        assert arrivals[1] == pytest.approx(0.030)

    def test_stale_rule_used_between_updates(self):
        sim = Simulation()
        fake = _FakeRules()
        network = _network(sim, fake)
        source, destination = _machine("src"), _machine("dst")
        inbox = network.register_endpoint(destination)
        arrivals = []

        def receiver():
            while True:
                message = yield inbox.get()
                arrivals.append(sim.now - message.sent_at_s)

        def sender():
            network.send(Message(source, destination, 100, sent_at_s=sim.now))
            yield sim.timeout(1.0)
            fake.delay_ms = 30.0  # no mark_updated(): installed rule stays
            network.send(Message(source, destination, 100, sent_at_s=sim.now))

        sim.process(receiver())
        sim.process(sender())
        sim.run(until=10.0)
        assert arrivals == [pytest.approx(0.010), pytest.approx(0.010)]

    def test_loss_override(self):
        sim = Simulation()
        fake = _FakeRules()
        network = _network(sim, fake)
        source, destination = _machine("src"), _machine("dst")
        network.register_endpoint(destination)
        network.set_loss_override(source, destination, 1.0)
        assert not network.send(Message(source, destination, 100))
        network.clear_loss_override(source, destination)
        assert network.send(Message(source, destination, 100))
        with pytest.raises(ValueError):
            network.set_loss_override(source, destination, 2.0)

    def test_inbox_requires_registration(self):
        sim = Simulation()
        network = _network(sim, _FakeRules())
        with pytest.raises(KeyError):
            network.inbox(_machine("ghost"))


class TestNetworkEndpoint:
    def test_send_receive_roundtrip(self):
        sim = Simulation()
        fake = _FakeRules()
        network = _network(sim, fake)
        alice = NetworkEndpoint(sim, network, _machine("alice"))
        bob = NetworkEndpoint(sim, network, _machine("bob", identifier=1))
        latencies = []

        def bob_process():
            message = yield bob.receive()
            latencies.append(message.latency_ms(sim.now))

        def alice_process():
            alice.send(bob.machine, 256, payload="hello")
            yield sim.timeout(0.0)

        sim.process(bob_process())
        sim.process(alice_process())
        sim.run()
        assert latencies == [pytest.approx(10.0)]
        assert alice.sent_count == 1
        assert bob.received_count == 1

    def test_pending_counts_queued_messages(self):
        sim = Simulation()
        network = _network(sim, _FakeRules())
        alice = NetworkEndpoint(sim, network, _machine("alice"))
        bob = NetworkEndpoint(sim, network, _machine("bob", identifier=1))

        def alice_process():
            alice.send(bob.machine, 100)
            alice.send(bob.machine, 100)
            yield sim.timeout(0.0)

        sim.process(alice_process())
        sim.run()
        assert bob.pending() == 2
