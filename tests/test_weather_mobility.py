"""Unit tests for the external-factor models: rain fade, thermal shutdown, mobility."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netem import RainFadeModel, ThermalShutdownModel
from repro.orbits import MovingGroundStation, Waypoint


class TestRainFade:
    def test_clear_sky_is_lossless(self):
        model = RainFadeModel()
        assert model.attenuation_db(0.0) == 0.0
        assert model.loss_probability(0.0) == 0.0
        assert model.bandwidth_fraction(0.0) == 1.0
        assert not model.is_outage(0.0)

    def test_heavy_rain_degrades_link(self):
        model = RainFadeModel()
        light = model.loss_probability(5.0)
        heavy = model.loss_probability(120.0)
        assert heavy > light
        assert model.bandwidth_fraction(120.0) < model.bandwidth_fraction(5.0)
        assert model.is_outage(300.0)

    def test_higher_frequency_attenuates_more(self):
        ku_band = RainFadeModel(frequency_ghz=12.0)
        ka_band = RainFadeModel(frequency_ghz=30.0)
        assert ka_band.attenuation_db(50.0) > ku_band.attenuation_db(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RainFadeModel(frequency_ghz=0.0)
        with pytest.raises(ValueError):
            RainFadeModel(link_margin_db=0.0)
        with pytest.raises(ValueError):
            RainFadeModel().attenuation_db(-1.0)

    @settings(max_examples=50, deadline=None)
    @given(rate=st.floats(min_value=0.0, max_value=500.0))
    def test_property_outputs_bounded(self, rate):
        model = RainFadeModel()
        assert 0.0 <= model.loss_probability(rate) <= 1.0
        assert 0.0 <= model.bandwidth_fraction(rate) <= 1.0


class TestThermalShutdown:
    def test_shutdown_and_hysteresis(self):
        model = ThermalShutdownModel(shutdown_celsius=50.0, resume_celsius=45.0)
        assert not model.update(40.0)
        assert model.update(51.0)
        # Still down at 47 degrees because of the hysteresis band.
        assert model.update(47.0)
        assert not model.update(44.0)
        assert not model.is_shut_down

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalShutdownModel(shutdown_celsius=45.0, resume_celsius=50.0)


class TestMovingGroundStation:
    def _ship(self):
        return MovingGroundStation(
            "research-vessel",
            [
                Waypoint(0.0, 0.0, 170.0),
                Waypoint(3600.0, 5.0, 175.0),
                Waypoint(7200.0, 10.0, -175.0),
            ],
        )

    def test_interpolation_between_waypoints(self):
        ship = self._ship()
        lat, lon, alt = ship.position_geodetic(1800.0)
        assert lat == pytest.approx(2.5)
        assert lon == pytest.approx(172.5)
        assert alt == 0.0

    def test_clamping_outside_track(self):
        ship = self._ship()
        assert ship.position_geodetic(-100.0)[:2] == (0.0, 170.0)
        assert ship.position_geodetic(99999.0)[0] == pytest.approx(10.0)

    def test_antimeridian_crossing(self):
        ship = self._ship()
        lat, lon, _ = ship.position_geodetic(5400.0)
        # Halfway between 175E and 175W is the antimeridian region.
        assert abs(lon) >= 175.0 or lon == pytest.approx(180.0, abs=1.0)
        assert -180.0 <= lon <= 180.0

    def test_position_ecef_magnitude(self):
        ship = self._ship()
        assert np.linalg.norm(ship.position_ecef(1000.0)) == pytest.approx(6378.0, abs=30.0)

    def test_speed_and_snapshot(self):
        ship = self._ship()
        speed = ship.speed_km_h(1000.0)
        # ~780 km in one hour on the first leg is unrealistically fast for a
        # ship but fine as a track; the point is that speed is positive and
        # finite and the snapshot matches the interpolated position.
        assert 0.0 < speed < 2000.0
        snapshot = ship.as_ground_station(1800.0)
        assert snapshot.name == "research-vessel"
        assert snapshot.latitude_deg == pytest.approx(2.5)
        assert ship.track_duration_s() == 7200.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MovingGroundStation("x", [Waypoint(0.0, 0.0, 0.0)])
        with pytest.raises(ValueError):
            MovingGroundStation("x", [Waypoint(10.0, 0.0, 0.0), Waypoint(5.0, 1.0, 1.0)])

    def test_uplink_changes_as_ship_moves(self):
        from repro.orbits import Shell, ShellGeometry
        from repro.topology.uplinks import closest_visible_satellite

        shell = Shell(ShellGeometry(6, 11, 780.0, 90.0, 180.0))
        ship = self._ship()
        positions = shell.positions_eci(0.0)
        # Different ship positions see different nearest satellites (the frame
        # mix-up of ECI vs ECEF does not matter for this qualitative check).
        start = closest_visible_satellite(ship.position_ecef(0.0), positions, 8.2)
        end = closest_visible_satellite(ship.position_ecef(7200.0), positions, 8.2)
        assert start is None or end is None or start[0] != end[0] or math.isclose(start[1], end[1]) is False
