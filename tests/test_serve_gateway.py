"""End-to-end tests of the streaming gateway over real sockets.

Covers the serving-tier contract: shared-bytes fan-out with bit-exact
client reconstruction, slow-client eviction with keyframe resync, scoped
subscriptions (bounding box and ground-station view) that keep the epoch
chain unbroken via skip markers, the shared-secret subscription handshake
and warm-table path queries with per-client cache attribution — plus the
database staying torn-read-free under concurrent info-API readers.
"""

import asyncio
import pickle
import socket
import struct
import threading
import time

import pytest

from repro.core import (
    ComputeParams,
    Configuration,
    ConstellationCalculation,
    ConstellationDatabase,
    GroundStationConfig,
    InfoAPI,
    InfoAPIError,
    NetworkParams,
    ShellConfig,
)
from repro.orbits import GroundStation, ShellGeometry
from repro.dist import wire
from repro.dist.transport import _LENGTH_PREFIX
from repro.serve import EpochSnapshot
from repro.serve.client import SubscriptionClient, SubscriptionError
from repro.serve.gateway import GatewayServer, StreamGateway, _Subscription


def iridium_configuration() -> Configuration:
    return Configuration(
        shells=(
            ShellConfig(
                name="iridium",
                geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                network=NetworkParams(min_elevation_deg=8.2),
                compute=ComputeParams(vcpu_count=1, memory_mib=1024),
            ),
        ),
        ground_stations=(
            GroundStationConfig(station=GroundStation("hawaii", 21.3, -157.9)),
            GroundStationConfig(station=GroundStation("buoy-0", 10.0, -160.0)),
        ),
        update_interval_s=5.0,
    )


@pytest.fixture()
def testbed_core():
    """Calculation + database seeded with epoch 1."""
    config = iridium_configuration()
    calculation = ConstellationCalculation(config)
    database = ConstellationDatabase(keyframe_interval=5)
    state = calculation.state_at(0.0)
    database.set_state(state)
    return config, calculation, database, state


def advance(calculation, database, previous, now_s):
    state, diff = calculation.diff_since(previous, now_s)
    database.set_state(state, diff=diff)
    return state


class TestStreaming:
    def test_fanout_is_bit_exact_and_single_encode(self, testbed_core):
        _, calculation, database, state = testbed_core
        epochs = 8
        with GatewayServer(database) as server:
            host, port = server.address
            clients = [
                SubscriptionClient(host, port, client_id=f"sub-{i}")
                for i in range(3)
            ]
            try:
                for client in clients:
                    assert client.server_epoch == 1
                    client.sync_to_epoch(1)  # the seeded keyframe
                for step in range(1, epochs):
                    state = advance(calculation, database, state, step * 30.0)
                final_epoch = database.epoch
                for client in clients:
                    client.sync_to_epoch(final_epoch)
                    assert client.replica.snapshot().same_bits(
                        EpochSnapshot.from_state(state, final_epoch)
                    )
                    assert client.replica.applied_keyframes == 1
                stats = server.statistics()
            finally:
                for client in clients:
                    client.close()
        # One keyframe + one diff per published epoch, shared by 3 clients.
        assert stats["encode_count"] == epochs
        assert stats["published_epochs"] == epochs - 1
        assert stats["subscriptions"] == 3

    def test_slow_client_is_evicted_and_resyncs_bit_for_bit(self, testbed_core):
        _, calculation, database, state_a = testbed_core
        # Two alternating precomputed states let the publisher flood
        # thousands of cheap epochs until the subscriber's bounded queue
        # provably overflowed.
        state_b, diff_ab = calculation.diff_since(state_a, 30.0)
        state_a2, diff_ba = calculation.diff_since(state_b, 0.0)
        with GatewayServer(database, queue_limit=4) as server:
            host, port = server.address
            client = SubscriptionClient(host, port, client_id="slow")
            try:
                # Consume the seeded keyframe first so the resync keyframe
                # below is provably a *second* applied keyframe (otherwise
                # an eviction may drop the seed before it is ever written).
                client.sync_to_epoch(1)
                assert client.replica.applied_keyframes == 1
                evictions = 0
                for round_index in range(40):
                    for _ in range(50):
                        if database.epoch % 2 == 1:
                            database.set_state(state_b, diff=diff_ab)
                        else:
                            database.set_state(state_a2, diff=diff_ba)
                    evictions = server.statistics()["evictions"]
                    if evictions:
                        break
                assert evictions >= 1, "queue never overflowed; grow the flood"
                final_epoch = database.epoch
                final_state = state_a2 if final_epoch % 2 == 1 else state_b
                client.sync_to_epoch(final_epoch)
                assert client.replica.snapshot().same_bits(
                    EpochSnapshot.from_state(final_state, final_epoch)
                )
                # The resync keyframe(s) actually reached the replica.
                assert client.replica.applied_keyframes >= 2
            finally:
                client.close()


class TestScopedSubscriptions:
    def test_bbox_scope_receives_skip_markers_and_stays_chained(self, testbed_core):
        _, calculation, database, state = testbed_core
        scope = {
            "kind": "bbox",
            "lat_min": -2.0,
            "lat_max": 2.0,
            "lon_min": 0.0,
            "lon_max": 4.0,
        }
        with GatewayServer(database) as server:
            host, port = server.address
            with SubscriptionClient(host, port, client_id="boxed", scope=scope) as client:
                client.sync_to_epoch(1)
                for step in range(1, 7):
                    state = advance(calculation, database, state, step * 30.0)
                updates = client.sync_to_epoch(database.epoch)
                skip_count = sum(
                    1 for u in updates if u.decoded()[0].get("skip")
                )
                stats = server.statistics()["clients"]["boxed"]
                assert stats["skipped"] == skip_count
                # Every epoch reached the client, in-scope or not.
                assert client.replica.epoch == database.epoch
                assert client.replica.time_s == state.time_s

    def test_gst_scope_delivers_epochs_touching_the_station(self, testbed_core):
        _, calculation, database, state = testbed_core
        with GatewayServer(database) as server:
            host, port = server.address
            scope = {"kind": "gst", "name": "hawaii"}
            with SubscriptionClient(host, port, client_id="gst", scope=scope) as client:
                client.sync_to_epoch(1)
                for step in range(1, 7):
                    state = advance(calculation, database, state, step * 30.0)
                updates = client.sync_to_epoch(database.epoch)
                assert client.replica.epoch == database.epoch
                # Full diffs and skip markers partition the epoch stream.
                full = [u for u in updates if not u.decoded()[0].get("skip")]
                stats = server.statistics()["clients"]["gst"]
                assert stats["skipped"] == len(updates) - len(full)


class TestAuth:
    def test_matching_secret_subscribes(self, testbed_core):
        _, _, database, _ = testbed_core
        with GatewayServer(database, auth_secret="orbital") as server:
            host, port = server.address
            with SubscriptionClient(
                host, port, client_id="trusted", auth_secret="orbital"
            ) as client:
                assert client.client_id == "trusted"
                client.sync_to_epoch(1)
            assert server.statistics()["rejected_subscriptions"] == 0

    def test_wrong_secret_is_rejected_before_any_state_flows(self, testbed_core):
        _, _, database, _ = testbed_core
        with GatewayServer(database, auth_secret="orbital") as server:
            host, port = server.address
            with pytest.raises(SubscriptionError):
                SubscriptionClient(
                    host, port, client_id="mallory", auth_secret="wrong", timeout_s=5.0
                )
            stats = server.statistics()
            assert stats["rejected_subscriptions"] == 1
            assert stats["subscriptions"] == 0


class TestDuplicateClientIds:
    def test_second_subscriber_with_same_id_is_rejected(self, testbed_core):
        _, calculation, database, state = testbed_core
        with GatewayServer(database) as server:
            host, port = server.address
            with SubscriptionClient(host, port, client_id="twin") as first:
                first.sync_to_epoch(1)
                with pytest.raises(SubscriptionError, match="already subscribed"):
                    SubscriptionClient(host, port, client_id="twin", timeout_s=5.0)
                stats = server.statistics()
                assert stats["rejected_subscriptions"] == 1
                assert stats["subscriptions"] == 1
                # The rejected twin must not have torn down the original
                # stream: the first client keeps receiving epochs.
                state = advance(calculation, database, state, 30.0)
                first.sync_to_epoch(database.epoch)
                assert first.replica.snapshot().same_bits(
                    EpochSnapshot.from_state(state, database.epoch)
                )

    def test_id_is_reusable_after_the_first_client_disconnects(self, testbed_core):
        _, _, database, _ = testbed_core
        with GatewayServer(database) as server:
            host, port = server.address
            with SubscriptionClient(host, port, client_id="twin") as first:
                first.sync_to_epoch(1)
            deadline = time.monotonic() + 5.0
            while (
                server.statistics()["subscriptions"]
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            with SubscriptionClient(host, port, client_id="twin") as second:
                second.sync_to_epoch(1)
                assert second.client_id == "twin"


_CANARY_CALLS: list[str] = []


def _trip_canary(tag: str) -> None:
    _CANARY_CALLS.append(tag)


class _Canary:
    def __reduce__(self):
        return (_trip_canary, ("pwned",))


class TestPreAuthSafety:
    def test_pickled_subscribe_frame_is_refused_without_deserialising(
        self, testbed_core
    ):
        """The first frame of an unauthenticated dialer must never reach
        ``pickle.loads`` — a crafted SUBSCRIBE gets the connection dropped,
        not code execution (the gateway runs in this process, so a pickle
        canary firing would be observable here)."""
        _, _, database, _ = testbed_core
        del _CANARY_CALLS[:]
        blob = pickle.dumps(
            {"meta": {"client": _Canary()}, "arrays": []}, protocol=5
        )
        frame = (
            struct.pack(
                "<4sHBBII",
                wire.WIRE_MAGIC,
                wire.WIRE_VERSION,
                int(wire.FrameKind.SUBSCRIBE),
                wire.FLAG_PICKLED,
                len(blob),
                0,
            )
            + blob
        )
        with GatewayServer(database) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=5.0) as sock:
                sock.sendall(_LENGTH_PREFIX.pack(len(frame)) + frame)
                sock.settimeout(5.0)
                assert sock.recv(4096) == b""  # dropped, no handshake reply
            assert server.statistics()["subscriptions"] == 0
        assert _CANARY_CALLS == []


class TestEvictionPreservesReplies:
    def test_pending_query_replies_survive_a_flush(self, testbed_core):
        _, _, database, _ = testbed_core
        gateway = StreamGateway(database, queue_limit=8)
        subscription = _Subscription(client_id="unit", queue=asyncio.Queue(8))
        epoch_frame = b"epoch-bytes"
        reply_a, reply_b = b"reply-a", b"reply-b"
        for item in (
            (epoch_frame, False),
            (reply_a, True),
            (epoch_frame, False),
            (reply_b, True),
        ):
            subscription.queue.put_nowait(item)
        assert gateway._evict(subscription) is True
        items = []
        while not subscription.queue.empty():
            items.append(subscription.queue.get_nowait())
        # Keyframe resync first, then the preserved replies in order — the
        # epoch backlog is gone, the blocked queries still get answered.
        resync, *rest = items
        assert resync[1] is False
        kind, _meta, _arrays = wire.decode_frame(resync[0][_LENGTH_PREFIX.size :])
        assert kind is wire.FrameKind.KEYFRAME
        assert rest == [(reply_a, True), (reply_b, True)]
        assert subscription.evictions == 1
        assert subscription.last_epoch == database.epoch

    def test_evict_requeues_the_shutdown_sentinel_last(self, testbed_core):
        _, _, database, _ = testbed_core
        gateway = StreamGateway(database, queue_limit=8)
        subscription = _Subscription(client_id="unit", queue=asyncio.Queue(8))
        subscription.queue.put_nowait((b"epoch-bytes", False))
        subscription.queue.put_nowait(None)
        # A drained sentinel reports "closing" so the caller's loop exits,
        # and is re-queued behind the resync so the writer still sees it.
        assert gateway._evict(subscription) is False
        items = []
        while not subscription.queue.empty():
            items.append(subscription.queue.get_nowait())
        assert items[-1] is None


class TestQueries:
    def test_path_queries_answered_from_warm_tables(self, testbed_core):
        _, calculation, database, state = testbed_core
        with GatewayServer(database) as server:
            host, port = server.address
            with SubscriptionClient(host, port, client_id="asker") as client:
                result = client.query("hawaii", "buoy-0")
                assert result["client"] == "asker"
                assert result["reachable"] is True
                assert result["delay_ms"] > 0
                assert result["rtt_ms"] == pytest.approx(2 * result["delay_ms"])
                # Satellite addressing, DNS form included.
                by_sat = client.query("hawaii", "0.0.celestial")
                assert by_sat["destination"] == "0.0.celestial"
                bogus = client.query("hawaii", "atlantis")
                assert "error" in bogus
                stats = server.statistics()["clients"]["asker"]
                assert stats["queries"] == 3

    def test_queries_interleave_with_stream_updates(self, testbed_core):
        _, calculation, database, state = testbed_core
        with GatewayServer(database) as server:
            host, port = server.address
            with SubscriptionClient(host, port, client_id="mixed") as client:
                for step in range(1, 4):
                    state = advance(calculation, database, state, step * 30.0)
                result = client.query("hawaii", "buoy-0")
                assert result["reachable"] is True
                client.sync_to_epoch(database.epoch)
                assert client.replica.snapshot().same_bits(
                    EpochSnapshot.from_state(state, database.epoch)
                )


class TestConcurrentInfoReaders:
    def test_no_torn_diff_reads_while_epochs_advance(self, testbed_core):
        config, calculation, database, state = testbed_core
        api = InfoAPI(database, calculation)
        stop = threading.Event()
        failures: list[str] = []

        def reader():
            while not stop.is_set():
                epochs = database.keyframe_epochs()
                if epochs != sorted(epochs):
                    failures.append(f"unsorted keyframes {epochs}")
                    return
                try:
                    history = api.get(f"/diffs/{min(epochs)}")
                except InfoAPIError as error:
                    # The keyframe we picked can be pruned between the two
                    # calls; the API answers with the resync protocol, not
                    # a torn read.  Retry from a fresh keyframe.
                    if "resynchronise" in str(error):
                        continue
                    failures.append(str(error))
                    return
                records = history["diffs"]
                got = [r["epoch"] for r in records]
                want = list(
                    range(history["since_epoch"] + 1, history["epoch"] + 1)
                )
                if got != want:
                    failures.append(f"torn history: {got} != {want}")
                    return
                for record in records:
                    if record["summary"]["links_added"] != len(record["links_added"]):
                        failures.append("record inconsistent with its summary")
                        return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for step in range(1, 40):
                state = advance(calculation, database, state, step * 15.0)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert not failures, failures[0]
