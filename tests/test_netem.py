"""Unit and property tests for the netem/tbf/link network-emulation models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netem import (
    EmulatedLink,
    NetemQdisc,
    NetemRule,
    TokenBucketFilter,
    UNREACHABLE_DELAY_MS,
    WireGuardOverlay,
)


class TestNetemRule:
    def test_defaults_are_passthrough(self):
        rule = NetemRule()
        assert rule.delay_ms == 0.0
        assert not rule.blocks_traffic

    def test_validation(self):
        with pytest.raises(ValueError):
            NetemRule(delay_ms=-1.0)
        with pytest.raises(ValueError):
            NetemRule(loss_probability=1.5)
        with pytest.raises(ValueError):
            NetemRule(rate_kbps=0.0)

    def test_with_delay_copies(self):
        rule = NetemRule(delay_ms=5.0, loss_probability=0.1)
        updated = rule.with_delay(9.0)
        assert updated.delay_ms == 9.0
        assert updated.loss_probability == 0.1
        assert rule.delay_ms == 5.0

    def test_full_loss_blocks(self):
        assert NetemRule(loss_probability=1.0).blocks_traffic


class TestNetemQdisc:
    def test_fixed_delay(self):
        qdisc = NetemQdisc(NetemRule(delay_ms=16.0))
        deliveries = qdisc.transmit(1000, now_s=2.0)
        assert len(deliveries) == 1
        assert deliveries[0].arrival_time_s == pytest.approx(2.016)
        assert not deliveries[0].corrupted

    def test_loss_drops_packets(self):
        qdisc = NetemQdisc(NetemRule(loss_probability=1.0))
        assert qdisc.transmit(100, 0.0) == []

    def test_statistical_loss_rate(self):
        qdisc = NetemQdisc(
            NetemRule(loss_probability=0.3), rng=np.random.default_rng(42)
        )
        delivered = sum(bool(qdisc.transmit(100, 0.0)) for _ in range(4000))
        assert delivered / 4000 == pytest.approx(0.7, abs=0.03)

    def test_duplication(self):
        qdisc = NetemQdisc(
            NetemRule(delay_ms=1.0, duplicate_probability=1.0),
            rng=np.random.default_rng(1),
        )
        deliveries = qdisc.transmit(100, 0.0)
        assert len(deliveries) == 2
        assert any(d.duplicate for d in deliveries)

    def test_corruption_flag(self):
        qdisc = NetemQdisc(
            NetemRule(delay_ms=1.0, corrupt_probability=1.0),
            rng=np.random.default_rng(1),
        )
        deliveries = qdisc.transmit(100, 0.0)
        assert deliveries[0].corrupted

    def test_reordering_skips_delay(self):
        qdisc = NetemQdisc(
            NetemRule(delay_ms=50.0, reorder_probability=1.0),
            rng=np.random.default_rng(1),
        )
        deliveries = qdisc.transmit(100, now_s=1.0)
        assert deliveries[0].reordered
        assert deliveries[0].arrival_time_s == pytest.approx(1.0)

    def test_normal_jitter_spreads_delays(self):
        qdisc = NetemQdisc(
            NetemRule(delay_ms=20.0, jitter_ms=4.0, distribution="normal"),
            rng=np.random.default_rng(7),
        )
        arrivals = [qdisc.transmit(100, 0.0)[0].arrival_time_s * 1000.0 for _ in range(500)]
        assert np.std(arrivals) == pytest.approx(4.0, abs=1.0)
        assert np.mean(arrivals) == pytest.approx(20.0, abs=0.6)
        assert min(arrivals) >= 0.0

    def test_uniform_jitter_bounded(self):
        qdisc = NetemQdisc(
            NetemRule(delay_ms=20.0, jitter_ms=5.0, distribution="uniform"),
            rng=np.random.default_rng(7),
        )
        arrivals = [qdisc.transmit(100, 0.0)[0].arrival_time_s * 1000.0 for _ in range(300)]
        assert min(arrivals) >= 15.0 - 1e-9
        assert max(arrivals) <= 25.0 + 1e-9

    def test_rate_limits_serialisation(self):
        # 1000 bytes at 8 kb/s takes one second per packet.
        qdisc = NetemQdisc(NetemRule(delay_ms=0.0, rate_kbps=8.0))
        first = qdisc.transmit(1000, 0.0)[0].arrival_time_s
        second = qdisc.transmit(1000, 0.0)[0].arrival_time_s
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    @settings(max_examples=50, deadline=None)
    @given(
        delay=st.floats(min_value=0.0, max_value=500.0),
        size=st.integers(min_value=1, max_value=65536),
        now=st.floats(min_value=0.0, max_value=1e5),
    )
    def test_property_arrival_never_before_send(self, delay, size, now):
        qdisc = NetemQdisc(NetemRule(delay_ms=delay, jitter_ms=delay / 10.0,
                                     distribution="normal"))
        for delivery in qdisc.transmit(size, now):
            assert delivery.arrival_time_s >= now - 1e-9


class TestTokenBucketFilter:
    def test_burst_passes_immediately(self):
        shaper = TokenBucketFilter(rate_kbps=100.0, burst_bytes=10_000)
        assert shaper.enqueue(5_000, 0.0) == 0.0

    def test_sustained_rate_paces_packets(self):
        shaper = TokenBucketFilter(rate_kbps=80.0, burst_bytes=1_000)
        # 80 kb/s == 10,000 bytes/s. After the burst, 10,000-byte packets
        # should depart one second apart.
        first = shaper.enqueue(1_000, 0.0)
        second = shaper.enqueue(10_000, 0.0)
        third = shaper.enqueue(10_000, 0.0)
        assert first == 0.0
        assert second == pytest.approx(1.0, rel=0.01)
        assert third == pytest.approx(2.0, rel=0.01)

    def test_queue_limit_drops(self):
        shaper = TokenBucketFilter(rate_kbps=8.0, burst_bytes=100, queue_limit_bytes=1_000)
        shaper.enqueue(100, 0.0)
        assert shaper.enqueue(900, 0.0) is not None
        assert shaper.enqueue(500, 0.0) is None

    def test_tokens_refill_over_time(self):
        shaper = TokenBucketFilter(rate_kbps=80.0, burst_bytes=10_000)
        shaper.enqueue(10_000, 0.0)
        # One second later the bucket has refilled 10,000 bytes.
        assert shaper.enqueue(9_000, 1.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucketFilter(rate_kbps=0.0)
        shaper = TokenBucketFilter(100.0)
        with pytest.raises(ValueError):
            shaper.enqueue(0, 0.0)
        with pytest.raises(ValueError):
            shaper.set_rate(-1.0)

    def test_backlog_reporting(self):
        shaper = TokenBucketFilter(rate_kbps=8.0, burst_bytes=100)
        shaper.enqueue(100, 0.0)
        shaper.enqueue(1_000, 0.0)
        assert shaper.backlog_bytes > 0.0


class TestEmulatedLink:
    def test_delay_and_counting(self):
        link = EmulatedLink(NetemRule(delay_ms=10.0))
        deliveries = link.transmit(500, 1.0)
        assert deliveries[0].arrival_time_s == pytest.approx(1.010)
        assert link.packets_sent == 1
        assert link.bytes_sent == 500
        assert link.packets_dropped == 0

    def test_block_and_unblock(self):
        link = EmulatedLink(NetemRule(delay_ms=10.0))
        link.block()
        assert link.transmit(100, 0.0) == []
        assert link.packets_dropped == 1
        link.unblock()
        assert len(link.transmit(100, 0.0)) == 1

    def test_update_to_unreachable_blocks(self):
        link = EmulatedLink(NetemRule(delay_ms=10.0))
        link.update(UNREACHABLE_DELAY_MS)
        assert link.state.blocked
        assert link.transmit(100, 0.0) == []
        link.update(5.0)
        assert not link.state.blocked
        assert link.transmit(100, 0.0)[0].arrival_time_s == pytest.approx(0.005)

    def test_bandwidth_added_at_update(self):
        link = EmulatedLink(NetemRule(delay_ms=0.0))
        link.update(0.0, bandwidth_kbps=8.0)
        assert link.state.bandwidth_kbps == 8.0
        # A packet larger than the token-bucket burst must wait for pacing.
        first = link.transmit(100_000, 0.0)
        assert first[0].arrival_time_s > 1.0

    def test_unreachable_rule_initialises_blocked(self):
        link = EmulatedLink(NetemRule(loss_probability=1.0))
        assert link.state.blocked


class TestWireGuardOverlay:
    def test_same_host_zero_latency(self):
        overlay = WireGuardOverlay(3, inter_host_latency_ms=0.2)
        assert overlay.latency_ms(1, 1) == 0.0
        assert overlay.latency_ms(0, 2) == 0.2

    def test_compensated_delay(self):
        overlay = WireGuardOverlay(2, inter_host_latency_ms=0.2)
        assert overlay.compensated_delay_ms(16.0, 0, 1) == pytest.approx(15.8)
        assert overlay.compensated_delay_ms(16.0, 0, 0) == pytest.approx(16.0)
        assert overlay.compensated_delay_ms(0.1, 0, 1) == 0.0
        assert not overlay.can_emulate(0.1, 0, 1)
        assert overlay.can_emulate(1.0, 0, 1)

    def test_custom_pair_latency(self):
        overlay = WireGuardOverlay(3)
        overlay.set_latency(0, 2, 1.5)
        assert overlay.latency_ms(2, 0) == 1.5
        assert overlay.latency_ms(0, 1) == 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            WireGuardOverlay(0)
        overlay = WireGuardOverlay(2)
        with pytest.raises(IndexError):
            overlay.latency_ms(0, 5)
        with pytest.raises(ValueError):
            overlay.set_latency(0, 1, -1.0)
