"""Unit tests for constellation shells, ground stations and visibility rules."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orbits import (
    GroundStation,
    Satellite,
    Shell,
    ShellGeometry,
    constants,
    elevation_angle_deg,
    geodetic_to_ecef,
    ground_station_visible,
    isl_line_of_sight,
    slant_range_km,
)
from repro.orbits.visibility import max_isl_length_km


def _small_shell(**overrides):
    parameters = dict(
        planes=6,
        satellites_per_plane=11,
        altitude_km=780.0,
        inclination_deg=86.4,
        arc_of_ascending_nodes_deg=180.0,
    )
    parameters.update(overrides)
    return ShellGeometry(**parameters)


class TestShellGeometry:
    def test_total_satellites(self):
        assert _small_shell().total_satellites == 66

    def test_validation(self):
        with pytest.raises(ValueError):
            _small_shell(planes=0)
        with pytest.raises(ValueError):
            _small_shell(altitude_km=-5.0)
        with pytest.raises(ValueError):
            _small_shell(arc_of_ascending_nodes_deg=0.0)

    def test_star_vs_delta(self):
        assert _small_shell().is_polar_star
        assert not _small_shell(arc_of_ascending_nodes_deg=360.0).is_polar_star

    def test_period_of_550km_shell(self):
        geometry = ShellGeometry(72, 22, 550.0, 53.0)
        assert geometry.period_s / 60.0 == pytest.approx(95.6, abs=0.5)


class TestShell:
    def test_satellite_identities(self):
        shell = Shell(_small_shell(), shell_index=1)
        assert len(shell) == 66
        first = shell.satellites[0]
        assert first == Satellite(shell_index=1, identifier=0, plane=0, index_in_plane=0)
        last = shell.satellites[-1]
        assert last.identifier == 65
        assert last.plane == 5
        assert last.index_in_plane == 10
        assert first.name == "0.1.celestial"

    def test_positions_shape_and_altitude(self):
        shell = Shell(_small_shell())
        positions = shell.positions_eci(0.0)
        assert positions.shape == (66, 3)
        radii = np.linalg.norm(positions, axis=1)
        np.testing.assert_allclose(radii, constants.EARTH_RADIUS_KM + 780.0, rtol=1e-6)

    def test_satellites_in_same_plane_evenly_spaced(self):
        shell = Shell(_small_shell())
        positions = shell.positions_eci(0.0)
        plane0 = positions[:11]
        # Angle between consecutive satellites should be 360/11 degrees.
        for i in range(10):
            a, b = plane0[i], plane0[i + 1]
            cos_angle = np.dot(a, b) / (np.linalg.norm(a) * np.linalg.norm(b))
            angle = math.degrees(math.acos(np.clip(cos_angle, -1, 1)))
            assert angle == pytest.approx(360.0 / 11.0, abs=0.01)

    def test_star_shell_spreads_nodes_over_half_circle(self):
        shell = Shell(_small_shell())
        raan = shell._raan_deg
        assert raan.max() < 180.0
        delta_shell = Shell(_small_shell(arc_of_ascending_nodes_deg=360.0))
        assert delta_shell._raan_deg.max() > 270.0

    def test_positions_change_over_time(self):
        shell = Shell(_small_shell())
        p0 = shell.positions_eci(0.0)
        p1 = shell.positions_eci(60.0)
        movement = np.linalg.norm(p1 - p0, axis=1)
        # ~7.4 km/s orbital velocity -> about 440 km per minute.
        assert np.all(movement > 300.0)
        assert np.all(movement < 600.0)

    def test_kepler_and_vectorised_propagation_agree(self):
        shell = Shell(_small_shell())
        satellite = shell.satellites[17]
        scalar = shell.kepler_propagator_for(satellite)
        for t in (0.0, 120.0, 1200.0):
            vector_position = shell.positions_eci(t)[satellite.identifier]
            scalar_position = scalar.position_eci(t)
            assert np.linalg.norm(vector_position - scalar_position) < 1.0

    def test_sgp4_shell_close_to_kepler_shell(self):
        geometry = ShellGeometry(3, 4, 550.0, 53.0)
        kepler_shell = Shell(geometry, propagator="kepler_j2")
        sgp4_shell = Shell(geometry, propagator="sgp4")
        difference = np.linalg.norm(
            kepler_shell.positions_eci(600.0) - sgp4_shell.positions_eci(600.0), axis=1
        )
        assert np.all(difference < 60.0)

    def test_unknown_propagator_rejected(self):
        with pytest.raises(ValueError):
            Shell(_small_shell(), propagator="nonsense")

    def test_velocity_exceeds_27000_kmh(self):
        # Paper §1: LEO satellites move at speeds in excess of 27,000 km/h;
        # this holds for the dense 550 km Starlink shell.
        shell = Shell(ShellGeometry(72, 22, 550.0, 53.0))
        assert shell.velocity_km_s() * 3600.0 > 27000.0


class TestGroundStation:
    def test_position_on_equator(self):
        station = GroundStation("null-island", 0.0, 0.0)
        position = station.position_ecef
        assert position[0] == pytest.approx(6378.137, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            GroundStation("bad", 95.0, 0.0)
        with pytest.raises(ValueError):
            GroundStation("bad", 0.0, -200.0)

    def test_dns_name(self):
        station = GroundStation("Accra, Ghana", 5.6037, -0.1870)
        assert station.dns_name == "gst.accra ghana.celestial".replace(" ", "-")

    def test_eci_position_rotates_with_gmst(self):
        station = GroundStation("greenwich", 51.477, 0.0)
        eci_0 = station.position_eci(0.0)
        eci_quarter = station.position_eci(math.pi / 2.0)
        assert np.linalg.norm(eci_0) == pytest.approx(np.linalg.norm(eci_quarter))
        assert not np.allclose(eci_0, eci_quarter)


class TestVisibility:
    def test_satellite_at_zenith_has_90_deg_elevation(self):
        ground = geodetic_to_ecef(0.0, 0.0, 0.0)
        satellite = ground * (1.0 + 550.0 / np.linalg.norm(ground))
        assert elevation_angle_deg(ground, satellite) == pytest.approx(90.0, abs=1e-6)

    def test_satellite_below_horizon_negative_elevation(self):
        ground = geodetic_to_ecef(0.0, 0.0, 0.0)
        satellite = geodetic_to_ecef(0.0, 180.0, 550.0)
        assert elevation_angle_deg(ground, satellite) < 0.0

    def test_min_elevation_threshold(self):
        ground = geodetic_to_ecef(0.0, 0.0, 0.0)
        overhead = ground * 1.1
        assert ground_station_visible(ground, overhead, min_elevation_deg=40.0)
        low = geodetic_to_ecef(0.0, 60.0, 550.0)
        assert not ground_station_visible(ground, low, min_elevation_deg=40.0)

    def test_elevation_vectorised(self):
        ground = geodetic_to_ecef(0.0, 0.0, 0.0)
        satellites = np.stack([ground * 1.1, geodetic_to_ecef(0.0, 90.0, 550.0)])
        angles = elevation_angle_deg(ground, satellites)
        assert angles.shape == (2,)
        assert angles[0] > angles[1]

    def test_isl_between_adjacent_satellites_clear(self):
        a = np.array([6928.0, 0.0, 0.0])
        b = np.array([6928.0 * math.cos(0.3), 6928.0 * math.sin(0.3), 0.0])
        assert bool(isl_line_of_sight(a, b))

    def test_isl_between_antipodal_satellites_blocked(self):
        a = np.array([6928.0, 0.0, 0.0])
        b = np.array([-6928.0, 0.0, 0.0])
        assert not bool(isl_line_of_sight(a, b))

    def test_max_isl_length_consistent_with_line_of_sight(self):
        length = max_isl_length_km(550.0, 550.0)
        assert 4500.0 < length < 5600.0
        # Two satellites exactly at that separation are right at the margin;
        # slightly closer is visible, slightly farther is blocked.
        radius = constants.EARTH_RADIUS_KM + 550.0
        half_angle = math.asin((length * 0.99) / (2.0 * radius))
        a = np.array([radius * math.cos(half_angle), radius * math.sin(half_angle), 0.0])
        b = np.array([radius * math.cos(half_angle), -radius * math.sin(half_angle), 0.0])
        assert bool(isl_line_of_sight(a, b))

    def test_slant_range(self):
        a = np.array([7000.0, 0.0, 0.0])
        b = np.array([7000.0, 3000.0, 4000.0])
        assert slant_range_km(a, b) == pytest.approx(5000.0)

    @settings(max_examples=50, deadline=None)
    @given(
        latitude=st.floats(min_value=-80.0, max_value=80.0),
        longitude=st.floats(min_value=-180.0, max_value=180.0),
    )
    def test_property_elevation_bounded(self, latitude, longitude):
        ground = geodetic_to_ecef(0.0, 0.0, 0.0)
        satellite = geodetic_to_ecef(latitude, longitude, 550.0)
        angle = elevation_angle_deg(ground, satellite)
        assert -90.0 <= angle <= 90.0
