"""Unit tests for simulated clocks and seeded random streams."""

from repro.sim import DriftingClock, PTPClock, RandomStreams, Simulation


def _advance(sim, seconds):
    def proc():
        yield sim.timeout(seconds)

    sim.process(proc())
    sim.run()


def test_ptp_clock_matches_sim_time():
    sim = Simulation()
    clock = PTPClock(sim)
    _advance(sim, 123.0)
    assert clock.now() == 123.0


def test_drifting_clock_offset_and_drift():
    sim = Simulation()
    clock = DriftingClock(sim, offset=1.0, drift_ppm=1000.0)
    _advance(sim, 1000.0)
    assert clock.now() == 1000.0 * 1.001 + 1.0


def test_clock_comparison_between_two_drifting_clocks():
    sim = Simulation()
    a = DriftingClock(sim, drift_ppm=50.0)
    b = DriftingClock(sim, drift_ppm=-50.0)
    _advance(sim, 100.0)
    assert a.now() > b.now()
    assert abs(a.now() - b.now()) < 0.1


def test_random_streams_reproducible():
    a = RandomStreams(seed=7)
    b = RandomStreams(seed=7)
    assert a.stream("netem").normal(size=5).tolist() == b.stream("netem").normal(size=5).tolist()


def test_random_streams_independent_by_name():
    streams = RandomStreams(seed=7)
    x = streams.stream("one").normal(size=5)
    y = streams.stream("two").normal(size=5)
    assert x.tolist() != y.tolist()


def test_random_streams_differ_across_seeds():
    a = RandomStreams(seed=1).stream("x").normal(size=5)
    b = RandomStreams(seed=2).stream("x").normal(size=5)
    assert a.tolist() != b.tolist()


def test_random_streams_spawn_is_deterministic():
    parent_a = RandomStreams(seed=5)
    parent_b = RandomStreams(seed=5)
    child_a = parent_a.spawn("run-1").stream("x").normal(size=3)
    child_b = parent_b.spawn("run-1").stream("x").normal(size=3)
    assert child_a.tolist() == child_b.tolist()
    other = parent_a.spawn("run-2").stream("x").normal(size=3)
    assert child_a.tolist() != other.tolist()


def test_stream_is_cached():
    streams = RandomStreams(seed=3)
    assert streams.stream("a") is streams.stream("a")
