"""Unit tests for the resource validator and the constellation calculation."""

import numpy as np
import pytest

from repro.core import (
    BoundingBox,
    ComputeParams,
    Configuration,
    ConstellationCalculation,
    GroundStationConfig,
    HostConfig,
    MachineId,
    NetworkParams,
    ShellConfig,
    estimate_resources,
    validate_configuration,
)
from repro.orbits import GroundStation, ShellGeometry
from repro.topology import LinkType


def _iridium_config(**overrides):
    parameters = dict(
        shells=(
            ShellConfig(
                name="iridium",
                geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                network=NetworkParams(
                    isl_bandwidth_kbps=100_000.0,
                    uplink_bandwidth_kbps=88.0,
                    min_elevation_deg=8.2,
                ),
                compute=ComputeParams(vcpu_count=1, memory_mib=1024),
            ),
        ),
        ground_stations=(
            GroundStationConfig(station=GroundStation("hawaii", 21.3, -157.9),
                                compute=ComputeParams(vcpu_count=8, memory_mib=8192),
                                uplink_bandwidth_kbps=100_000.0),
            GroundStationConfig(station=GroundStation("buoy-0", 10.0, -160.0)),
            GroundStationConfig(station=GroundStation("buoy-1", -5.0, 170.0)),
        ),
        hosts=HostConfig(count=4, cpu_cores=32, memory_mib=32 * 1024),
        update_interval_s=5.0,
        duration_s=900.0,
    )
    parameters.update(overrides)
    return Configuration(**parameters)


class TestValidator:
    def test_no_bounding_box_counts_all_satellites(self):
        estimate = estimate_resources(_iridium_config())
        assert estimate.satellites_in_box == 66
        # 66 satellites with 1 vCPU, the 8-core central station and two buoys
        # with the default 2-core allocation.
        assert estimate.required_cores == 66 * 1 + 8 + 2 + 2
        assert estimate.ground_station_count == 3

    def test_bounding_box_reduces_estimate(self):
        config = _iridium_config(bounding_box=BoundingBox(-20.0, 20.0, -180.0, -140.0))
        estimate = estimate_resources(config)
        assert 0 < estimate.satellites_in_box < 66

    def test_memory_warning(self):
        config = _iridium_config(hosts=HostConfig(count=1, cpu_cores=4, memory_mib=1024))
        estimate = estimate_resources(config)
        assert not estimate.memory_sufficient
        assert any("memory" in warning for warning in estimate.warnings)

    def test_cpu_overprovisioning_warning(self):
        config = _iridium_config(hosts=HostConfig(count=1, cpu_cores=16, memory_mib=256 * 1024))
        estimate = estimate_resources(config)
        assert not estimate.cores_sufficient
        assert estimate.overprovisioning_factor > 1.0
        assert any("over-provisioning" in warning for warning in estimate.warnings)

    def test_validate_configuration_flags_unreachable_ground_station(self):
        config = _iridium_config(
            shells=(
                ShellConfig(
                    name="equatorial",
                    geometry=ShellGeometry(4, 10, 550.0, 10.0),
                ),
            ),
            ground_stations=(
                GroundStationConfig(station=GroundStation("svalbard", 78.0, 15.0)),
            ),
        )
        warnings = validate_configuration(config)
        assert any("beyond the coverage" in warning for warning in warnings)

    def test_validate_configuration_flags_long_update_interval(self):
        warnings = validate_configuration(_iridium_config(update_interval_s=30.0))
        assert any("update interval" in warning for warning in warnings)

    def test_validate_configuration_clean(self):
        warnings = validate_configuration(_iridium_config())
        assert warnings == []


class TestConstellationCalculation:
    def test_machine_identities(self):
        calc = ConstellationCalculation(_iridium_config())
        satellite = calc.satellite(0, 10)
        assert satellite.name == "10.0.celestial"
        assert satellite.is_satellite
        ground = calc.ground_station("hawaii")
        assert ground.is_ground_station
        assert ground.shell == MachineId.GROUND_SHELL
        machines = list(calc.machines())
        assert len(machines) == 66 + 3
        with pytest.raises(IndexError):
            calc.satellite(0, 99)
        with pytest.raises(IndexError):
            calc.satellite(5, 0)
        with pytest.raises(ValueError):
            calc.ground_station("unknown")

    def test_state_graph_composition(self):
        calc = ConstellationCalculation(_iridium_config())
        state = calc.state_at(0.0)
        isl_links = [l for l in state.graph.links if l.link_type is LinkType.ISL]
        uplink_links = [l for l in state.graph.links if l.link_type is LinkType.UPLINK]
        # Walker-star +GRID: 2N - per_plane = 121 ISLs at most (minus any
        # atmosphere-blocked seam links near the poles).
        assert 100 <= len(isl_links) <= 121
        assert len(uplink_links) >= 3
        assert state.graph.total_links() == len(isl_links) + len(uplink_links)

    def test_delays_and_reachability(self):
        calc = ConstellationCalculation(_iridium_config())
        state = calc.state_at(0.0)
        hawaii = calc.ground_station("hawaii")
        buoy = calc.ground_station("buoy-0")
        delay = state.delay_ms(hawaii, buoy)
        assert 5.0 < delay < 200.0
        assert state.rtt_ms(hawaii, buoy) == pytest.approx(2 * delay)
        assert state.reachable(hawaii, buoy)
        assert state.delay_ms(hawaii, hawaii) == 0.0

    def test_delay_between_ground_station_and_satellite(self):
        calc = ConstellationCalculation(_iridium_config())
        state = calc.state_at(0.0)
        hawaii = calc.ground_station("hawaii")
        uplink = state.uplinks_of("hawaii")[0]
        satellite = calc.satellite(uplink.shell, uplink.satellite)
        delay = state.delay_ms(hawaii, satellite)
        assert delay == pytest.approx(uplink.delay_ms, rel=1e-6)
        # Querying in the satellite->ground direction uses the symmetric path.
        assert state.delay_ms(satellite, hawaii) == pytest.approx(delay)

    def test_uplinks_sorted_by_distance(self):
        calc = ConstellationCalculation(_iridium_config())
        state = calc.state_at(0.0)
        uplinks = state.uplinks_of("hawaii")
        distances = [u.distance_km for u in uplinks]
        assert distances == sorted(distances)

    def test_bandwidth_bottleneck_is_sensor_uplink(self):
        calc = ConstellationCalculation(_iridium_config())
        state = calc.state_at(0.0)
        hawaii = calc.ground_station("hawaii")
        buoy = calc.ground_station("buoy-0")
        # The buoy uplink is 88 kb/s which is the bottleneck of the path.
        assert state.bandwidth_kbps(buoy, hawaii) == pytest.approx(88.0)

    def test_bounding_box_activity(self):
        config = _iridium_config(bounding_box=BoundingBox(-20.0, 20.0, -180.0, -140.0))
        calc = ConstellationCalculation(config)
        state = calc.state_at(0.0)
        assert 0 < state.active_count() < 66
        hawaii = calc.ground_station("hawaii")
        assert state.is_active(hawaii)
        inactive = [
            calc.satellite(0, index)
            for index in np.nonzero(~state.active_satellites[0])[0][:1]
        ]
        assert not state.is_active(inactive[0])

    def test_no_bounding_box_all_active(self):
        calc = ConstellationCalculation(_iridium_config())
        assert calc.state_at(0.0).active_count() == 66

    def test_state_changes_over_time(self):
        calc = ConstellationCalculation(_iridium_config())
        hawaii = calc.ground_station("hawaii")
        buoy = calc.ground_station("buoy-1")
        delays = {t: calc.state_at(t).delay_ms(hawaii, buoy) for t in (0.0, 60.0, 120.0)}
        assert len(set(round(d, 3) for d in delays.values())) > 1

    def test_satellite_position_geodetic(self):
        calc = ConstellationCalculation(_iridium_config())
        state = calc.state_at(0.0)
        lat, lon = state.satellite_position_geodetic(0, 0)
        assert -90.0 <= lat <= 90.0
        assert -180.0 <= lon <= 180.0

    def test_satellite_to_satellite_query_with_ground_station_sources(self):
        # With the default (ground-station) path sources, satellite-to-satellite
        # queries fall back to a lazily computed single-source Dijkstra run.
        calc = ConstellationCalculation(_iridium_config())
        state = calc.state_at(0.0)
        a = calc.satellite(0, 0)
        b = calc.satellite(0, 1)
        delay = state.delay_ms(a, b)
        assert np.isfinite(delay)
        assert delay > 0.0
        assert state.delay_ms(a, b) == pytest.approx(state.delay_ms(b, a))

    def test_path_sources_all_allows_sat_to_sat(self):
        calc = ConstellationCalculation(_iridium_config(), path_sources="all")
        state = calc.state_at(0.0)
        a = calc.satellite(0, 0)
        b = calc.satellite(0, 30)
        assert np.isfinite(state.delay_ms(a, b))
        assert state.path(a, b).hop_count >= 1
