"""Unit tests for the microVM migration scheduler and the ASCII animation map."""

import numpy as np
import pytest

from repro.core import (
    BoundingBox,
    ComputeParams,
    Configuration,
    ConstellationCalculation,
    GroundStationConfig,
    NetworkParams,
    ShellConfig,
    ascii_map,
)
from repro.hosts import Host, MigrationScheduler
from repro.microvm import MachineResources, MachineState, MicroVM
from repro.orbits import GroundStation, ShellGeometry


def _machine(name, memory=1024):
    return MicroVM(name, MachineResources(vcpu_count=1, memory_mib=memory),
                   rng=np.random.default_rng(0))


def _imbalanced_hosts():
    """Host 0 carries eight 1 GiB machines, host 1 carries none."""
    hosts = [Host(index=0, memory_mib=32 * 1024), Host(index=1, memory_mib=32 * 1024)]
    for index in range(8):
        machine = _machine(f"sat-{index}")
        hosts[0].place(machine)
        machine.boot(0.0)
    return hosts


class TestMigrationScheduler:
    def test_plan_reduces_imbalance(self):
        hosts = _imbalanced_hosts()
        scheduler = MigrationScheduler(hosts, imbalance_threshold_mib=1024.0)
        assert scheduler.imbalance_mib() == 8192.0
        plan = scheduler.plan()
        assert len(plan) >= 3
        assert all(entry.source_host == 0 and entry.target_host == 1 for entry in plan)

    def test_execute_moves_machines_and_records_downtime(self):
        hosts = _imbalanced_hosts()
        scheduler = MigrationScheduler(hosts, imbalance_threshold_mib=1024.0)
        events = scheduler.rebalance(now_s=100.0)
        assert len(events) >= 3
        assert scheduler.imbalance_mib() <= 1024.0 + 1024.0
        for event in events:
            assert event.downtime_s > 0.0
            moved = hosts[1].machine(event.machine_name)
            # Migrated machines end up running again on the target host.
            assert moved.state is MachineState.RUNNING
            assert event.machine_name not in hosts[0].machines
        assert scheduler.events == events

    def test_balanced_hosts_produce_empty_plan(self):
        hosts = [Host(index=0), Host(index=1)]
        for host in hosts:
            machine = _machine(f"m-{host.index}")
            host.place(machine)
        scheduler = MigrationScheduler(hosts)
        assert scheduler.plan() == []
        assert scheduler.rebalance(0.0) == []

    def test_downtime_scales_with_memory(self):
        hosts = [Host(index=0), Host(index=1)]
        scheduler = MigrationScheduler(hosts, transfer_rate_mbps=1000.0)
        small = scheduler.migration_downtime_s(512)
        large = scheduler.migration_downtime_s(8192)
        assert large > small

    def test_execute_skips_target_without_capacity(self):
        hosts = [Host(index=0, memory_mib=32 * 1024), Host(index=1, memory_mib=512)]
        for index in range(4):
            machine = _machine(f"sat-{index}", memory=1024)
            hosts[0].place(machine)
        scheduler = MigrationScheduler(hosts, imbalance_threshold_mib=0.0)
        events = scheduler.rebalance(0.0)
        assert events == []
        assert len(hosts[0].machines) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            MigrationScheduler([Host(index=0)])
        hosts = [Host(index=0), Host(index=1)]
        with pytest.raises(ValueError):
            MigrationScheduler(hosts, imbalance_threshold_mib=-1.0)
        with pytest.raises(ValueError):
            MigrationScheduler(hosts, transfer_rate_mbps=0.0)
        with pytest.raises(ValueError):
            MigrationScheduler(hosts).plan(max_moves=0)


class TestAsciiMap:
    def _state(self, bounding_box=None):
        config = Configuration(
            shells=(
                ShellConfig(
                    name="iridium",
                    geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                    network=NetworkParams(min_elevation_deg=8.2),
                    compute=ComputeParams(vcpu_count=1, memory_mib=1024),
                ),
            ),
            ground_stations=(
                GroundStationConfig(station=GroundStation("hawaii", 21.3, -157.9)),
            ),
            bounding_box=bounding_box,
            update_interval_s=5.0,
        )
        return ConstellationCalculation(config).state_at(0.0)

    def test_map_dimensions_and_symbols(self):
        rendering = ascii_map(self._state(), width=72, height=24)
        lines = rendering.splitlines()
        assert len(lines) == 24
        assert all(len(line) == 72 for line in lines)
        assert "#" in rendering
        assert "G" in rendering

    def test_bounding_box_shows_suspended_satellites(self):
        box = BoundingBox(-20.0, 20.0, -180.0, -140.0)
        rendering = ascii_map(self._state(bounding_box=box))
        assert "*" in rendering
        assert "#" in rendering

    def test_shell_filter_and_validation(self):
        state = self._state()
        assert "#" in ascii_map(state, shell=0)
        with pytest.raises(ValueError):
            ascii_map(state, width=5, height=3)
