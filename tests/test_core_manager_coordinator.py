"""Unit tests for the machine manager, coordinator and fault injection."""

import numpy as np
import pytest

from repro.core import (
    BoundingBox,
    ComputeParams,
    Configuration,
    ConstellationCalculation,
    ConstellationDatabase,
    Coordinator,
    FaultInjector,
    GroundStationConfig,
    MachineManager,
    NetworkParams,
    RadiationModel,
    ShellConfig,
)
from repro.hosts import Host
from repro.microvm import MachineState
from repro.orbits import GroundStation, ShellGeometry
from repro.sim import Simulation


def _config(bounding_box=None):
    return Configuration(
        shells=(
            ShellConfig(
                name="iridium",
                geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                network=NetworkParams(min_elevation_deg=8.2),
                compute=ComputeParams(vcpu_count=1, memory_mib=1024),
            ),
        ),
        ground_stations=(
            GroundStationConfig(station=GroundStation("hawaii", 21.3, -157.9),
                                compute=ComputeParams(vcpu_count=8, memory_mib=8192)),
        ),
        bounding_box=bounding_box,
        update_interval_s=5.0,
        duration_s=60.0,
    )


def _coordinator(bounding_box=None, host_count=2):
    config = _config(bounding_box)
    calculation = ConstellationCalculation(config)
    database = ConstellationDatabase()
    managers = [MachineManager(Host(index=i, allow_memory_overcommit=True)) for i in range(host_count)]
    coordinator = Coordinator(config, calculation, database, managers)
    return config, calculation, database, managers, coordinator


class TestMachineManager:
    def test_create_and_boot(self):
        config, calculation, _, managers, _ = _coordinator()
        manager = managers[0]
        machine_id = calculation.satellite(0, 5)
        microvm = manager.create_machine(machine_id, config.shells[0].compute)
        assert microvm.state is MachineState.CREATED
        finished = manager.boot(machine_id, 1.0)
        assert 1.0 < finished < 2.0
        assert manager.has_machine(machine_id)
        assert manager.is_running_at(machine_id, finished + 0.1)
        assert not manager.is_running_at(machine_id, 1.0 + 0.01)

    def test_boot_all(self):
        config, calculation, _, managers, _ = _coordinator()
        manager = managers[0]
        for identifier in range(3):
            manager.create_machine(calculation.satellite(0, identifier), config.shells[0].compute)
        finished = manager.boot_all(0.0)
        assert finished < 1.0
        assert manager.host.booted_machine_count() == 3

    def test_apply_state_suspends_out_of_box_satellites(self):
        box = BoundingBox(-20.0, 20.0, -180.0, -140.0)
        config, calculation, _, managers, coordinator = _coordinator(bounding_box=box)
        manager = managers[0]
        state = calculation.state_at(0.0)
        inside = int(np.nonzero(state.active_satellites[0])[0][0])
        outside = int(np.nonzero(~state.active_satellites[0])[0][0])
        for identifier in (inside, outside):
            machine_id = calculation.satellite(0, identifier)
            manager.create_machine(machine_id, config.shells[0].compute)
            manager.boot(machine_id, 0.0)
        manager.apply_state(state, 10.0)
        assert manager.machine(calculation.satellite(0, inside)).state is MachineState.RUNNING
        assert manager.machine(calculation.satellite(0, outside)).state is MachineState.SUSPENDED
        assert manager.suspension_count == 1
        # When the satellite comes back into the box it is resumed: emulate a
        # later state in which the same satellite is active again.
        resumed_state = calculation.state_at(0.0)
        resumed_state.active_satellites[0][:] = True
        manager.apply_state(resumed_state, 20.0)
        assert manager.machine(calculation.satellite(0, outside)).state is MachineState.RUNNING
        assert manager.resume_count == 1

    def test_runtime_control(self):
        config, calculation, _, managers, _ = _coordinator()
        manager = managers[0]
        machine_id = calculation.satellite(0, 2)
        manager.create_machine(machine_id, config.shells[0].compute)
        manager.boot(machine_id, 0.0)
        manager.set_cpu_quota(machine_id, 0.5)
        assert manager.machine(machine_id).cpu_quota.quota_fraction == 0.5
        manager.set_busy_fraction(machine_id, 0.8)
        manager.stop_machine(machine_id, 5.0)
        assert not manager.is_running_at(machine_id, 6.0)
        manager.reboot_machine(machine_id, 7.0)
        assert manager.is_running_at(machine_id, 8.5)
        sample = manager.sample_usage(10.0)
        assert sample.firecracker_processes == 1


class TestCoordinator:
    def test_lazy_satellite_creation_without_box(self):
        _, _, database, managers, coordinator = _coordinator()
        coordinator.create_ground_stations(0.0)
        coordinator.update(0.0)
        assert database.has_state
        created = sum(len(manager.host.machines) for manager in managers)
        # All 66 satellites plus the ground station get microVMs.
        assert created == 67

    def test_lazy_satellite_creation_with_box(self):
        box = BoundingBox(-20.0, 20.0, -180.0, -140.0)
        _, _, _, managers, coordinator = _coordinator(bounding_box=box)
        coordinator.create_ground_stations(0.0)
        state = coordinator.update(0.0)
        created = sum(len(manager.host.machines) for manager in managers)
        assert created == state.active_count() + 1
        assert created < 67

    def test_machines_spread_across_hosts(self):
        _, _, _, managers, coordinator = _coordinator(host_count=2)
        coordinator.create_ground_stations(0.0)
        coordinator.update(0.0)
        counts = [len(manager.host.machines) for manager in managers]
        assert all(count > 0 for count in counts)
        assert sum(counts) == 67
        # Placement balances reserved memory, not machine counts.
        memory = [manager.host.reserved_memory_mib() for manager in managers]
        assert abs(memory[0] - memory[1]) <= 8192.0

    def test_manager_for_unknown_machine(self):
        _, calculation, _, _, coordinator = _coordinator()
        with pytest.raises(KeyError):
            coordinator.manager_for(calculation.satellite(0, 0))

    def test_run_updates_process(self):
        config, _, database, _, coordinator = _coordinator()
        sim = Simulation()
        coordinator.create_ground_stations(0.0)
        sim.process(coordinator.run_updates(sim, duration_s=20.0))
        sim.run()
        # Updates at t = 0, 5, 10, 15, 20.
        assert coordinator.stats.count == 5
        assert database.updated_at_s == 20.0
        assert coordinator.stats.mean_wallclock_s > 0.0
        assert coordinator.stats.max_wallclock_s >= coordinator.stats.mean_wallclock_s


class TestFaultInjection:
    def test_terminate_and_reboot(self):
        config, calculation, _, managers, coordinator = _coordinator()
        coordinator.create_ground_stations(0.0)
        coordinator.update(0.0)
        injector = FaultInjector(manager_resolver=coordinator.manager_for)
        victim = calculation.satellite(0, 7)
        injector.terminate(victim, 10.0)
        assert not coordinator.manager_for(victim).is_running_at(victim, 11.0)
        back_up = injector.reboot(victim, 12.0)
        assert coordinator.manager_for(victim).is_running_at(victim, back_up + 0.1)
        injector.degrade_cpu(victim, 0.25, 13.0)
        assert coordinator.manager_for(victim).machine(victim).cpu_quota.quota_fraction == 0.25
        injector.restore_cpu(victim, 14.0)
        kinds = [event.kind for event in injector.events]
        assert kinds == ["terminate", "reboot", "degrade-cpu", "restore-cpu"]

    def test_packet_loss_requires_network(self):
        _, calculation, _, _, coordinator = _coordinator()
        injector = FaultInjector(manager_resolver=coordinator.manager_for, network=None)
        with pytest.raises(RuntimeError):
            injector.inject_packet_loss(
                calculation.satellite(0, 0), calculation.satellite(0, 1), 0.5, 0.0
            )

    def test_radiation_model_injects_upsets(self):
        config, calculation, _, managers, coordinator = _coordinator()
        coordinator.create_ground_stations(0.0)
        coordinator.update(0.0)
        injector = FaultInjector(manager_resolver=coordinator.manager_for)
        model = RadiationModel(events_per_machine_hour=2.0, rng=np.random.default_rng(3))
        sim = Simulation()
        machines = [calculation.satellite(0, identifier) for identifier in range(10)]
        sim.process(model.process(sim, machines, injector))
        sim.run(until=3600.0)
        # Expectation: 2 events/hour/machine * 10 machines * 1 hour = ~20 upsets.
        assert 5 <= len(model.upsets) <= 60
        assert all(event.kind == "single-event-upset" for event in model.upsets)

    def test_radiation_model_zero_rate(self):
        model = RadiationModel(0.0)
        sim = Simulation()
        injector = FaultInjector(manager_resolver=lambda m: None)
        sim.process(model.process(sim, [], injector))
        sim.run()
        assert model.upsets == []
        with pytest.raises(ValueError):
            RadiationModel(-1.0)
