"""Wire-protocol round-trip tests for the distribution runtime.

The contract under test: a :class:`HostStateSlice` (and every other frame
payload) crosses the coordinator ↔ worker pipe **byte-identically** — same
dtypes, same shapes, same payload bits — including empty slices and
zero-length edge arrays, and frames from a different protocol generation
are rejected before any payload is deserialised.
"""

import pickle
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine_manager import HostStateSlice
from repro.core.constellation import MachineId
from repro.dist import wire
from repro.dist.wire import (
    WIRE_MAGIC,
    WIRE_VERSION,
    FrameKind,
    WireError,
    WireVersionError,
    decode_frame,
    encode_frame,
)


def _assert_bytes_identical(sent: np.ndarray, received: np.ndarray):
    assert sent.dtype == received.dtype
    assert sent.shape == received.shape
    assert sent.tobytes() == received.tobytes()


def _slice(
    machine_count=5,
    link_changes=3,
    gst_names=("hawaii", "tahiti"),
    activated=(),
    deactivated=(),
    dirty=None,
):
    rng = np.random.default_rng(7)
    nodes = np.arange(machine_count, dtype=np.int64)
    endpoints = rng.integers(0, 60, size=(link_changes, 2)).astype(np.int64)
    return HostStateSlice(
        host_index=2,
        time_s=123.5,
        epoch=9,
        activated=tuple(activated),
        deactivated=tuple(deactivated),
        dirty_active=dict(dirty or {}),
        machine_nodes=nodes,
        links_added=endpoints,
        added_delays_ms=rng.random(link_changes),
        links_removed=endpoints[:1],
        links_delay_changed=endpoints,
        delay_changed_ms=rng.random(link_changes),
        gst_delays_ms={name: rng.random(machine_count) for name in gst_names},
        uplink_delays_ms={name: rng.random(machine_count) for name in gst_names},
        uplink_bandwidths_kbps={name: rng.random(machine_count) for name in gst_names},
    )


def _roundtrip(state_slice: HostStateSlice) -> HostStateSlice:
    kind, meta, arrays = decode_frame(wire.encode_slice(state_slice))
    assert kind is FrameKind.APPLY_SLICE
    return wire.decode_slice(meta, arrays)


class TestFrameCodec:
    def test_roundtrip_preserves_dtypes_shapes_and_bytes(self):
        arrays = (
            np.arange(12, dtype=np.int64).reshape(3, 4),
            np.linspace(0.0, 1.0, 7),
            np.array([], dtype=np.float32),
            np.zeros((0, 2), dtype=np.int64),
            np.array([True, False, True]),
        )
        meta = {"epoch": 3, "names": ["a", "b"], "nested": {"x": 1}}
        kind, out_meta, out_arrays = decode_frame(
            encode_frame(FrameKind.PING, meta, arrays)
        )
        assert kind is FrameKind.PING
        assert out_meta == meta
        assert len(out_arrays) == len(arrays)
        for sent, received in zip(arrays, out_arrays):
            _assert_bytes_identical(sent, received)

    def test_non_contiguous_arrays_are_normalised(self):
        matrix = np.arange(20, dtype=np.float64).reshape(4, 5)
        transposed = matrix.T  # not C-contiguous
        _, _, (received,) = decode_frame(encode_frame(FrameKind.PING, {}, (transposed,)))
        assert np.array_equal(received, transposed)

    def test_version_rejection_before_payload_decode(self):
        frame = bytearray(encode_frame(FrameKind.PING, {"x": 1}))
        # The version is the u16 right after the 4-byte magic.
        frame[4:6] = (WIRE_VERSION + 1).to_bytes(2, "little")
        with pytest.raises(WireVersionError, match="version"):
            decode_frame(bytes(frame))

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(FrameKind.PING, {}))
        frame[:4] = b"NOPE"
        with pytest.raises(WireError, match="magic"):
            decode_frame(bytes(frame))
        assert WIRE_MAGIC != b"NOPE"

    def test_truncated_frames_rejected(self):
        frame = encode_frame(FrameKind.PING, {"k": "v"}, (np.arange(8),))
        with pytest.raises(WireError):
            decode_frame(frame[:6])
        with pytest.raises(WireError):
            decode_frame(frame[:-3])

    def test_trailing_garbage_rejected(self):
        frame = encode_frame(FrameKind.PING, {}, (np.arange(4),))
        with pytest.raises(WireError, match="trailing"):
            decode_frame(frame + b"\x00")


def _forge_frame(
    meta=None,
    descriptors=(),
    payload=b"",
    kind=int(FrameKind.PING),
    magic=WIRE_MAGIC,
    version=WIRE_VERSION,
    array_count=None,
    blob=None,
    flags=0,
):
    """Build a frame by hand so descriptors/counters can lie."""
    if blob is None:
        blob = wire.encode_blob(
            {"meta": meta if meta is not None else {}, "arrays": list(descriptors)}
        )
    count = len(descriptors) if array_count is None else array_count
    header = struct.pack("<4sHBBII", magic, version, kind, flags, len(blob), count)
    return header + blob + payload


class TestForgedDescriptors:
    """A corrupt or forged frame must raise WireError — never build a
    nonsense array view, never leak an uncaught numpy/pickle exception."""

    def test_negative_shape_dim_rejected(self):
        # The original bug: (-1, n) makes nbytes negative, the bounds check
        # `len(data) < offset + nbytes` passes vacuously, and np.frombuffer
        # gets a nonsense slice.
        frame = _forge_frame(
            descriptors=[("<f8", (-1, 100))], payload=b"\x00" * 64
        )
        with pytest.raises(WireError, match="shape dimension"):
            decode_frame(frame)

    def test_negative_total_but_positive_product_rejected(self):
        # Two negative dims multiply back to a positive product: the byte
        # count looks sane, the view would still be garbage.
        frame = _forge_frame(descriptors=[("<f8", (-2, -4))], payload=b"\x00" * 64)
        with pytest.raises(WireError, match="shape dimension"):
            decode_frame(frame)

    def test_object_dtype_rejected(self):
        frame = _forge_frame(descriptors=[("|O", (2,))], payload=b"\x00" * 16)
        with pytest.raises(WireError, match="object dtype"):
            decode_frame(frame)

    def test_invalid_dtype_string_rejected(self):
        frame = _forge_frame(descriptors=[("not-a-dtype", (2,))], payload=b"")
        with pytest.raises(WireError, match="invalid array dtype"):
            decode_frame(frame)

    def test_non_string_dtype_rejected(self):
        # np.dtype(8) would happily build int64 — the descriptor contract
        # is a dtype *string*, anything else is corruption.
        frame = _forge_frame(descriptors=[(8, (2,))], payload=b"\x00" * 16)
        with pytest.raises(WireError, match="not a string"):
            decode_frame(frame)

    def test_zero_itemsize_dtype_rejected(self):
        frame = _forge_frame(descriptors=[("V0", (4,))], payload=b"")
        with pytest.raises(WireError, match="zero-itemsize"):
            decode_frame(frame)

    def test_huge_dimension_count_rejected(self):
        frame = _forge_frame(descriptors=[("<f8", (1,) * 200)], payload=b"\x00" * 8)
        with pytest.raises(WireError, match="shape"):
            decode_frame(frame)

    def test_non_integer_dimension_rejected(self):
        for dim in (2.0, "4", None, True):
            frame = _forge_frame(descriptors=[("<f8", (dim,))], payload=b"\x00" * 32)
            with pytest.raises(WireError, match="shape"):
                decode_frame(frame)

    def test_overflowing_dimensions_cannot_wrap_the_bounds_check(self):
        # In the pre-fix int64 arithmetic 2**62 * 4 wrapped negative; with
        # Python ints the product stays exact and simply fails the bounds
        # check as a truncation.
        frame = _forge_frame(descriptors=[("<f8", (2**62, 4))], payload=b"\x00" * 8)
        with pytest.raises(WireError, match="truncated"):
            decode_frame(frame)

    def test_malformed_descriptor_shapes_rejected(self):
        for descriptor in (("<f8",), ("<f8", (2,), "extra"), "nonsense", 7, None):
            frame = _forge_frame(descriptors=[descriptor], payload=b"")
            with pytest.raises(WireError):
                decode_frame(frame)

    def test_descriptor_table_and_meta_type_validated(self):
        blob = wire.encode_blob({"meta": {}, "arrays": 3})
        with pytest.raises(WireError, match="descriptor"):
            decode_frame(_forge_frame(blob=blob, array_count=3))
        blob = wire.encode_blob({"meta": ["not", "a", "dict"], "arrays": []})
        with pytest.raises(WireError, match="not a dict"):
            decode_frame(_forge_frame(blob=blob, array_count=0))

    def test_unknown_frame_kind_rejected(self):
        frame = _forge_frame(kind=250)
        with pytest.raises(WireError, match="unknown frame kind"):
            decode_frame(frame)

    def test_array_count_mismatch_rejected(self):
        frame = _forge_frame(descriptors=[("<f8", (2,))], payload=b"\x00" * 16,
                             array_count=5)
        with pytest.raises(WireError, match="count"):
            decode_frame(frame)


class TestSafeBlobCodec:
    """The metadata blob uses a closed-type-set codec by default — the
    deserialisation boundary an unauthenticated peer can reach must never
    construct objects or call anything."""

    def test_roundtrip_closed_type_set(self):
        meta = {
            "none": None,
            "on": True,
            "off": False,
            "small": -42,
            "big": 2**100,
            "neg_big": -(2**127),
            "pi": 3.5,
            "name": "gateway",
            "raw": b"\x00\xff\x80",
            "seq": [1, "two", 3.0],
            "pair": (4, 5),
            7: "int-key",
            "nested": {"deep": {"er": (None, b"x")}},
        }
        kind, out, arrays = decode_frame(encode_frame(FrameKind.PING, meta))
        assert kind is FrameKind.PING
        assert out == meta
        assert arrays == []
        assert isinstance(out["pair"], tuple)
        assert isinstance(out["seq"], list)
        assert isinstance(out["raw"], bytes)

    def test_numpy_scalars_coerced_to_python(self):
        meta = {"i": np.int64(9), "f": np.float64(2.5), "b": np.bool_(True)}
        _, out, _ = decode_frame(encode_frame(FrameKind.PING, meta))
        assert out == {"i": 9, "f": 2.5, "b": True}
        assert type(out["i"]) is int
        assert type(out["f"]) is float
        assert type(out["b"]) is bool

    def test_blob_truncations_raise_wire_error(self):
        blob = wire.encode_blob({"meta": {"k": [1, 2.5, "three"]}, "arrays": []})
        for cut in range(len(blob)):
            with pytest.raises(WireError):
                wire.decode_blob(blob[:cut])

    def test_forged_sequence_count_rejected(self):
        # A count claiming more elements than remaining bytes must fail the
        # bounds check, not allocate or loop on garbage.
        blob = b"l" + struct.pack("<I", 2**31)
        with pytest.raises(WireError, match="truncated"):
            wire.decode_blob(blob)

    def test_deep_nesting_rejected(self):
        blob = b"l" + struct.pack("<I", 1)
        for _ in range(100):
            blob += b"l" + struct.pack("<I", 1)
        blob += b"N"
        with pytest.raises(WireError, match="deeply"):
            wire.decode_blob(blob)

    def test_unhashable_dict_key_rejected(self):
        # dict with one entry whose key is a list — encodable tag-wise,
        # unhashable on decode.
        blob = b"d" + struct.pack("<I", 1)
        blob += b"l" + struct.pack("<I", 0)  # key: []
        blob += b"N"  # value: None
        with pytest.raises(WireError, match="unhashable"):
            wire.decode_blob(blob)


_CANARY_CALLS: list[str] = []


def _trip_canary(tag: str) -> None:
    _CANARY_CALLS.append(tag)


class _Canary:
    """Pickles to a call of :func:`_trip_canary` — unpickling it anywhere
    without opt-in would be the remote-code-execution the gate prevents."""

    def __reduce__(self):
        return (_trip_canary, ("boom",))


class TestPickleGating:
    """Pickle survives only as a header-flagged fallback for trusted
    channels; a frame from an unauthenticated peer can never reach
    ``pickle.loads`` without the decoder opting in."""

    def test_pickled_blob_refused_by_default(self):
        blob = pickle.dumps({"meta": {"x": 1}, "arrays": []}, protocol=5)
        frame = _forge_frame(blob=blob, array_count=0, flags=wire.FLAG_PICKLED)
        with pytest.raises(WireError, match="pickle"):
            decode_frame(frame)

    def test_pickled_blob_accepted_with_opt_in(self):
        blob = pickle.dumps({"meta": {"x": 1}, "arrays": []}, protocol=5)
        frame = _forge_frame(blob=blob, array_count=0, flags=wire.FLAG_PICKLED)
        _, meta, arrays = decode_frame(frame, allow_pickle=True)
        assert meta == {"x": 1}
        assert arrays == []

    def test_malicious_pickle_never_executes_without_opt_in(self):
        del _CANARY_CALLS[:]
        blob = pickle.dumps({"meta": {"evil": _Canary()}, "arrays": []}, protocol=5)
        frame = _forge_frame(blob=blob, array_count=0, flags=wire.FLAG_PICKLED)
        with pytest.raises(WireError):
            decode_frame(frame)
        assert _CANARY_CALLS == []

    def test_unflagged_pickle_bytes_are_not_routed_to_pickle(self):
        # A frame whose flags lie (pickle bytes without FLAG_PICKLED) must
        # fail safe-blob decoding — the flag decides the codec, so stripping
        # it cannot smuggle a pickle past the gate.
        del _CANARY_CALLS[:]
        blob = pickle.dumps({"meta": {"evil": _Canary()}, "arrays": []}, protocol=5)
        frame = _forge_frame(blob=blob, array_count=0, flags=0)
        with pytest.raises(WireError):
            decode_frame(frame)
        assert _CANARY_CALLS == []

    def test_rich_payloads_take_the_flagged_fallback(self):
        # Sets are outside the safe type set — stand-in for the WorkerSpec
        # blueprint that rides SPEC frames.
        frame = encode_frame(FrameKind.SPEC, {"spec": {1, 2}})
        flags = frame[7]  # header: magic(4) + version(2) + kind(1) + flags
        assert flags & wire.FLAG_PICKLED
        with pytest.raises(WireError, match="pickle"):
            decode_frame(frame)
        _, meta, _ = decode_frame(frame, allow_pickle=True)
        assert meta == {"spec": {1, 2}}

    def test_safe_payloads_are_never_flagged(self):
        for meta in (
            {},
            {"client": "c1", "scope": {"tables": True}},
            {"nonce": b"\x01" * 16, "digest": b"\x02" * 32},
            {"rng_state": 2**127 - 1, "epoch": 3},
        ):
            frame = encode_frame(FrameKind.SUBSCRIBE, meta)
            assert not frame[7] & wire.FLAG_PICKLED
            _, out, _ = decode_frame(frame)  # safe default decodes it
            assert out == meta


def _reference_frame() -> bytes:
    rng = np.random.default_rng(11)
    return encode_frame(
        FrameKind.APPLY_SLICE,
        {"epoch": 12, "names": ["hawaii", "tahiti"], "dirty_active": {"a": True}},
        (
            rng.integers(0, 100, size=(7, 2)).astype(np.int64),
            rng.random(31),
            np.array([], dtype=np.float32),
        ),
    )


class TestFrameFuzz:
    """Property corpus: truncated / bit-flipped / garbage inputs either
    decode cleanly or raise a *typed* wire error — nothing else escapes."""

    def _decode_or_typed_error(self, data: bytes):
        try:
            kind, meta, arrays = decode_frame(data)
        except WireError:  # includes WireVersionError
            return None
        assert isinstance(kind, FrameKind)
        assert isinstance(meta, dict)
        for array in arrays:
            assert isinstance(array, np.ndarray)
        return kind

    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_truncations(self, data):
        frame = _reference_frame()
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(WireError):
            decode_frame(frame[:cut])

    @settings(max_examples=300, deadline=None)
    @given(st.data())
    def test_single_bit_flips(self, data):
        frame = bytearray(_reference_frame())
        position = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        frame[position] ^= 1 << bit
        # A flip inside an array buffer still decodes (to different data —
        # the wire layer is framing, not end-to-end integrity); any flip
        # that breaks decoding must surface as a typed wire error.
        self._decode_or_typed_error(bytes(frame))

    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=512))
    def test_random_garbage(self, data):
        self._decode_or_typed_error(data)

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_byte_corruption_bursts(self, data):
        frame = bytearray(_reference_frame())
        start = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        burst = data.draw(st.binary(min_size=1, max_size=16))
        frame[start : start + len(burst)] = burst
        self._decode_or_typed_error(bytes(frame[: len(_reference_frame())]))


class TestSliceCodec:
    def test_typical_slice_roundtrips_byte_identically(self):
        activated = (MachineId(0, 4, "4.0.celestial"), MachineId(1, 9, "9.1.celestial"))
        deactivated = (MachineId(0, 2, "2.0.celestial"),)
        sent = _slice(
            activated=activated,
            deactivated=deactivated,
            dirty={"4.0.celestial": True, "11.0.celestial": False},
        )
        received = _roundtrip(sent)
        assert received.host_index == sent.host_index
        assert received.time_s == sent.time_s
        assert received.epoch == sent.epoch
        assert received.activated == sent.activated
        assert received.deactivated == sent.deactivated
        assert received.dirty_active == sent.dirty_active
        for field in (
            "machine_nodes",
            "links_added",
            "added_delays_ms",
            "links_removed",
            "links_delay_changed",
            "delay_changed_ms",
        ):
            _assert_bytes_identical(getattr(sent, field), getattr(received, field))
        for mapping in ("gst_delays_ms", "uplink_delays_ms", "uplink_bandwidths_kbps"):
            sent_map, received_map = getattr(sent, mapping), getattr(received, mapping)
            assert list(sent_map) == list(received_map)
            for name in sent_map:
                _assert_bytes_identical(sent_map[name], received_map[name])

    def test_empty_slice_roundtrips(self):
        # A host with no machines on a quiet epoch: every array is empty,
        # every mapping too.
        sent = _slice(machine_count=0, link_changes=0, gst_names=())
        received = _roundtrip(sent)
        assert received.machine_nodes.size == 0
        assert received.machine_nodes.dtype == np.int64
        assert received.links_added.shape == (0, 2)
        assert received.activated == () and received.deactivated == ()
        assert received.gst_delays_ms == {}
        assert received.link_change_count == 0
        assert received.activity_change_count == 0

    def test_zero_length_edge_arrays_keep_shape_and_dtype(self):
        sent = _slice(machine_count=4, link_changes=0)
        received = _roundtrip(sent)
        for field in ("links_added", "links_removed", "links_delay_changed"):
            assert getattr(received, field).shape[0] == 0
            assert getattr(received, field).dtype == np.int64
        assert received.added_delays_ms.size == 0
        assert received.delay_changed_ms.size == 0

    def test_per_gst_delay_vectors_with_inf(self):
        sent = _slice(machine_count=6)
        sent.gst_delays_ms["hawaii"][2] = np.inf
        sent.uplink_delays_ms["tahiti"][:] = np.inf
        received = _roundtrip(sent)
        _assert_bytes_identical(sent.gst_delays_ms["hawaii"], received.gst_delays_ms["hawaii"])
        assert np.all(np.isinf(received.uplink_delays_ms["tahiti"]))

    def test_activity_payload_roundtrip(self):
        masks = {
            0: np.array([True, False, True]),
            1: np.zeros(0, dtype=bool),
            2: np.ones(5, dtype=bool),
        }
        kind, meta, arrays = decode_frame(wire.encode_activity(masks, 42.0, 7))
        assert kind is FrameKind.APPLY_ACTIVITY
        received, time_s, epoch = wire.decode_activity(meta, arrays)
        assert time_s == 42.0 and epoch == 7
        assert list(received) == [0, 1, 2]
        for shell, mask in masks.items():
            _assert_bytes_identical(mask, received[shell])
