"""Wire-protocol round-trip tests for the distribution runtime.

The contract under test: a :class:`HostStateSlice` (and every other frame
payload) crosses the coordinator ↔ worker pipe **byte-identically** — same
dtypes, same shapes, same payload bits — including empty slices and
zero-length edge arrays, and frames from a different protocol generation
are rejected before any payload is deserialised.
"""

import numpy as np
import pytest

from repro.core.machine_manager import HostStateSlice
from repro.core.constellation import MachineId
from repro.dist import wire
from repro.dist.wire import (
    WIRE_MAGIC,
    WIRE_VERSION,
    FrameKind,
    WireError,
    WireVersionError,
    decode_frame,
    encode_frame,
)


def _assert_bytes_identical(sent: np.ndarray, received: np.ndarray):
    assert sent.dtype == received.dtype
    assert sent.shape == received.shape
    assert sent.tobytes() == received.tobytes()


def _slice(
    machine_count=5,
    link_changes=3,
    gst_names=("hawaii", "tahiti"),
    activated=(),
    deactivated=(),
    dirty=None,
):
    rng = np.random.default_rng(7)
    nodes = np.arange(machine_count, dtype=np.int64)
    endpoints = rng.integers(0, 60, size=(link_changes, 2)).astype(np.int64)
    return HostStateSlice(
        host_index=2,
        time_s=123.5,
        epoch=9,
        activated=tuple(activated),
        deactivated=tuple(deactivated),
        dirty_active=dict(dirty or {}),
        machine_nodes=nodes,
        links_added=endpoints,
        added_delays_ms=rng.random(link_changes),
        links_removed=endpoints[:1],
        links_delay_changed=endpoints,
        delay_changed_ms=rng.random(link_changes),
        gst_delays_ms={name: rng.random(machine_count) for name in gst_names},
        uplink_delays_ms={name: rng.random(machine_count) for name in gst_names},
        uplink_bandwidths_kbps={name: rng.random(machine_count) for name in gst_names},
    )


def _roundtrip(state_slice: HostStateSlice) -> HostStateSlice:
    kind, meta, arrays = decode_frame(wire.encode_slice(state_slice))
    assert kind is FrameKind.APPLY_SLICE
    return wire.decode_slice(meta, arrays)


class TestFrameCodec:
    def test_roundtrip_preserves_dtypes_shapes_and_bytes(self):
        arrays = (
            np.arange(12, dtype=np.int64).reshape(3, 4),
            np.linspace(0.0, 1.0, 7),
            np.array([], dtype=np.float32),
            np.zeros((0, 2), dtype=np.int64),
            np.array([True, False, True]),
        )
        meta = {"epoch": 3, "names": ["a", "b"], "nested": {"x": 1}}
        kind, out_meta, out_arrays = decode_frame(
            encode_frame(FrameKind.PING, meta, arrays)
        )
        assert kind is FrameKind.PING
        assert out_meta == meta
        assert len(out_arrays) == len(arrays)
        for sent, received in zip(arrays, out_arrays):
            _assert_bytes_identical(sent, received)

    def test_non_contiguous_arrays_are_normalised(self):
        matrix = np.arange(20, dtype=np.float64).reshape(4, 5)
        transposed = matrix.T  # not C-contiguous
        _, _, (received,) = decode_frame(encode_frame(FrameKind.PING, {}, (transposed,)))
        assert np.array_equal(received, transposed)

    def test_version_rejection_before_payload_decode(self):
        frame = bytearray(encode_frame(FrameKind.PING, {"x": 1}))
        # The version is the u16 right after the 4-byte magic.
        frame[4:6] = (WIRE_VERSION + 1).to_bytes(2, "little")
        with pytest.raises(WireVersionError, match="version"):
            decode_frame(bytes(frame))

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(FrameKind.PING, {}))
        frame[:4] = b"NOPE"
        with pytest.raises(WireError, match="magic"):
            decode_frame(bytes(frame))
        assert WIRE_MAGIC != b"NOPE"

    def test_truncated_frames_rejected(self):
        frame = encode_frame(FrameKind.PING, {"k": "v"}, (np.arange(8),))
        with pytest.raises(WireError):
            decode_frame(frame[:6])
        with pytest.raises(WireError):
            decode_frame(frame[:-3])

    def test_trailing_garbage_rejected(self):
        frame = encode_frame(FrameKind.PING, {}, (np.arange(4),))
        with pytest.raises(WireError, match="trailing"):
            decode_frame(frame + b"\x00")


class TestSliceCodec:
    def test_typical_slice_roundtrips_byte_identically(self):
        activated = (MachineId(0, 4, "4.0.celestial"), MachineId(1, 9, "9.1.celestial"))
        deactivated = (MachineId(0, 2, "2.0.celestial"),)
        sent = _slice(
            activated=activated,
            deactivated=deactivated,
            dirty={"4.0.celestial": True, "11.0.celestial": False},
        )
        received = _roundtrip(sent)
        assert received.host_index == sent.host_index
        assert received.time_s == sent.time_s
        assert received.epoch == sent.epoch
        assert received.activated == sent.activated
        assert received.deactivated == sent.deactivated
        assert received.dirty_active == sent.dirty_active
        for field in (
            "machine_nodes",
            "links_added",
            "added_delays_ms",
            "links_removed",
            "links_delay_changed",
            "delay_changed_ms",
        ):
            _assert_bytes_identical(getattr(sent, field), getattr(received, field))
        for mapping in ("gst_delays_ms", "uplink_delays_ms", "uplink_bandwidths_kbps"):
            sent_map, received_map = getattr(sent, mapping), getattr(received, mapping)
            assert list(sent_map) == list(received_map)
            for name in sent_map:
                _assert_bytes_identical(sent_map[name], received_map[name])

    def test_empty_slice_roundtrips(self):
        # A host with no machines on a quiet epoch: every array is empty,
        # every mapping too.
        sent = _slice(machine_count=0, link_changes=0, gst_names=())
        received = _roundtrip(sent)
        assert received.machine_nodes.size == 0
        assert received.machine_nodes.dtype == np.int64
        assert received.links_added.shape == (0, 2)
        assert received.activated == () and received.deactivated == ()
        assert received.gst_delays_ms == {}
        assert received.link_change_count == 0
        assert received.activity_change_count == 0

    def test_zero_length_edge_arrays_keep_shape_and_dtype(self):
        sent = _slice(machine_count=4, link_changes=0)
        received = _roundtrip(sent)
        for field in ("links_added", "links_removed", "links_delay_changed"):
            assert getattr(received, field).shape[0] == 0
            assert getattr(received, field).dtype == np.int64
        assert received.added_delays_ms.size == 0
        assert received.delay_changed_ms.size == 0

    def test_per_gst_delay_vectors_with_inf(self):
        sent = _slice(machine_count=6)
        sent.gst_delays_ms["hawaii"][2] = np.inf
        sent.uplink_delays_ms["tahiti"][:] = np.inf
        received = _roundtrip(sent)
        _assert_bytes_identical(sent.gst_delays_ms["hawaii"], received.gst_delays_ms["hawaii"])
        assert np.all(np.isinf(received.uplink_delays_ms["tahiti"]))

    def test_activity_payload_roundtrip(self):
        masks = {
            0: np.array([True, False, True]),
            1: np.zeros(0, dtype=bool),
            2: np.ones(5, dtype=bool),
        }
        kind, meta, arrays = decode_frame(wire.encode_activity(masks, 42.0, 7))
        assert kind is FrameKind.APPLY_ACTIVITY
        received, time_s, epoch = wire.decode_activity(meta, arrays)
        assert time_s == 42.0 and epoch == 7
        assert list(received) == [0, 1, 2]
        for shell, mask in masks.items():
            _assert_bytes_identical(mask, received[shell])
