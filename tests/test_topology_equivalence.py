"""Old-vs-new ``NetworkGraph`` equivalence over real scenarios.

The array-backed topology core (CSR adjacency + vectorised snapshot
construction) must be an observable no-op: for the Iridium (DART, §5) and
Starlink (§4 meetup) scenarios it has to produce the same link set, the same
shortest-path delays, the same reconstructed paths and the same bottleneck
bandwidths as the seed implementation, which stored a Python list of
per-link dataclasses and built its delay matrix with per-link loops.

The legacy reference below replicates the seed behaviour (including its COO
construction) from the ``Link`` object view that the new graph still
exposes, so any divergence in the array core shows up as a mismatch here.
"""

import numpy as np
import pytest
from scipy import sparse
from scipy.sparse import csgraph

from repro.core import ConstellationCalculation
from repro.scenarios import dart_configuration, west_africa_configuration


def _legacy_delay_matrix(links, node_count):
    """Seed implementation: per-link Python loop building a COO matrix."""
    if not links:
        return sparse.csr_matrix((node_count, node_count))
    rows, cols, data = [], [], []
    for link in links:
        rows.extend((link.node_a, link.node_b))
        cols.extend((link.node_b, link.node_a))
        data.extend((link.delay_ms, link.delay_ms))
    return sparse.csr_matrix((data, (rows, cols)), shape=(node_count, node_count))


def _legacy_link_between(links, node_a, node_b):
    """Seed implementation: O(E) linear scan."""
    for link in links:
        if {link.node_a, link.node_b} == {node_a, node_b}:
            return link
    return None


def _legacy_bottleneck_bandwidth(links, hops):
    """Seed implementation of the bottleneck bandwidth: O(hops * E) scans."""
    bandwidths = []
    for hop_a, hop_b in zip(hops, hops[1:]):
        link = _legacy_link_between(links, hop_a, hop_b)
        if link is not None:
            bandwidths.append(link.bandwidth_kbps)
    return min(bandwidths) if bandwidths else 0.0


def _assert_state_matches_legacy(calculation, state):
    graph = state.graph
    links = graph.links
    node_count = len(state.node_index)
    sources = list(state.node_index.ground_station_indices())
    assert sources, "equivalence scenarios must have ground stations"

    # Same edge set, O(1) pair lookup agrees with the O(E) scan.
    legacy_matrix = _legacy_delay_matrix(links, node_count)
    assert graph.total_links() == len(links)
    for link in links[:: max(1, len(links) // 50)]:
        found = graph.link_between(link.node_a, link.node_b)
        assert found == link
        assert found == _legacy_link_between(links, link.node_a, link.node_b)

    # Same shortest-path delays as Dijkstra over the seed delay matrix.
    legacy_distances = csgraph.dijkstra(legacy_matrix, directed=False, indices=sources)
    for row, source in enumerate(sources):
        new_delays = state.paths.delays_from(source)
        np.testing.assert_allclose(new_delays, legacy_distances[row], atol=1e-6)

    # Same paths and bottleneck bandwidths for ground-station pairs and a
    # sample of ground-station → satellite pairs.
    machines = list(calculation.machines())
    ground = [machine for machine in machines if machine.is_ground_station]
    satellites = [machine for machine in machines if machine.is_satellite]
    targets = ground + satellites[:: max(1, len(satellites) // 25)]
    for source_machine in ground[:4]:
        for target_machine in targets:
            result = state.path(source_machine, target_machine)
            if not result.reachable:
                continue
            hop_sum = sum(
                _legacy_link_between(links, a, b).delay_ms
                for a, b in zip(result.hops, result.hops[1:])
            )
            assert result.delay_ms == pytest.approx(hop_sum, abs=1e-6)
            assert state.bandwidth_kbps(source_machine, target_machine) == pytest.approx(
                _legacy_bottleneck_bandwidth(links, result.hops)
            )


def test_iridium_scenario_equivalent_to_seed():
    config = dart_configuration(buoy_count=8, sink_count=12, duration_s=60.0)
    calculation = ConstellationCalculation(config)
    for time_s in (0.0, 120.0):
        _assert_state_matches_legacy(calculation, calculation.state_at(time_s))


def test_starlink_scenario_equivalent_to_seed():
    config = west_africa_configuration(duration_s=60.0, shells="two-lowest")
    calculation = ConstellationCalculation(config)
    _assert_state_matches_legacy(calculation, calculation.state_at(30.0))


def test_starlink_full_constellation_links_and_delays_stable():
    """Spot-check the full 4,409-satellite constellation used by the benchmark."""
    config = west_africa_configuration(duration_s=60.0, shells="all")
    calculation = ConstellationCalculation(config)
    state = calculation.state_at(10.0)
    assert state.node_index.satellite_count == 4409
    graph = state.graph
    # The Link view, the arrays and the legacy matrix must agree pairwise.
    legacy_matrix = _legacy_delay_matrix(graph.links, len(state.node_index))
    matrix = graph.delay_matrix()
    difference = (matrix - legacy_matrix).tocoo()
    assert np.all(np.abs(difference.data) <= 1e-9)
