"""Tests for the declarative experiment harness: registry, specs, runner."""

import json

import pytest

from repro.core import (
    ComputeParams,
    Configuration,
    ConfigurationError,
    GroundStationConfig,
    HostConfig,
    NetworkParams,
    ShellConfig,
)
from repro.experiments import (
    ExperimentRunner,
    ExperimentSpec,
    ExperimentSpecError,
    FaultOp,
    MetricsSpec,
    RuntimeSpec,
    ScenarioSpec,
    UnknownScenarioError,
    WorkloadSpec,
    build,
    build_configuration,
    entry,
    list_scenarios,
    scenario,
    unregister,
)
from repro.orbits import GroundStation, ShellGeometry


def _small_two_operator_configuration(duration_s: float = 240.0) -> Configuration:
    """A scaled-down two-operator configuration for fault-program tests."""
    compute = ComputeParams(vcpu_count=1, memory_mib=256)
    return Configuration(
        shells=(
            ShellConfig(
                name="healthy",
                geometry=ShellGeometry(6, 11, 780.0, 86.4, 180.0),
                network=NetworkParams(min_elevation_deg=8.2),
                compute=compute,
            ),
            ShellConfig(
                name="oneweb",
                geometry=ShellGeometry(6, 6, 1200.0, 87.9, 180.0),
                network=NetworkParams(min_elevation_deg=15.0),
                compute=compute,
            ),
        ),
        ground_stations=(
            GroundStationConfig(
                station=GroundStation("hawaii", 21.3, -157.9), compute=compute
            ),
        ),
        hosts=HostConfig(count=2, cpu_cores=32, memory_mib=64 * 1024),
        update_interval_s=30.0,
        duration_s=duration_s,
    )


class TestRegistry:
    def test_all_registered_scenarios_build(self):
        names = list_scenarios()
        assert len(names) >= 9
        for name in names:
            config = build(name)
            assert isinstance(config, Configuration)
            assert config.total_satellites > 0

    def test_factory_parameters_pass_through(self):
        config = build("iridium", duration_s=42.0, update_interval_s=7.0)
        assert config.duration_s == 42.0
        assert config.update_interval_s == 7.0
        assert config.total_satellites == 66

    def test_unknown_scenario_lists_known_names(self):
        with pytest.raises(UnknownScenarioError, match="iridium"):
            entry("no-such-scenario")

    def test_entries_carry_descriptions(self):
        item = entry("pacific-dart")
        assert item.name == "pacific-dart"
        assert item.description
        assert "scenarios" in item.module

    def test_duplicate_registration_rejected(self):
        @scenario("tmp-duplicate-check")
        def factory():
            return _small_two_operator_configuration()

        try:
            with pytest.raises(ValueError, match="already registered"):
                scenario("tmp-duplicate-check")(factory)
        finally:
            unregister("tmp-duplicate-check")
        with pytest.raises(UnknownScenarioError):
            entry("tmp-duplicate-check")

    def test_build_type_checks_the_factory_result(self):
        @scenario("tmp-bad-factory")
        def factory():
            return {"not": "a configuration"}

        try:
            with pytest.raises(TypeError, match="Configuration"):
                build("tmp-bad-factory")
        finally:
            unregister("tmp-bad-factory")


class TestSpecValidation:
    def test_scenario_requires_exactly_one_source(self):
        with pytest.raises(ExperimentSpecError):
            ScenarioSpec()
        with pytest.raises(ExperimentSpecError):
            ScenarioSpec(name="iridium", path="config.toml")
        with pytest.raises(ExperimentSpecError):
            ScenarioSpec(path="config.toml", params={"duration_s": 1.0})

    def test_unknown_workload_rejected(self):
        with pytest.raises(ExperimentSpecError, match="unknown workload"):
            WorkloadSpec(app="warp-drive")

    def test_runtime_validation(self):
        with pytest.raises(ExperimentSpecError, match="parallelism"):
            RuntimeSpec(parallelism="fibers")
        with pytest.raises(ExperimentSpecError, match="transport"):
            RuntimeSpec(transport="carrier-pigeon")
        with pytest.raises(ExperimentSpecError, match="duration"):
            RuntimeSpec(duration_s=-1.0)

    def test_metrics_outputs_validated(self):
        with pytest.raises(ExperimentSpecError, match="unknown metrics"):
            MetricsSpec(outputs=("summary", "holograms"))

    def test_fault_op_validation(self):
        with pytest.raises(ExperimentSpecError):
            FaultOp(kind="")
        with pytest.raises(ExperimentSpecError):
            FaultOp(kind="reboot", at_s=-5.0)

    def test_name_required(self):
        with pytest.raises(ExperimentSpecError):
            ExperimentSpec(name="", scenario=ScenarioSpec(name="iridium"))


def _full_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="round-trip",
        scenario=ScenarioSpec(
            name="pacific-dart",
            params={"sink_count": 8, "buoy_count": 4, "duration_s": 30.0},
            overrides={"update_interval_s": 10.0},
        ),
        workload=WorkloadSpec(app="dart", params={"deployment": "central"}),
        fault_program=(
            FaultOp(kind="terminate", at_s=10.0, target="hawaii"),
            FaultOp(
                kind="operator-degradation",
                target="oneweb",
                params={"isls_per_step": 5, "interval_s": 30.0},
            ),
        ),
        runtime=RuntimeSpec(parallelism="processes", workers=2, transport="tcp", seed=7),
        metrics=MetricsSpec(outputs=("summary", "latency-csv")),
    )


class TestSpecSerialisation:
    def test_toml_round_trip_is_byte_stable(self):
        spec = _full_spec()
        text = spec.to_toml()
        reparsed = ExperimentSpec.from_toml_text(text)
        assert reparsed == spec
        assert reparsed.to_toml() == text

    def test_json_round_trip_is_byte_stable(self):
        spec = _full_spec()
        text = spec.to_json()
        reparsed = ExperimentSpec.from_dict(json.loads(text))
        assert reparsed == spec
        assert reparsed.to_json() == text

    def test_dict_round_trip(self):
        spec = _full_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_from_path_toml_and_json(self, tmp_path):
        spec = _full_spec()
        toml_path = tmp_path / "spec.toml"
        toml_path.write_text(spec.to_toml())
        json_path = tmp_path / "spec.json"
        json_path.write_text(spec.to_json())
        assert ExperimentSpec.from_path(toml_path) == spec
        assert ExperimentSpec.from_path(json_path) == spec

    def test_from_path_rejects_unknown_suffix(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("name: nope")
        with pytest.raises(ExperimentSpecError, match="suffix"):
            ExperimentSpec.from_path(path)

    def test_with_runtime_overrides(self):
        spec = _full_spec().with_runtime(parallelism="threads", workers=None)
        assert spec.runtime.parallelism == "threads"
        assert spec.runtime.workers is None
        assert spec.runtime.seed == 7  # untouched fields survive


class TestBuildConfiguration:
    def test_registry_scenario_with_params(self):
        spec = ExperimentSpec(
            name="cfg",
            scenario=ScenarioSpec(
                name="iridium", params={"duration_s": 50.0, "update_interval_s": 25.0}
            ),
        )
        config = build_configuration(spec)
        assert config.duration_s == 50.0
        assert config.total_satellites == 66

    def test_config_file_scenario(self, tmp_path):
        config = _small_two_operator_configuration()
        path = tmp_path / "config.json"
        path.write_text(json.dumps(config.to_dict()))
        spec = ExperimentSpec(name="cfg", scenario=ScenarioSpec(path=str(path)))
        loaded = build_configuration(spec)
        assert loaded.total_satellites == config.total_satellites
        assert loaded.ground_station_names == ["hawaii"]

    def test_overrides_and_runtime_precedence(self):
        spec = ExperimentSpec(
            name="cfg",
            scenario=ScenarioSpec(
                name="iridium",
                params={"duration_s": 50.0},
                overrides={"duration_s": 70.0, "hosts": {"count": 5}},
            ),
            runtime=RuntimeSpec(duration_s=90.0, seed=3),
        )
        config = build_configuration(spec)
        assert config.duration_s == 90.0  # runtime wins over the override
        assert config.seed == 3
        assert config.hosts.count == 5
        assert config.hosts.cpu_cores == 32  # merged, not replaced

    def test_unknown_override_rejected(self):
        spec = ExperimentSpec(
            name="cfg",
            scenario=ScenarioSpec(name="iridium", overrides={"warp": 9}),
        )
        with pytest.raises(ExperimentSpecError, match="unknown scenario override"):
            build_configuration(spec)

    def test_unsupported_config_suffix(self):
        with pytest.raises(ConfigurationError, match="suffix"):
            Configuration.from_path("config.yaml")


class TestRunnerEquivalence:
    def test_spec_run_matches_hand_wired_dart(self):
        from repro.apps import DartExperiment
        from repro.core.testbed import Celestial
        from repro.scenarios import dart_configuration

        config = dart_configuration(
            deployment="central", buoy_count=4, sink_count=8, duration_s=30.0
        )
        testbed = Celestial(config)
        try:
            direct = DartExperiment(testbed, deployment="central", group_count=2).run()
        finally:
            testbed.close()

        spec = ExperimentSpec(
            name="dart-equivalence",
            scenario=ScenarioSpec(
                name="pacific-dart",
                params={
                    "deployment": "central",
                    "buoy_count": 4,
                    "sink_count": 8,
                    "duration_s": 30.0,
                },
            ),
            workload=WorkloadSpec(
                app="dart", params={"deployment": "central", "group_count": 2}
            ),
        )
        result = ExperimentRunner(spec).run()
        assert result.metrics == direct.summary_metrics()
        assert result.raw.readings_sent == direct.readings_sent
        assert result.raw.results_delivered == direct.results_delivered

    def test_fault_program_reproduces_operator_degradation(self):
        from repro.core.testbed import Celestial
        from repro.scenarios.degraded import OperatorDegradation

        # Hand-wired: construct the cascade against the victim shell and run.
        testbed = Celestial(_small_two_operator_configuration())
        try:
            manual = OperatorDegradation(
                testbed, 1, isls_per_step=5, interval_s=30.0, target_fraction=0.4
            )
            testbed.start()
            testbed.sim.process(manual.process())
            testbed.run()
            manual_events = list(testbed.fault_injector.events)
        finally:
            testbed.close()
        assert manual.severed  # the cascade actually ran

        # Declarative: the same schedule as one fault-program op.
        @scenario("tmp-small-degraded")
        def factory():
            return _small_two_operator_configuration()

        try:
            spec = ExperimentSpec(
                name="degradation-equivalence",
                scenario=ScenarioSpec(name="tmp-small-degraded"),
                workload=WorkloadSpec(app="none"),
                fault_program=(
                    FaultOp(
                        kind="operator-degradation",
                        target="oneweb",
                        params={
                            "isls_per_step": 5,
                            "interval_s": 30.0,
                            "target_fraction": 0.4,
                        },
                    ),
                ),
            )
            result = ExperimentRunner(spec).run()
        finally:
            unregister("tmp-small-degraded")

        declarative = result.fault_interpreters[0]
        assert isinstance(declarative, OperatorDegradation)
        # The link-severing sequence is reproduced exactly: same severed
        # pairs in the same order, same step progression, and an identical
        # fault-injector event log.
        assert declarative.severed == manual.severed
        assert [step.total_severed for step in declarative.steps] == [
            step.total_severed for step in manual.steps
        ]
        assert result.fault_events == manual_events

    def test_handover_workload_requires_station(self):
        spec = ExperimentSpec(
            name="handover-bad",
            scenario=ScenarioSpec(name="iridium"),
            workload=WorkloadSpec(app="handover"),
        )
        with pytest.raises(ExperimentSpecError, match="station"):
            ExperimentRunner(spec).run()

    def test_handover_rejects_fault_program(self):
        spec = ExperimentSpec(
            name="handover-faulted",
            scenario=ScenarioSpec(name="iridium"),
            workload=WorkloadSpec(app="handover", params={"station": "hawaii"}),
            fault_program=(FaultOp(kind="reboot", target="hawaii"),),
        )
        with pytest.raises(ExperimentSpecError, match="fault program"):
            ExperimentRunner(spec).run()

    def test_handover_workload_runs(self):
        spec = ExperimentSpec(
            name="handover-ok",
            scenario=ScenarioSpec(
                name="iridium", params={"duration_s": 120.0, "update_interval_s": 60.0}
            ),
            workload=WorkloadSpec(
                app="handover",
                params={"station": "hawaii", "duration_s": 120.0, "interval_s": 60.0},
            ),
        )
        result = ExperimentRunner(spec).run()
        assert result.title.startswith("Uplink handovers of hawaii")
        assert [row[0] for row in result.metrics] == [
            "handovers",
            "handovers per minute",
            "mean uplink duration [s]",
            "coverage fraction",
        ]


class TestResultBundle:
    def test_bundle_written_for_none_workload(self, tmp_path):
        spec = ExperimentSpec(
            name="bundle-smoke",
            scenario=ScenarioSpec(
                name="iridium", params={"duration_s": 60.0, "update_interval_s": 30.0}
            ),
            workload=WorkloadSpec(app="none"),
            fault_program=(FaultOp(kind="reboot", at_s=30.0, target="hawaii"),),
            metrics=MetricsSpec(outputs=("summary", "resource-traces", "fault-events")),
        )
        output_dir = tmp_path / "bundle"
        result = ExperimentRunner(spec, output_dir=output_dir).run()
        names = {path.name for path in result.output_paths}
        assert "result.json" in names
        assert "fault_events.json" in names
        assert any(name.startswith("resources_host") for name in names)
        summary = json.loads((output_dir / "result.json").read_text())
        assert summary["spec"]["name"] == "bundle-smoke"
        assert summary["fault_events"] == 1
        events = json.loads((output_dir / "fault_events.json").read_text())
        assert events[0]["machine"] == "hawaii"
        assert events[0]["kind"] == "reboot"


class TestTransportLatency:
    def test_process_backend_reports_per_worker_ack_latency(self):
        from repro.core.testbed import Celestial

        config = build("iridium", duration_s=40.0, update_interval_s=20.0)
        testbed = Celestial(config, parallelism="processes", worker_count=2)
        try:
            testbed.start()
            testbed.run()
            stats = testbed.coordinator.stats
            assert sorted(stats.worker_ack_seconds) == [0, 1]
            for samples in stats.worker_ack_seconds.values():
                assert samples
                assert all(latency > 0 for latency in samples)
        finally:
            testbed.close()

    def test_thread_backend_has_no_transport_latency(self):
        from repro.core.testbed import Celestial

        config = build("iridium", duration_s=40.0, update_interval_s=20.0)
        testbed = Celestial(config)
        try:
            testbed.start()
            testbed.run()
            assert testbed.coordinator.stats.worker_ack_seconds == {}
        finally:
            testbed.close()
