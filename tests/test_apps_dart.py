"""Integration tests for the §5 DART ocean environment alert experiment."""

import pytest

from repro import Celestial
from repro.apps import DartExperiment
from repro.scenarios import dart_configuration


def _run(deployment, buoy_count=20, sink_count=40, duration_s=60.0, seed=0, **kwargs):
    config = dart_configuration(
        deployment=deployment,
        buoy_count=buoy_count,
        sink_count=sink_count,
        duration_s=duration_s,
        seed=seed,
    )
    testbed = Celestial(config)
    experiment = DartExperiment(testbed, deployment=deployment, group_count=5, **kwargs)
    return experiment.run()


@pytest.fixture(scope="module")
def central_results():
    return _run("central")


@pytest.fixture(scope="module")
def satellite_results():
    return _run("satellite")


class TestDartExperiment:
    def test_readings_flow_end_to_end(self, central_results):
        assert central_results.readings_sent > 1000
        assert central_results.results_delivered > 1000
        assert len(central_results.mean_latency_per_sink()) > 20

    def test_satellite_deployment_reduces_latency(self, central_results, satellite_results):
        central_mean = central_results.all_latencies().mean()
        satellite_mean = satellite_results.all_latencies().mean()
        # Paper: 22-183 ms centrally vs 13-90 ms on satellites — roughly halved.
        assert satellite_mean < central_mean
        assert central_mean / satellite_mean > 1.5

    def test_latency_ranges_have_paper_shape(self, central_results, satellite_results):
        central_low, central_high = central_results.latency_range_ms()
        satellite_low, satellite_high = satellite_results.latency_range_ms()
        assert satellite_low < central_low
        assert satellite_high < central_high
        assert central_high > 2 * central_low

    def test_processing_latency_about_two_ms(self, central_results, satellite_results):
        for results in (central_results, satellite_results):
            assert 1.0 <= results.processing_ms.mean() <= 5.0

    def test_west_pacific_penalty_in_central_deployment(self, central_results):
        regions = central_results.mean_latency_by_region()
        # Requests from the West Pacific cross the Iridium seam towards Hawaii
        # more often, so their latency is higher (Fig. 11a).
        assert regions["west_pacific"] > regions["americas"]

    def test_satellite_deployment_uses_many_inference_sites(self, satellite_results):
        sites = {
            sample.source
            for series in satellite_results.sink_latencies.values()
            for sample in series.samples
        }
        assert len(sites) >= 5

    def test_run_with_real_inference(self):
        results = _run("central", buoy_count=3, sink_count=6, duration_s=10.0, run_inference=True)
        assert results.results_delivered > 0

    def test_unknown_deployment_rejected(self):
        config = dart_configuration(buoy_count=3, sink_count=3, duration_s=10.0)
        with pytest.raises(ValueError):
            DartExperiment(Celestial(config), deployment="edge-of-tomorrow")

    def test_missing_station_rejected(self):
        from repro.orbits import GroundStation

        config = dart_configuration(buoy_count=3, sink_count=3, duration_s=10.0)
        with pytest.raises(ValueError):
            DartExperiment(
                Celestial(config),
                deployment="central",
                buoys=[GroundStation("buoy-999", 0.0, 170.0)],
            )
