"""Unit tests for the network graph, uplink selection and shortest paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orbits import Shell, ShellGeometry, GroundStation, geodetic_to_ecef
from repro.topology import (
    Link,
    LinkType,
    NetworkGraph,
    NodeIndex,
    ShortestPaths,
    visible_satellites,
)
from repro.topology.uplinks import closest_visible_satellite


def _simple_index():
    return NodeIndex(shell_sizes=[4], ground_station_names=["gst-a", "gst-b"])


def _line_graph():
    """0 -1ms- 1 -2ms- 2 -3ms- 3, gst-a connected to 0, gst-b connected to 3."""
    index = _simple_index()
    graph = NetworkGraph(index)
    delays = {(0, 1): 1.0, (1, 2): 2.0, (2, 3): 3.0}
    for (a, b), delay in delays.items():
        graph.add_link(Link(a, b, delay * 300.0, delay, 10_000.0, LinkType.ISL))
    graph.add_link(Link(index.ground_station("gst-a"), 0, 300.0, 1.0, 10_000.0, LinkType.UPLINK))
    graph.add_link(Link(index.ground_station("gst-b"), 3, 300.0, 1.0, 10_000.0, LinkType.UPLINK))
    return index, graph


class TestNodeIndex:
    def test_flat_indices(self):
        index = NodeIndex(shell_sizes=[3, 5], ground_station_names=["x"])
        assert index.satellite(0, 0) == 0
        assert index.satellite(0, 2) == 2
        assert index.satellite(1, 0) == 3
        assert index.satellite(1, 4) == 7
        assert index.ground_station("x") == 8
        assert len(index) == 9

    def test_describe_roundtrip(self):
        index = NodeIndex(shell_sizes=[3, 5], ground_station_names=["x", "y"])
        assert index.describe(4) == ("sat", 1, 1)
        assert index.describe(9) == ("gst", -1, "y")

    def test_ranges(self):
        index = NodeIndex(shell_sizes=[3, 5], ground_station_names=["x", "y"])
        assert list(index.satellites_of_shell(1)) == [3, 4, 5, 6, 7]
        assert list(index.ground_station_indices()) == [8, 9]
        assert index.is_satellite(0) and not index.is_ground_station(0)
        assert index.is_ground_station(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeIndex([3], ["a", "a"])
        with pytest.raises(ValueError):
            NodeIndex([0], [])
        index = _simple_index()
        with pytest.raises(IndexError):
            index.satellite(0, 99)
        with pytest.raises(IndexError):
            index.satellite(5, 0)
        with pytest.raises(KeyError):
            index.ground_station("nope")
        with pytest.raises(IndexError):
            index.describe(100)


class TestNetworkGraph:
    def test_add_and_query_links(self):
        index, graph = _line_graph()
        assert graph.total_links() == 5
        assert graph.degree(1) == 2
        assert graph.link_between(0, 1).delay_ms == 1.0
        assert graph.link_between(0, 3) is None
        assert graph.bandwidth_between(0, 1) == 10_000.0
        assert graph.bandwidth_between(0, 3) == 0.0

    def test_link_other_endpoint(self):
        link = Link(1, 2, 100.0, 0.5, 1000.0)
        assert link.other(1) == 2
        assert link.other(2) == 1
        with pytest.raises(ValueError):
            link.other(3)

    def test_invalid_links_rejected(self):
        index, graph = _line_graph()
        with pytest.raises(ValueError):
            graph.add_link(Link(0, 0, 1.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            graph.add_link(Link(0, 99, 1.0, 1.0, 1.0))

    def test_delay_matrix_symmetric(self):
        _, graph = _line_graph()
        matrix = graph.delay_matrix().toarray()
        np.testing.assert_allclose(matrix, matrix.T)
        assert matrix[0, 1] == 1.0

    def test_networkx_export(self):
        _, graph = _line_graph()
        nx_graph = graph.as_networkx()
        assert nx_graph.number_of_edges() == 5
        assert nx_graph[0][1]["delay_ms"] == 1.0

    def test_empty_graph_delay_matrix(self):
        index = _simple_index()
        graph = NetworkGraph(index)
        assert graph.delay_matrix().nnz == 0

    def test_bulk_add_links_matches_individual_adds(self):
        index = _simple_index()
        one_by_one = NetworkGraph(index)
        bulk = NetworkGraph(index)
        links = [
            Link(0, 1, 300.0, 1.0, 1000.0, LinkType.ISL),
            Link(1, 2, 600.0, 2.0, 2000.0, LinkType.ISL),
            Link(2, 3, 900.0, 3.0, 3000.0, LinkType.ISL),
        ]
        for link in links:
            one_by_one.add_link(link)
        bulk.add_links(
            np.array([0, 1, 2]),
            np.array([1, 2, 3]),
            np.array([300.0, 600.0, 900.0]),
            np.array([1.0, 2.0, 3.0]),
            np.array([1000.0, 2000.0, 3000.0]),
            LinkType.ISL,
        )
        assert bulk.links == one_by_one.links
        assert (bulk.delay_matrix() != one_by_one.delay_matrix()).nnz == 0

    def test_bulk_add_links_validation(self):
        graph = NetworkGraph(_simple_index())
        with pytest.raises(ValueError):
            graph.add_links(np.array([0]), np.array([0]), 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            graph.add_links(np.array([0]), np.array([99]), 1.0, 1.0, 1.0)
        # Empty appends are a no-op.
        graph.add_links(np.array([], dtype=int), np.array([], dtype=int), 1.0, 1.0, 1.0)
        assert graph.total_links() == 0

    def test_zero_delay_link_is_not_dropped(self):
        """Regression: csgraph treats explicit zeros as no-edge, which made
        co-located nodes (zero-delay links) unreachable."""
        index = _simple_index()
        graph = NetworkGraph(index)
        graph.add_link(Link(0, 1, 0.0, 0.0, 1000.0))
        graph.add_link(Link(1, 2, 300.0, 1.0, 1000.0))
        assert graph.delay_matrix()[0, 1] > 0.0
        for method in ("dijkstra", "floyd-warshall"):
            paths = ShortestPaths(graph, sources=[0], method=method)
            assert paths.reachable(0, 1)
            assert paths.delay_ms(0, 1) == pytest.approx(0.0, abs=1e-6)
            assert paths.path(0, 1).hops == (0, 1)
            assert paths.delay_ms(0, 2) == pytest.approx(1.0, abs=1e-6)
            assert paths.path(0, 2).hops == (0, 1, 2)

    def test_duplicate_links_keep_minimum_delay(self):
        """Regression: duplicate node pairs were silently summed by the
        COO→CSR construction of delay_matrix, inflating delays."""
        index = _simple_index()
        graph = NetworkGraph(index)
        graph.add_link(Link(0, 1, 1500.0, 5.0, 1000.0))
        graph.add_link(Link(0, 1, 600.0, 2.0, 2000.0))
        graph.add_link(Link(1, 0, 900.0, 3.0, 3000.0))
        assert graph.total_links() == 1
        assert graph.link_between(0, 1).delay_ms == 2.0
        assert graph.delay_matrix()[0, 1] == pytest.approx(2.0)
        paths = ShortestPaths(graph, sources=[0])
        assert paths.delay_ms(0, 1) == pytest.approx(2.0)

    def test_adjacency_queries_match_link_list(self):
        index, graph = _line_graph()
        for node in range(len(index)):
            incident = graph.links_of(node)
            assert graph.degree(node) == len(incident)
            assert all(node in (link.node_a, link.node_b) for link in incident)
            neighbors = {link.other(node) for link in incident}
            assert set(graph.neighbors_of(node).tolist()) == neighbors

    def test_out_of_range_queries_are_empty(self):
        """Seed behaviour: queries about unknown nodes return empty results
        instead of raising or (worse) wrapping around via negative indexing."""
        index, graph = _line_graph()
        for node in (-1, len(index), len(index) + 5):
            assert graph.links_of(node) == []
            assert graph.degree(node) == 0
            assert graph.neighbors_of(node).size == 0
        assert graph.link_between(-1, 0) is None
        assert graph.bandwidth_between(0, len(index)) == 0.0

    def test_edge_ids_between_vectorized_lookup(self):
        index, graph = _line_graph()
        edges = graph.edge_ids_between(np.array([0, 1, 0]), np.array([1, 2, 3]))
        assert edges[0] >= 0 and edges[1] >= 0
        assert edges[2] == -1
        assert graph.delays_ms[edges[0]] == 1.0
        assert graph.delays_ms[edges[1]] == 2.0


class TestShortestPaths:
    def test_end_to_end_delay(self):
        index, graph = _line_graph()
        paths = ShortestPaths(graph, sources=[index.ground_station("gst-a")])
        gst_a = index.ground_station("gst-a")
        gst_b = index.ground_station("gst-b")
        assert paths.delay_ms(gst_a, gst_b) == pytest.approx(1.0 + 1.0 + 2.0 + 3.0 + 1.0)
        assert paths.rtt_ms(gst_a, gst_b) == pytest.approx(16.0)

    def test_path_reconstruction(self):
        index, graph = _line_graph()
        gst_a = index.ground_station("gst-a")
        gst_b = index.ground_station("gst-b")
        paths = ShortestPaths(graph, sources=[gst_a])
        result = paths.path(gst_a, gst_b)
        assert result.hops == (gst_a, 0, 1, 2, 3, gst_b)
        assert result.hop_count == 5
        assert result.reachable

    def test_unreachable_node(self):
        index = NodeIndex([2], ["isolated"])
        graph = NetworkGraph(index)
        graph.add_link(Link(0, 1, 300.0, 1.0, 1000.0))
        paths = ShortestPaths(graph, sources=[0])
        isolated = index.ground_station("isolated")
        assert not paths.reachable(0, isolated)
        assert paths.path(0, isolated).hops == ()
        assert not paths.path(0, isolated).reachable

    def test_self_path(self):
        index, graph = _line_graph()
        paths = ShortestPaths(graph, sources=[0])
        result = paths.path(0, 0)
        assert result.delay_ms == 0.0
        assert result.hops == (0,)

    def test_dijkstra_and_floyd_warshall_agree(self):
        index, graph = _line_graph()
        dijkstra = ShortestPaths(graph, method="dijkstra")
        floyd = ShortestPaths(graph, method="floyd-warshall")
        for a in range(len(index)):
            for b in range(len(index)):
                assert dijkstra.delay_ms(a, b) == pytest.approx(floyd.delay_ms(a, b))

    def test_unknown_method_and_sources_validation(self):
        index, graph = _line_graph()
        with pytest.raises(ValueError):
            ShortestPaths(graph, method="bellman-ford")
        with pytest.raises(ValueError):
            ShortestPaths(graph, sources=[])
        with pytest.raises(ValueError):
            ShortestPaths(graph, sources=[999])
        paths = ShortestPaths(graph, sources=[0])
        with pytest.raises(KeyError):
            paths.delay_ms(1, 2)

    def test_nearest_selection(self):
        index, graph = _line_graph()
        gst_a = index.ground_station("gst-a")
        paths = ShortestPaths(graph, sources=[gst_a])
        assert paths.nearest(gst_a, [2, 3]) == 2
        assert paths.nearest(gst_a, []) is None
        # Accepts any iterable and returns a plain int.
        assert paths.nearest(gst_a, iter((3, 2, 1))) == 1
        assert isinstance(paths.nearest(gst_a, [2, 3]), int)

    def test_nearest_vectorized_matches_scalar_loop(self):
        """The one-gather ``nearest`` equals the per-candidate delay scan,
        including unreachable candidates and ties."""
        index = NodeIndex([6], ["isolated", "gst"])
        graph = NetworkGraph(index)
        for a, b, delay in [(0, 1, 2.0), (1, 2, 1.0), (2, 3, 4.0), (3, 4, 1.0), (0, 5, 3.0)]:
            graph.add_link(Link(a, b, delay * 300.0, delay, 1000.0))
        graph.add_link(Link(index.ground_station("gst"), 0, 300.0, 1.0, 1000.0, LinkType.UPLINK))
        paths = ShortestPaths(graph, sources=[0])
        isolated = index.ground_station("isolated")
        for candidates in ([1, 2, 3], [isolated], [isolated, 4], [5, 3], list(range(len(index)))):
            delays = [paths.delay_ms(0, c) for c in candidates]
            best = int(np.argmin(delays))
            expected = None if not np.isfinite(delays[best]) else candidates[best]
            assert paths.nearest(0, candidates) == expected
        assert paths.nearest(0, [isolated]) is None

    def test_delays_from_vector(self):
        index, graph = _line_graph()
        paths = ShortestPaths(graph, sources=[0])
        delays = paths.delays_from(0)
        assert delays.shape == (len(index),)
        assert delays[0] == 0.0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
            st.floats(min_value=0.0, max_value=50.0),
        ),
        min_size=1,
        max_size=15,
    )
)
def test_property_path_hop_delays_sum_to_delay(edges):
    """The delay of every reconstructed path equals the sum of its hop delays
    (up to the zero-delay epsilon clamp of the delay matrix)."""
    index = NodeIndex(shell_sizes=[6], ground_station_names=[])
    graph = NetworkGraph(index)
    for node_a, node_b, delay in edges:
        if node_a == node_b:
            continue
        graph.add_link(Link(node_a, node_b, delay * 300.0, delay, 1000.0))
    if graph.total_links() == 0:
        return
    paths = ShortestPaths(graph, sources=[0])
    for target in range(len(index)):
        result = paths.path(0, target)
        if not result.reachable:
            continue
        hop_sum = sum(
            graph.link_between(a, b).delay_ms
            for a, b in zip(result.hops, result.hops[1:])
        )
        assert result.delay_ms == pytest.approx(hop_sum, abs=1e-6)
        assert result.delay_ms == pytest.approx(paths.delay_ms(0, target))


class TestUplinks:
    def test_visible_satellites_directly_overhead(self):
        shell = Shell(ShellGeometry(6, 11, 780.0, 86.4, 180.0))
        positions = shell.positions_eci(0.0)
        ground = geodetic_to_ecef(0.0, 0.0, 0.0)
        visible, distances = visible_satellites(ground, positions, min_elevation_deg=10.0)
        assert visible.size > 0
        # Slant range can be marginally below the nominal altitude because the
        # WGS-84 equatorial radius exceeds the spherical radius used for the shell.
        assert np.all(distances >= 770.0)
        assert np.all(distances < 3500.0)

    def test_higher_min_elevation_reduces_visibility(self):
        shell = Shell(ShellGeometry(6, 11, 780.0, 86.4, 180.0))
        positions = shell.positions_eci(0.0)
        ground = geodetic_to_ecef(30.0, 45.0, 0.0)
        lenient, _ = visible_satellites(ground, positions, min_elevation_deg=5.0)
        strict, _ = visible_satellites(ground, positions, min_elevation_deg=60.0)
        assert strict.size <= lenient.size

    def test_closest_visible_satellite(self):
        shell = Shell(ShellGeometry(6, 11, 780.0, 86.4, 180.0))
        positions = shell.positions_eci(0.0)
        ground = geodetic_to_ecef(0.0, 0.0, 0.0)
        result = closest_visible_satellite(ground, positions, min_elevation_deg=10.0)
        assert result is not None
        index, distance = result
        visible, distances = visible_satellites(ground, positions, min_elevation_deg=10.0)
        assert distance == pytest.approx(float(np.min(distances)))
        assert index in set(visible.tolist())

    def test_no_visible_satellite_returns_none(self):
        # A single-satellite shell on the other side of the planet.
        shell = Shell(ShellGeometry(1, 1, 550.0, 0.0))
        positions = shell.positions_eci(0.0)
        antipode = geodetic_to_ecef(0.0, 180.0, 0.0)
        assert closest_visible_satellite(antipode, positions, 25.0) is None
