"""Unit tests for hosts, resource traces and machine placement."""

import numpy as np
import pytest

from repro.hosts import (
    Host,
    HostError,
    PlacementError,
    ResourceTrace,
    UsageSample,
    place_machines,
)
from repro.microvm import MachineResources, MicroVM


def _machine(name, vcpus=2, memory=512):
    return MicroVM(name, MachineResources(vcpu_count=vcpus, memory_mib=memory),
                   rng=np.random.default_rng(0))


class TestResourceTrace:
    def test_record_and_query(self):
        trace = ResourceTrace()
        for t in range(5):
            trace.record(UsageSample(
                time_s=float(t),
                machine_manager_cpu_percent=0.2,
                microvm_cpu_percent=10.0 + t,
                machine_manager_memory_percent=4.0,
                microvm_memory_percent=12.0,
                firecracker_processes=40,
            ))
        assert len(trace) == 5
        assert trace.peak_cpu_percent() == pytest.approx(14.2)
        assert trace.peak_memory_percent() == pytest.approx(16.0)
        assert trace.mean_cpu_percent(after_s=3.0) == pytest.approx(0.2 + 13.5)
        assert trace.cpu_percent().shape == (5,)
        assert trace.firecracker_processes()[0] == 40

    def test_out_of_order_samples_rejected(self):
        trace = ResourceTrace()
        sample = UsageSample(5.0, 0.2, 1.0, 4.0, 10.0, 3)
        trace.record(sample)
        with pytest.raises(ValueError):
            trace.record(UsageSample(4.0, 0.2, 1.0, 4.0, 10.0, 3))

    def test_empty_trace(self):
        trace = ResourceTrace()
        assert trace.peak_cpu_percent() == 0.0
        assert trace.mean_cpu_percent() == 0.0


class TestHost:
    def test_memory_is_hard_constraint(self):
        host = Host(index=0, cpu_cores=4, memory_mib=1024)
        host.place(_machine("a", memory=512))
        host.place(_machine("b", memory=512))
        # Machines reserve memory only once booted; placement checks the
        # allocation limit regardless.
        with pytest.raises(HostError):
            host.place(_machine("c", memory=512))

    def test_memory_accounting_follows_boot(self):
        host = Host(index=0, cpu_cores=4, memory_mib=4096)
        machine = _machine("a", memory=1024)
        host.place(machine)
        assert host.allocated_memory_mib() == 0.0
        machine.boot(0.0)
        assert host.allocated_memory_mib() == 1024.0
        assert host.microvm_memory_percent() == pytest.approx(25.0)

    def test_cpu_overprovisioning_allowed(self):
        host = Host(index=0, cpu_cores=4, memory_mib=32 * 1024)
        for i in range(10):
            host.place(_machine(f"m{i}", vcpus=2, memory=512))
        assert host.allocated_vcpus() == 20
        assert host.allocated_vcpus() > host.cpu_cores

    def test_duplicate_placement_rejected(self):
        host = Host(index=0)
        machine = _machine("a")
        host.place(machine)
        with pytest.raises(HostError):
            host.place(machine)

    def test_busy_fraction_affects_cpu_usage(self):
        host = Host(index=0, cpu_cores=32, memory_mib=32 * 1024)
        machine = _machine("client", vcpus=4, memory=4096)
        host.place(machine)
        machine.boot(0.0)
        idle_usage = host.cpu_cores_in_use()
        host.set_busy_fraction("client", 1.0)
        assert host.cpu_cores_in_use() == pytest.approx(4.0)
        assert host.cpu_cores_in_use() > idle_usage
        with pytest.raises(ValueError):
            host.set_busy_fraction("client", 1.5)
        with pytest.raises(HostError):
            host.set_busy_fraction("ghost", 0.5)

    def test_usage_sampling(self):
        host = Host(index=0, cpu_cores=32, memory_mib=32 * 1024)
        rng = np.random.default_rng(3)
        machines = [_machine(f"sat-{i}", vcpus=2, memory=512) for i in range(20)]
        for machine in machines:
            host.place(machine)
            machine.boot(0.0)
        setup = host.sample_usage(0.0, setup_phase=True, rng=rng)
        steady = host.sample_usage(60.0, rng=rng)
        assert setup.machine_manager_cpu_percent > steady.machine_manager_cpu_percent
        assert steady.firecracker_processes == 20
        assert steady.microvm_memory_percent == pytest.approx(100.0 * 20 * 512 / (32 * 1024))
        assert len(host.trace) == 2

    def test_remove_machine(self):
        host = Host(index=0)
        machine = _machine("a")
        host.place(machine)
        host.remove("a")
        assert host.machines == {}
        with pytest.raises(HostError):
            host.machine("a")

    def test_invalid_host_resources(self):
        with pytest.raises(ValueError):
            Host(index=0, cpu_cores=0)


class TestPlacement:
    def test_round_robin_by_free_memory(self):
        hosts = [Host(index=i, cpu_cores=32, memory_mib=8192) for i in range(3)]
        machines = [_machine(f"sat-{i}", memory=1024) for i in range(9)]
        placement = place_machines(machines, hosts)
        counts = [len(placement.machines_on(i)) for i in range(3)]
        assert sum(counts) == 9
        assert max(counts) - min(counts) <= 1

    def test_affinity_group_shares_host(self):
        hosts = [Host(index=i, cpu_cores=32, memory_mib=32 * 1024) for i in range(3)]
        machines = [_machine(f"client-{i}", vcpus=4, memory=4096) for i in range(3)]
        machines += [_machine(f"sat-{i}", memory=512) for i in range(10)]
        placement = place_machines(
            machines, hosts, affinity_groups=[["client-0", "client-1", "client-2"]]
        )
        assert placement.colocated("client-0", "client-1")
        assert placement.colocated("client-1", "client-2")

    def test_unplaceable_machine_raises(self):
        hosts = [Host(index=0, cpu_cores=4, memory_mib=1024)]
        machines = [_machine("big", memory=2048)]
        with pytest.raises(PlacementError):
            place_machines(machines, hosts)

    def test_unknown_affinity_member_raises(self):
        hosts = [Host(index=0)]
        with pytest.raises(PlacementError):
            place_machines([_machine("a")], hosts, affinity_groups=[["a", "ghost"]])

    def test_no_hosts_raises(self):
        with pytest.raises(PlacementError):
            place_machines([_machine("a")], [])

    def test_duplicate_machine_names_raise(self):
        hosts = [Host(index=0)]
        with pytest.raises(PlacementError):
            place_machines([_machine("a"), _machine("a")], hosts)

    def test_placement_lookup_errors(self):
        hosts = [Host(index=0)]
        placement = place_machines([_machine("a")], hosts)
        assert placement.host_for("a") == 0
        with pytest.raises(KeyError):
            placement.host_for("ghost")
