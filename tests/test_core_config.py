"""Unit tests for the Celestial configuration model."""

import pytest

from repro.core.config import (
    ComputeParams,
    Configuration,
    ConfigurationError,
    GroundStationConfig,
    HostConfig,
    NetworkParams,
    ShellConfig,
)
from repro.orbits import Epoch, GroundStation, ShellGeometry


def _shell(name="shell-0", planes=6, per_plane=11):
    return ShellConfig(name=name, geometry=ShellGeometry(planes, per_plane, 780.0, 86.4, 180.0))


def _config(**overrides):
    parameters = dict(
        shells=(_shell(),),
        ground_stations=(
            GroundStationConfig(station=GroundStation("hawaii", 21.3, -157.9)),
        ),
        update_interval_s=5.0,
        duration_s=600.0,
    )
    parameters.update(overrides)
    return Configuration(**parameters)


class TestParams:
    def test_network_params_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkParams(isl_bandwidth_kbps=0.0)
        with pytest.raises(ConfigurationError):
            NetworkParams(min_elevation_deg=95.0)

    def test_compute_params_validation(self):
        with pytest.raises(ConfigurationError):
            ComputeParams(vcpu_count=0)
        with pytest.raises(ConfigurationError):
            ComputeParams(cpu_quota=0.0)
        with pytest.raises(ConfigurationError):
            ComputeParams(idle_cpu_fraction=2.0)

    def test_host_config_totals(self):
        hosts = HostConfig(count=3, cpu_cores=32, memory_mib=32 * 1024)
        assert hosts.total_cores == 96
        assert hosts.total_memory_mib == 96 * 1024
        with pytest.raises(ConfigurationError):
            HostConfig(count=0)

    def test_shell_config_requires_name(self):
        with pytest.raises(ConfigurationError):
            ShellConfig(name="", geometry=ShellGeometry(6, 11, 780.0, 86.4))


class TestConfiguration:
    def test_basic_properties(self):
        config = _config()
        assert config.total_satellites == 66
        assert config.total_machines == 67
        assert config.shell_sizes == [66]
        assert config.ground_station_names == ["hawaii"]
        assert config.update_steps() == 121

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            Configuration(shells=())
        with pytest.raises(ConfigurationError):
            _config(update_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            _config(duration_s=-1.0)
        with pytest.raises(ConfigurationError):
            _config(shells=(_shell("a"), _shell("a")))
        with pytest.raises(ConfigurationError):
            _config(
                ground_stations=(
                    GroundStationConfig(station=GroundStation("x", 0.0, 0.0)),
                    GroundStationConfig(station=GroundStation("x", 1.0, 1.0)),
                )
            )

    def test_ground_station_lookup(self):
        config = _config()
        assert config.ground_station_config("hawaii").station.latitude_deg == 21.3
        with pytest.raises(ConfigurationError):
            config.ground_station_config("unknown")

    def test_dict_roundtrip(self):
        config = _config()
        rebuilt = Configuration.from_dict(config.to_dict())
        assert rebuilt.total_satellites == config.total_satellites
        assert rebuilt.ground_station_names == config.ground_station_names
        assert rebuilt.update_interval_s == config.update_interval_s
        assert rebuilt.epoch.start == config.epoch.start
        assert rebuilt.shells[0].geometry == config.shells[0].geometry

    def test_from_dict_with_bounding_box_and_hosts(self):
        data = _config().to_dict()
        data["bounding_box"] = {"lat_min": -5.0, "lat_max": 20.0, "lon_min": -15.0, "lon_max": 20.0}
        data["hosts"] = {"count": 3, "cpu_cores": 32, "memory_mib": 32768}
        config = Configuration.from_dict(data)
        assert config.bounding_box.lat_max == 20.0
        assert config.hosts.count == 3

    def test_from_dict_invalid(self):
        with pytest.raises(ConfigurationError):
            Configuration.from_dict({"shells": [{"name": "x"}]})

    def test_from_toml(self, tmp_path):
        toml_text = """
        epoch = "2022-01-01T00:00:00"
        update_interval_s = 2.0
        duration_s = 60.0

        [[shells]]
        name = "iridium"
        [shells.geometry]
        planes = 6
        satellites_per_plane = 11
        altitude_km = 780.0
        inclination_deg = 86.4
        arc_of_ascending_nodes_deg = 180.0

        [[ground_stations]]
        name = "hawaii"
        latitude_deg = 21.3
        longitude_deg = -157.9
        """
        path = tmp_path / "config.toml"
        path.write_text(toml_text)
        config = Configuration.from_toml(path)
        assert config.total_satellites == 66
        assert config.duration_s == 60.0
        assert config.ground_station_names == ["hawaii"]

    def test_epoch_default_and_custom(self):
        from datetime import datetime

        config = _config(epoch=Epoch(datetime(2023, 6, 1)))
        assert config.epoch.start == datetime(2023, 6, 1)
