"""Process-backend equivalence and supervision tests.

The contract: ``Coordinator(parallelism="processes")`` is an observable
no-op relative to the default thread backend — suspend/resume counters,
dirty-machine reconciliation, machine states and usage samples are
byte/count-identical over many epochs, **including** a worker crash that is
recovered by replaying the durable control ledger plus the constellation
database's keyframe + diff chain.

The equivalence tests are parametrized over the worker transport: the
``pipe`` rows pin the PR 4 behaviour, the ``tcp`` rows prove the
remote-worker wire path (length-prefixed frames, handshake, reconnect
after SIGKILL) is byte/count-identical over localhost.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    BoundingBox,
    Celestial,
    ComputeParams,
    Configuration,
    ConstellationCalculation,
    ConstellationDatabase,
    Coordinator,
    FaultInjector,
    GroundStationConfig,
    MachineManager,
    NetworkParams,
    ShellConfig,
)
from repro.dist.backend import ProcessFanoutBackend
from repro.dist.supervisor import WorkerCrashError
from repro.hosts import Host
from repro.orbits import GroundStation, ShellGeometry
from repro.scenarios import west_africa_configuration


def _iridium_box_config(update_interval_s=60.0, duration_s=1200.0):
    return Configuration(
        shells=(
            ShellConfig(
                name="iridium",
                geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                network=NetworkParams(min_elevation_deg=8.2),
                compute=ComputeParams(vcpu_count=1, memory_mib=1024),
            ),
        ),
        ground_stations=(
            GroundStationConfig(
                station=GroundStation("hawaii", 21.3, -157.9),
                compute=ComputeParams(vcpu_count=8, memory_mib=8192),
            ),
        ),
        bounding_box=BoundingBox(-35.0, 35.0, -180.0, -100.0),
        update_interval_s=update_interval_s,
        duration_s=duration_s,
    )


def _coordinator(config, parallelism, host_count=3, worker_count=2, transport="pipe"):
    calculation = ConstellationCalculation(config)
    managers = [
        MachineManager(
            Host(index=i, allow_memory_overcommit=True),
            rng=np.random.default_rng(1000 + i),
        )
        for i in range(host_count)
    ]
    coordinator = Coordinator(
        config,
        calculation,
        ConstellationDatabase(keyframe_interval=5),
        managers,
        parallelism=parallelism,
        worker_count=worker_count,
        transport=transport,
    )
    coordinator.create_ground_stations(0.0)
    return coordinator


def _counters(coordinator):
    return sorted(
        (manager.suspension_count, manager.resume_count, manager.applied_diffs)
        for manager in coordinator.managers
    )


def _machine_states(coordinator):
    return {
        name: manager.host.machines[name].state
        for manager in coordinator.managers
        for name in manager.host.machines
    }


def _assert_equivalent(threads, processes):
    assert _counters(threads) == _counters(processes)
    assert _machine_states(threads) == _machine_states(processes)
    # Even sub-second boot jitter is backend-invariant: machines created
    # mid-run (after usage samples) seed from lockstepped RNG streams.
    for backend_coordinator in (threads, processes):
        boot_times = {
            name: manager.host.machines[name]._boot_finished_at_s
            for manager in backend_coordinator.managers
            for name in manager.host.machines
        }
        if backend_coordinator is threads:
            reference_boot_times = boot_times
    assert boot_times == reference_boot_times
    # The worker-side counters (not just the in-process shadows) must agree
    # with the thread backend too — they are the authoritative copies.
    worker_counters = processes._backend.worker_counters()
    for position, shadow in enumerate(processes._backend.shadows):
        snapshot = worker_counters[position]
        assert snapshot["suspension_count"] == shadow.suspension_count
        assert snapshot["resume_count"] == shadow.resume_count
        assert snapshot["applied_diffs"] == shadow.applied_diffs


class TestProcessBackendEquivalence:
    @pytest.mark.parametrize("transport", ["pipe", "tcp"])
    def test_iridium_counters_states_and_samples(self, transport):
        # Long enough that satellites leave the box, are suspended, come
        # back and are resumed; usage sampled every epoch.
        config = _iridium_box_config(duration_s=1200.0)
        threads = _coordinator(config, "threads")
        processes = _coordinator(config, "processes", transport=transport)
        try:
            for step in range(13):
                now = step * 60.0
                state_t = threads.update(now)
                state_p = processes.update(now)
                for shell in state_t.active_satellites:
                    assert np.array_equal(
                        state_t.active_satellites[shell],
                        state_p.active_satellites[shell],
                    )
                samples_t = threads.sample_all_usage(now, applying_update=True)
                samples_p = processes.sample_all_usage(now, applying_update=True)
                assert samples_t == samples_p  # byte-identical dataclasses
            _assert_equivalent(threads, processes)
            assert sum(c[0] for c in _counters(processes)) > 0
            assert processes.stats.diff_updates == 12
            # The parent-side traces recorded the streamed samples.
            trace_lengths = [
                len(shadow.host.trace) for shadow in processes._backend.shadows
            ]
            assert trace_lengths == [13, 13, 13]
        finally:
            threads.close()
            processes.close()

    @pytest.mark.parametrize("transport", ["pipe", "tcp"])
    def test_starlink_epochs_match(self, transport):
        # Starlink (two lowest shells, West-Africa bounding box), ≥ 10
        # epochs through the differential pipeline on both backends.
        config = west_africa_configuration(duration_s=60.0, shells="two-lowest")
        threads = _coordinator(config, "threads", host_count=4, worker_count=2)
        processes = _coordinator(
            config, "processes", host_count=4, worker_count=2, transport=transport
        )
        try:
            for step in range(11):
                now = step * config.update_interval_s
                threads.update(now)
                processes.update(now)
            samples_t = threads.sample_all_usage(20.0, applying_update=True)
            samples_p = processes.sample_all_usage(20.0, applying_update=True)
            assert samples_t == samples_p
            _assert_equivalent(threads, processes)
            assert processes.stats.diff_updates == 10
        finally:
            threads.close()
            processes.close()

    def test_dirty_machine_reconciliation_after_fault_injection(self):
        config = _iridium_box_config()
        threads = _coordinator(config, "threads")
        processes = _coordinator(config, "processes")
        try:
            for coordinator in (threads, processes):
                coordinator.update(0.0)
            # Reboot a suspended (out-of-box) satellite through the
            # fault-injection API: it comes back RUNNING although it is
            # outside the box, and the next update must suspend it again on
            # both backends (the process backend ships it in dirty_active).
            state = processes.database.state
            outside = int(np.nonzero(~state.active_satellites[0])[0][0])
            for coordinator in (threads, processes):
                injector = FaultInjector(manager_resolver=coordinator.manager_for)
                victim = coordinator.calculation.satellite(0, outside)
                if not coordinator.has_machine(victim):
                    coordinator.create_machine(victim, 10.0)
                injector.reboot(victim, 20.0)
                injector.degrade_cpu(victim, 0.25, 21.0)
            for coordinator in (threads, processes):
                coordinator.update(60.0)
                victim = coordinator.calculation.satellite(0, outside)
                machine = coordinator.manager_for(victim).machine(victim)
                assert machine.state.value == "suspended"
                assert machine.cpu_quota.quota_fraction == 0.25
            _assert_equivalent(threads, processes)
        finally:
            threads.close()
            processes.close()

    @pytest.mark.parametrize("transport", ["pipe", "tcp"])
    def test_worker_crash_recovered_by_keyframe_diff_replay(self, transport):
        config = _iridium_box_config(duration_s=2400.0)
        threads = _coordinator(config, "threads")
        processes = _coordinator(config, "processes", transport=transport)
        try:
            for step in range(7):
                now = step * 60.0
                threads.update(now)
                processes.update(now)
                assert threads.sample_all_usage(now) == processes.sample_all_usage(now)
            # Kill one worker the hard way (SIGKILL).  The next fan-out's
            # heartbeat sweep detects the death, respawns the worker (over
            # TCP: the successor reconnects to the same listener), replays
            # its control ledger and restores activity from the database's
            # keyframe + diff chain plus the last checkpoint.
            processes._backend.crash_worker(0)
            for step in range(7, 11):
                now = step * 60.0
                threads.update(now)
                processes.update(now)
                assert threads.sample_all_usage(now) == processes.sample_all_usage(now)
            # A second crash later in the run recovers just the same (the
            # successor's ledger/checkpoint lineage stays intact).
            processes._backend.crash_worker(1)
            for step in range(11, 15):
                now = step * 60.0
                threads.update(now)
                processes.update(now)
                assert threads.sample_all_usage(now) == processes.sample_all_usage(now)
            assert processes._backend.restart_count == 2
            _assert_equivalent(threads, processes)
            assert sum(c[0] for c in _counters(processes)) > 0
        finally:
            threads.close()
            processes.close()

    def test_crash_with_dirty_machines_skips_them_in_restore(self):
        # A machine rebooted outside the protocol right before the crash:
        # the restore must leave it to the next slice's dirty_active
        # reconciliation (with counting), exactly like the thread backend.
        config = _iridium_box_config(duration_s=2400.0)
        threads = _coordinator(config, "threads")
        processes = _coordinator(config, "processes")
        try:
            for step in range(6):
                now = step * 60.0
                threads.update(now)
                processes.update(now)
            state = processes.database.state
            outside = int(np.nonzero(~state.active_satellites[0])[0][0])
            for coordinator in (threads, processes):
                victim = coordinator.calculation.satellite(0, outside)
                if not coordinator.has_machine(victim):
                    coordinator.create_machine(victim, 310.0)
                coordinator.manager_for(victim).reboot_machine(victim, 320.0)
            # Crash the worker that owns the dirty machine.
            victim = processes.calculation.satellite(0, outside)
            position = processes.manager_for(victim).position
            processes._backend.crash_worker(position % 2)
            for step in range(6, 12):
                now = step * 60.0
                threads.update(now)
                processes.update(now)
                assert threads.sample_all_usage(now) == processes.sample_all_usage(now)
            assert processes._backend.restart_count == 1
            _assert_equivalent(threads, processes)
            machine = processes.manager_for(victim).machine(victim)
            assert machine.state.value == "suspended"
        finally:
            threads.close()
            processes.close()

    def test_crash_after_shadows_applied_still_counts_dirty_once(self):
        # Worst-case detection point: the worker dies mid-epoch, after the
        # shadows already reconciled the dirty machines and cleared their
        # dirty sets.  The restore skip-set must then come from the
        # in-flight slices' dirty_active maps, so the re-sent slice redoes
        # the counting reconcile exactly once (a desync otherwise).
        from repro.dist import wire
        from repro.dist.wire import FrameKind

        config = _iridium_box_config(duration_s=2400.0)
        threads = _coordinator(config, "threads")
        processes = _coordinator(config, "processes")
        try:
            for step in range(6):
                now = step * 60.0
                threads.update(now)
                processes.update(now)
            state = processes.database.state
            outside = int(np.nonzero(~state.active_satellites[0])[0][0])
            for coordinator in (threads, processes):
                victim = coordinator.calculation.satellite(0, outside)
                if not coordinator.has_machine(victim):
                    coordinator.create_machine(victim, 310.0)
                coordinator.manager_for(victim).reboot_machine(victim, 320.0)
            threads.update(360.0)
            # Drive the process backend's epoch by hand so the crash lands
            # deterministically between the shadow apply and the collect.
            now = 360.0
            state, diff = processes.calculation.diff_since(
                processes.database.state, now
            )
            processes.database.set_state(state, diff=diff)
            processes._ensure_activated_satellites(diff, now)
            slices = processes._shard(state, diff)
            backend = processes._backend
            for shadow, state_slice in zip(backend.shadows, slices):
                shadow.apply_diff(state_slice, now)
            victim = processes.calculation.satellite(0, outside)
            backend.crash_worker(
                backend._worker_of[processes.manager_for(victim).position]
            )
            for position, state_slice in enumerate(slices):
                meta, arrays = wire.slice_payload(state_slice)
                backend.supervisor.begin_request(
                    backend._worker_of[position],
                    FrameKind.APPLY_SLICE,
                    {**meta, "now_s": now, "position": position},
                    arrays,
                )
            acks = {}
            for position in range(len(slices)):
                worker = backend._worker_of[position]
                acks[worker] = backend.supervisor.finish_request(worker)
            backend._verify_counters(acks)  # desynced before the skip fix
            assert backend.restart_count == 1
            for step in range(7, 12):
                now = step * 60.0
                threads.update(now)
                processes.update(now)
                assert threads.sample_all_usage(now) == processes.sample_all_usage(now)
            _assert_equivalent(threads, processes)
        finally:
            threads.close()
            processes.close()

    def test_crash_detected_during_sampling(self):
        config = _iridium_box_config()
        processes = _coordinator(config, "processes")
        try:
            processes.update(0.0)
            processes.update(60.0)
            before = processes.sample_all_usage(60.0)
            processes._backend.crash_worker(1)
            after = processes.sample_all_usage(65.0)
            assert len(after) == len(before)
            assert processes._backend.restart_count == 1
        finally:
            processes.close()


def test_thread_backend_rejects_worker_transport():
    # --transport tcp without --parallelism processes must fail loudly:
    # silently running in-process would fake a passing remote-path run.
    config = _iridium_box_config()
    with pytest.raises(ValueError, match="parallelism='processes'"):
        _coordinator(config, "threads", transport="tcp")


class TestSupervision:
    def test_heartbeat_ping(self):
        config = _iridium_box_config()
        processes = _coordinator(config, "processes")
        try:
            processes.update(0.0)
            supervisor = processes._backend.supervisor
            for worker in range(supervisor.worker_count):
                meta = supervisor.ping(worker)
                assert "counters" in meta
            assert supervisor.check() == 0
        finally:
            processes.close()

    def test_max_restarts_bound(self):
        config = _iridium_box_config()
        calculation = ConstellationCalculation(config)
        managers = [MachineManager(Host(index=0, allow_memory_overcommit=True))]
        backend = ProcessFanoutBackend(
            managers, ConstellationDatabase(), worker_count=1, max_restarts=0
        )
        try:
            backend.supervisor.start()
            backend.supervisor.ping(0)
            backend.crash_worker(0)
            with pytest.raises(WorkerCrashError, match="restarts"):
                backend.supervisor.ping(0)
        finally:
            backend.close()
        assert calculation is not None

    def test_close_is_idempotent_and_joins_workers(self):
        config = _iridium_box_config()
        processes = _coordinator(config, "processes")
        processes.update(0.0)
        handles = processes._backend.supervisor._handles
        assert all(handle.process.is_alive() for handle in handles)
        processes.close()
        assert all(not handle.process.is_alive() for handle in handles)
        processes.close()  # idempotent
        threads = _coordinator(config, "threads")
        threads.update(0.0)
        threads.close()
        threads.close()  # idempotent for the thread backend too


class TestTestbedProcessBackend:
    def test_celestial_runs_and_matches_thread_traces(self):
        config = _iridium_box_config(update_interval_s=30.0, duration_s=120.0)
        testbed_t = Celestial(config)
        testbed_p = Celestial(config, parallelism="processes", worker_count=2)
        try:
            testbed_t.run()
            testbed_p.run()
            traces_t = testbed_t.resource_traces()
            traces_p = testbed_p.resource_traces()
            assert set(traces_t) == set(traces_p)
            for host_index in traces_t:
                assert traces_t[host_index].samples == traces_p[host_index].samples
            assert testbed_t.booted_machines() == testbed_p.booted_machines()
        finally:
            testbed_t.close()
            testbed_p.close()
