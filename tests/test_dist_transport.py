"""Transport-seam tests: TCP framing, handshake, timeouts, restart decay.

Three layers of contract:

* :class:`SocketTransport` — length-prefixed frames round-trip exactly;
  closed peers raise ``EOFError`` (like pipes), stalled peers raise
  :class:`TransportTimeout` instead of hanging, corrupt length prefixes are
  typed errors.
* The connect/accept handshake — version skew and wrong worker indices are
  rejected before any payload crosses; a worker started by hand with
  ``python -m repro.dist.worker --connect`` (the remote-placement path) is
  indistinguishable from a spawned one, including crash + relaunch.
* Supervision hardening — a wedged-but-alive worker is detected by the
  receive timeout and rebuilt through the normal crash path, and the
  bounded restart budget decays after healthy acknowledged requests so
  transient crashes spread over a long run never become fatal.
"""

import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.dist import wire
from repro.dist.supervisor import (
    WorkerCrashError,
    WorkerSupervisor,
    WorkerTimeoutError,
)
from repro.dist.transport import (
    MAX_FRAME_BYTES,
    PipeTransport,
    PipeTransportFactory,
    SocketListener,
    SocketTransport,
    TcpTransportFactory,
    TransportError,
    TransportTimeout,
    connect_transport,
    make_transport_factory,
)
from repro.dist.wire import FrameKind, WireVersionError
from repro.dist.worker import HostSpec, WorkerSpec


def _transport_pair():
    left, right = socket.socketpair()
    return SocketTransport(left), SocketTransport(right)


def _spec(worker_index=0, position=0):
    return WorkerSpec(
        worker_index=worker_index,
        hosts=(
            HostSpec(
                position=position,
                host_index=position,
                cpu_cores=4,
                memory_mib=4096,
                allow_memory_overcommit=True,
                rng_state=np.random.default_rng(42 + position).bit_generator.state,
            ),
        ),
    )


class TestSocketTransportFraming:
    def test_messages_roundtrip_in_order(self):
        a, b = _transport_pair()
        try:
            payloads = [b"", b"x", os.urandom(1 << 10), b"tail"]
            for payload in payloads:
                a.send_bytes(payload)
            for payload in payloads:
                assert b.recv_bytes(timeout=5.0) == payload
        finally:
            a.close()
            b.close()

    def test_multi_megabyte_frame_roundtrips(self):
        # Larger than any kernel socket buffer: the sender must be drained
        # concurrently, and the chunked receive must reassemble exactly.
        a, b = _transport_pair()
        payload = os.urandom(3 * (1 << 20))
        try:
            sender = threading.Thread(target=a.send_bytes, args=(payload,))
            sender.start()
            received = b.recv_bytes(timeout=10.0)
            sender.join(timeout=10.0)
            assert received == payload
        finally:
            a.close()
            b.close()

    def test_clean_close_raises_eof(self):
        a, b = _transport_pair()
        a.close()
        with pytest.raises(EOFError):
            b.recv_bytes(timeout=5.0)
        b.close()

    def test_close_mid_frame_raises_eof(self):
        a, b = _transport_pair()
        # Claim 100 bytes, deliver 10, hang up.
        a._sock.sendall(struct.pack("<I", 100) + b"\x00" * 10)
        a.close()
        with pytest.raises(EOFError, match="mid-frame"):
            b.recv_bytes(timeout=5.0)
        b.close()

    def test_recv_timeout_when_idle(self):
        a, b = _transport_pair()
        try:
            start = time.monotonic()
            with pytest.raises(TransportTimeout):
                b.recv_bytes(timeout=0.2)
            assert time.monotonic() - start < 5.0
        finally:
            a.close()
            b.close()

    def test_recv_timeout_mid_frame_cannot_hang(self):
        # The wedged-peer scenario: a length prefix arrives, the body never
        # does.  poll() reports readable, so only a deadline on the receive
        # itself prevents an indefinite hang.
        a, b = _transport_pair()
        try:
            a._sock.sendall(struct.pack("<I", 100) + b"\x00" * 10)
            assert b.poll(1.0)
            with pytest.raises(TransportTimeout, match="outstanding"):
                b.recv_bytes(timeout=0.3)
        finally:
            a.close()
            b.close()

    def test_corrupt_length_prefix_is_a_typed_error(self):
        a, b = _transport_pair()
        try:
            a._sock.sendall(struct.pack("<I", MAX_FRAME_BYTES + 1))
            with pytest.raises(TransportError, match="length prefix"):
                b.recv_bytes(timeout=5.0)
        finally:
            a.close()
            b.close()

    def test_deadline_budget_does_not_leak_into_later_blocking_calls(self):
        # The per-chunk settimeout used by a deadline-bounded receive must
        # be reset afterwards: sendall inherits the socket timeout, and a
        # stale sub-second budget would make the next multi-megabyte send
        # spuriously fail (or worse, stop mid-stream) on a healthy peer.
        a, b = _transport_pair()
        try:
            with pytest.raises(TransportTimeout):
                b.recv_bytes(timeout=0.1)
            assert b._sock.gettimeout() is None
            a.send_bytes(b"after-timeout")
            assert b.recv_bytes(timeout=1.0) == b"after-timeout"
            assert b._sock.gettimeout() is None
        finally:
            a.close()
            b.close()

    def test_poll_reflects_readability(self):
        a, b = _transport_pair()
        try:
            assert not b.poll(0.0)
            a.send_bytes(b"ping")
            assert b.poll(1.0)
            assert b.recv_bytes(timeout=1.0) == b"ping"
        finally:
            a.close()
            b.close()


class TestPipeTransportTimeout:
    def test_recv_timeout_when_idle(self):
        import multiprocessing

        parent, child = multiprocessing.Pipe(duplex=True)
        transport = PipeTransport(parent)
        try:
            with pytest.raises(TransportTimeout):
                transport.recv_bytes(timeout=0.2)
            child.send_bytes(b"late")
            assert transport.recv_bytes(timeout=1.0) == b"late"
        finally:
            transport.close()
            child.close()


class TestHandshake:
    def test_matching_worker_is_accepted_and_receives_spec(self):
        listener = SocketListener(worker_index=3)
        result = {}

        def dial():
            spec, transport = connect_transport(
                "127.0.0.1", listener.port, 3, timeout_s=5.0
            )
            result["spec"] = spec
            transport.close()

        thread = threading.Thread(target=dial)
        thread.start()
        try:
            server_side = listener.accept(5.0)
            server_side.send_bytes(
                wire.encode_frame(FrameKind.SPEC, {"spec": _spec(worker_index=3)})
            )
            thread.join(timeout=5.0)
            assert result["spec"] == _spec(worker_index=3)
            server_side.close()
        finally:
            thread.join(timeout=5.0)
            listener.close()

    def test_wrong_worker_index_is_rejected(self):
        listener = SocketListener(worker_index=3)
        errors = []

        def dial():
            try:
                connect_transport("127.0.0.1", listener.port, 4, timeout_s=5.0)
            except (EOFError, OSError) as error:
                errors.append(error)

        thread = threading.Thread(target=dial)
        thread.start()
        try:
            with pytest.raises(TransportTimeout):
                listener.accept(1.0)
            thread.join(timeout=5.0)
            # The impostor's connection was closed on rejection.
            assert len(errors) == 1
        finally:
            thread.join(timeout=5.0)
            listener.close()

    def test_version_skew_is_fatal(self):
        listener = SocketListener(worker_index=0)

        def dial():
            sock = socket.create_connection(("127.0.0.1", listener.port), timeout=5.0)
            frame = bytearray(
                wire.encode_frame(FrameKind.HELLO, {"worker_index": 0})
            )
            frame[4:6] = (wire.WIRE_VERSION + 1).to_bytes(2, "little")
            sock.sendall(struct.pack("<I", len(frame)) + bytes(frame))
            # Leave the socket open: the accept side decides.
            time.sleep(1.0)
            sock.close()

        thread = threading.Thread(target=dial)
        thread.start()
        try:
            with pytest.raises(WireVersionError):
                listener.accept(5.0)
        finally:
            thread.join(timeout=5.0)
            listener.close()

    def test_garbage_client_is_skipped_then_real_worker_accepted(self):
        listener = SocketListener(worker_index=1)

        def garbage_then_dial():
            sock = socket.create_connection(("127.0.0.1", listener.port), timeout=5.0)
            sock.sendall(struct.pack("<I", 32) + os.urandom(32))
            sock.close()
            spec, transport = connect_transport(
                "127.0.0.1", listener.port, 1, timeout_s=5.0
            )
            assert spec == "ok"
            transport.close()

        thread = threading.Thread(target=garbage_then_dial)
        thread.start()
        try:
            server_side = listener.accept(5.0)
            server_side.send_bytes(wire.encode_frame(FrameKind.SPEC, {"spec": "ok"}))
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            server_side.close()
        finally:
            thread.join(timeout=5.0)
            listener.close()

    def test_accept_times_out_without_workers(self):
        listener = SocketListener(worker_index=0)
        try:
            start = time.monotonic()
            with pytest.raises(TransportTimeout, match="no worker"):
                listener.accept(0.2)
            assert time.monotonic() - start < 5.0
        finally:
            listener.close()


class TestAuthHandshake:
    def test_matching_secret_receives_spec(self):
        listener = SocketListener(worker_index=2, auth_secret="orbital")
        result = {}

        def dial():
            spec, transport = connect_transport(
                "127.0.0.1",
                listener.port,
                2,
                timeout_s=5.0,
                auth_secret="orbital",
            )
            result["spec"] = spec
            transport.close()

        thread = threading.Thread(target=dial)
        thread.start()
        try:
            server_side = listener.accept(5.0)
            server_side.send_bytes(
                wire.encode_frame(FrameKind.SPEC, {"spec": _spec(worker_index=2)})
            )
            thread.join(timeout=5.0)
            assert result["spec"] == _spec(worker_index=2)
            server_side.close()
        finally:
            thread.join(timeout=5.0)
            listener.close()

    def test_mismatched_secret_is_rejected_before_the_spec_flows(self):
        listener = SocketListener(worker_index=2, auth_secret="orbital")
        outcomes = []

        def dial():
            try:
                connect_transport(
                    "127.0.0.1",
                    listener.port,
                    2,
                    timeout_s=2.0,
                    auth_secret="wrong",
                )
            except (EOFError, OSError, TransportError) as error:
                outcomes.append(error)

        thread = threading.Thread(target=dial)
        thread.start()
        try:
            # The impostor never passes the challenge, so no transport is
            # ever handed to the supervisor — and no SPEC frame is sent.
            with pytest.raises(TransportTimeout):
                listener.accept(1.0)
            thread.join(timeout=5.0)
            assert len(outcomes) == 1
        finally:
            thread.join(timeout=5.0)
            listener.close()


class TestFactories:
    def test_factory_resolution(self):
        assert isinstance(make_transport_factory("pipe"), PipeTransportFactory)
        assert isinstance(make_transport_factory(None), PipeTransportFactory)
        assert isinstance(make_transport_factory("tcp"), TcpTransportFactory)
        ready = TcpTransportFactory()
        assert make_transport_factory(ready) is ready
        with pytest.raises(ValueError, match="unknown transport"):
            make_transport_factory("carrier-pigeon")

    def test_external_mode_requires_explicit_ports(self):
        with pytest.raises(ValueError, match="base_port"):
            TcpTransportFactory(external=True)

    def test_listeners_persist_across_incarnations(self):
        factory = TcpTransportFactory()
        try:
            listener = factory.listener_for(0)
            assert factory.listener_for(0) is listener  # reconnect target
            assert listener.port != 0
        finally:
            factory.close()
        with pytest.raises(TransportError, match="closed"):
            factory.listener_for(0)


def _supervisor(transport, **kwargs):
    kwargs.setdefault("ack_timeout_s", 10.0)
    return WorkerSupervisor([_spec()], transport=transport, **kwargs)


class TestSupervisionHardening:
    @pytest.mark.parametrize("transport", ["pipe", "tcp"])
    def test_wedged_worker_hits_timeout_and_is_rebuilt(self, transport):
        # The worker stays alive but stops serving: only the receive
        # deadline can notice, and it must route into the crash/restart
        # path rather than surfacing a bare TimeoutError (or hanging).
        supervisor = _supervisor(transport, ack_timeout_s=1.0, max_restarts=2)
        try:
            supervisor.start()
            assert "counters" in supervisor.ping(0)
            supervisor.post(0, FrameKind.WEDGE, {}, durable=False)
            meta = supervisor.ping(0)  # timeout → kill → respawn → re-send
            assert "counters" in meta
            assert supervisor.restart_count == 1
        finally:
            supervisor.close()

    def test_timeout_error_is_a_crash_error(self):
        assert issubclass(WorkerTimeoutError, WorkerCrashError)

    def test_restart_budget_decays_after_healthy_acks(self):
        supervisor = _supervisor("pipe", max_restarts=1, restart_decay_acks=3)
        try:
            supervisor.start()
            supervisor.ping(0)
            supervisor.crash_worker(0)
            supervisor.ping(0)  # restart 1 of 1
            for _ in range(3):
                supervisor.ping(0)  # healthy streak decays the budget
            supervisor.crash_worker(0)
            supervisor.ping(0)  # would exceed max_restarts without decay
            assert supervisor.restart_count == 2
        finally:
            supervisor.close()

    def test_crash_loop_still_bounded(self):
        # Crashes faster than the decay threshold must still exhaust the
        # budget — the decay handles transience, not brokenness.
        supervisor = _supervisor("pipe", max_restarts=1, restart_decay_acks=100)
        try:
            supervisor.start()
            supervisor.ping(0)
            supervisor.crash_worker(0)
            supervisor.ping(0)  # restart 1 of 1
            supervisor.crash_worker(0)
            with pytest.raises(WorkerCrashError, match="exceeded"):
                supervisor.ping(0)
        finally:
            supervisor.close()


def _free_port() -> int:
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _launch_external_worker(port: int, index: int = 0) -> subprocess.Popen:
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.dist.worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--index",
            str(index),
            "--connect-timeout",
            "20",
        ],
        env=env,
    )


class TestExternalWorkers:
    """The remote-placement path: workers the supervisor did not spawn."""

    def test_standalone_worker_serves_and_shuts_down_cleanly(self):
        port = _free_port()
        factory = TcpTransportFactory(
            base_port=port, external=True, accept_timeout_s=20.0
        )
        supervisor = WorkerSupervisor(
            [_spec()], transport=factory, ack_timeout_s=20.0
        )
        process = _launch_external_worker(port)
        try:
            supervisor.start()  # accepts the dial-in, ships the spec
            meta = supervisor.ping(0)
            assert "counters" in meta
            assert supervisor._handles[0].process is None  # not ours to join
        finally:
            supervisor.close()
            try:
                assert process.wait(timeout=10.0) == 0  # clean SHUTDOWN exit
            finally:
                if process.poll() is None:  # pragma: no cover - cleanup
                    process.kill()

    def test_killed_external_worker_recovers_via_relaunch_and_reconnect(self):
        port = _free_port()
        factory = TcpTransportFactory(
            base_port=port, external=True, accept_timeout_s=20.0
        )
        supervisor = WorkerSupervisor(
            [_spec()], transport=factory, ack_timeout_s=20.0
        )
        first = _launch_external_worker(port)
        replacement = None
        try:
            supervisor.start()
            supervisor.ping(0)
            os.kill(first.pid, signal.SIGKILL)
            first.wait(timeout=10.0)
            # The operator's relaunch: a fresh worker dials the same port
            # (the listener's backlog holds it until recovery accepts).
            replacement = _launch_external_worker(port)
            meta = supervisor.ping(0)  # EOF → recover → re-handshake → replay
            assert "counters" in meta
            assert supervisor.restart_count == 1
        finally:
            supervisor.close()
            for process in (first, replacement):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait(timeout=5.0)
