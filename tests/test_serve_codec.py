"""Tests for the shared epoch-update codec of the serving tier.

The acceptance property: a client that applies the keyframe+diff stream
through an :class:`EpochReplica` reconstructs the streamed state
projection **bit-for-bit** at every epoch, across at least 20 epochs, for
both an Iridium-style and a Starlink-style constellation.
"""

import threading

import numpy as np
import pytest

from repro.core import (
    ComputeParams,
    Configuration,
    ConstellationCalculation,
    ConstellationDatabase,
    GroundStationConfig,
    NetworkParams,
    ShellConfig,
)
from repro.dist.wire import FrameKind
from repro.orbits import GroundStation, ShellGeometry
from repro.scenarios import west_africa_configuration
from repro.serve import EpochReplica, EpochSnapshot, EpochUpdateCodec
from repro.serve.codec import CodecError, encode_skip_update


def iridium_configuration() -> Configuration:
    return Configuration(
        shells=(
            ShellConfig(
                name="iridium",
                geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                network=NetworkParams(min_elevation_deg=8.2),
                compute=ComputeParams(vcpu_count=1, memory_mib=1024),
            ),
        ),
        ground_stations=(
            GroundStationConfig(station=GroundStation("hawaii", 21.3, -157.9)),
            GroundStationConfig(station=GroundStation("buoy-0", 10.0, -160.0)),
        ),
        update_interval_s=5.0,
    )


def advance(calculation, database, previous, now_s):
    """One coordinator-style epoch publication (diff path)."""
    state, diff = calculation.diff_since(previous, now_s)
    database.set_state(state, diff=diff)
    return state, diff


class TestByteIdentity:
    @pytest.mark.parametrize(
        "config_factory,epochs,step_s",
        [
            pytest.param(iridium_configuration, 24, 30.0, id="iridium"),
            pytest.param(
                lambda: west_africa_configuration(duration_s=120.0, shells="lowest"),
                21,
                4.0,
                id="starlink-lowest-shell",
            ),
        ],
    )
    def test_replica_reconstructs_every_epoch_bit_for_bit(
        self, config_factory, epochs, step_s
    ):
        config = config_factory()
        calculation = ConstellationCalculation(config)
        database = ConstellationDatabase(keyframe_interval=7)
        state = calculation.state_at(0.0)
        database.set_state(state)

        replica = EpochReplica()
        replica.apply(database.codec.keyframe_update(database.epoch, state=state))
        assert replica.snapshot().same_bits(
            EpochSnapshot.from_state(state, database.epoch)
        )

        for step in range(1, epochs):
            state, diff = advance(calculation, database, state, step * step_s)
            replica.apply(database.codec.diff_update(database.epoch, diff=diff))
            assert replica.snapshot().same_bits(
                EpochSnapshot.from_state(state, database.epoch)
            ), f"replica diverged at epoch {database.epoch}"
        assert replica.applied_diffs == epochs - 1
        # Single-encode guarantee: one encode per epoch, however often the
        # cached updates are re-requested.
        database.codec.diff_update(database.epoch)
        assert database.codec.encode_count == epochs

    def test_snapshot_differs_when_state_differs(self):
        config = iridium_configuration()
        calculation = ConstellationCalculation(config)
        first = EpochSnapshot.from_state(calculation.state_at(0.0), 1)
        second = EpochSnapshot.from_state(calculation.state_at(120.0), 1)
        assert first.same_bits(first)
        assert not first.same_bits(second)


class TestReplicaChaining:
    def test_diff_before_keyframe_rejected(self):
        config = iridium_configuration()
        calculation = ConstellationCalculation(config)
        database = ConstellationDatabase()
        state = calculation.state_at(0.0)
        database.set_state(state)
        _, diff = advance(calculation, database, state, 30.0)
        update = database.codec.diff_update(2, diff=diff)
        with pytest.raises(CodecError, match="KEYFRAME"):
            EpochReplica().apply(update)

    def test_gapped_diff_rejected_until_keyframe_resync(self):
        config = iridium_configuration()
        calculation = ConstellationCalculation(config)
        database = ConstellationDatabase(keyframe_interval=2)
        state = calculation.state_at(0.0)
        database.set_state(state)
        replica = EpochReplica()
        replica.apply(database.codec.keyframe_update(1, state=state))
        diffs = []
        for step in range(1, 5):
            state, diff = advance(calculation, database, state, step * 30.0)
            diffs.append(database.codec.diff_update(database.epoch, diff=diff))
        replica.apply(diffs[0])  # epoch 2 chains
        with pytest.raises(CodecError, match="does not chain"):
            replica.apply(diffs[2])  # epoch 4 does not
        # Eviction protocol: a keyframe resets the replica, diffs resume.
        replica.apply(database.codec.keyframe_update(database.epoch, state=state))
        assert replica.snapshot().same_bits(
            EpochSnapshot.from_state(state, database.epoch)
        )

    def test_skip_marker_advances_the_chain_without_changes(self):
        config = iridium_configuration()
        calculation = ConstellationCalculation(config)
        database = ConstellationDatabase()
        state = calculation.state_at(0.0)
        database.set_state(state)
        replica = EpochReplica()
        replica.apply(database.codec.keyframe_update(1, state=state))
        before = replica.snapshot()
        _, diff = advance(calculation, database, state, 30.0)
        from repro.serve.codec import EpochUpdate

        skip = EpochUpdate(FrameKind.DIFF, 2, encode_skip_update(diff, 2))
        meta, _arrays = skip.decoded()
        assert meta["skip"] is True
        replica.apply(skip)
        after = replica.snapshot()
        assert after.epoch == 2 and after.time_s == diff.time_s
        assert after.node_a.tobytes() == before.node_a.tobytes()
        assert after.delay_ms.tobytes() == before.delay_ms.tobytes()


class TestCodecCacheAndViews:
    def test_json_record_matches_info_api_history(self):
        """`/diffs/<epoch>` must be a view of the same encoded update."""
        config = iridium_configuration()
        calculation = ConstellationCalculation(config)
        database = ConstellationDatabase(keyframe_interval=4)
        state = calculation.state_at(0.0)
        database.set_state(state)
        for step in range(1, 6):
            state, _ = advance(calculation, database, state, step * 30.0)
        history = database.diff_history_info(1)
        assert [r["epoch"] for r in history["diffs"]] == [2, 3, 4, 5, 6]
        for offset, record in enumerate(history["diffs"]):
            again = database.codec.diff_update(2 + offset).json_record()
            assert record == again

    def test_prune_tracks_database_history(self):
        config = iridium_configuration()
        calculation = ConstellationCalculation(config)
        database = ConstellationDatabase(keyframe_interval=2, retained_keyframes=2)
        state = calculation.state_at(0.0)
        database.set_state(state)
        for step in range(1, 9):
            state, diff = advance(calculation, database, state, step * 30.0)
            database.codec.diff_update(database.epoch, diff=diff)
        oldest = min(database.keyframe_epochs())
        assert all(epoch > oldest for epoch in database.codec._diffs)
        assert all(epoch >= oldest for epoch in database.codec._keyframes)
        # Pruned epochs are no longer servable from history.
        with pytest.raises(KeyError):
            database.codec.diff_update(2)

    def test_codec_is_owned_by_the_database(self):
        database = ConstellationDatabase()
        assert isinstance(database.codec, EpochUpdateCodec)
        assert database.codec.encode_count == 0

    def test_publish_racing_a_prune_cannot_reinsert_pruned_epochs(self):
        config = iridium_configuration()
        calculation = ConstellationCalculation(config)
        database = ConstellationDatabase(keyframe_interval=2, retained_keyframes=2)
        state = calculation.state_at(0.0)
        database.set_state(state)
        first_state = state
        first_diff = None
        for step in range(1, 9):
            state, diff = advance(calculation, database, state, step * 30.0)
            if first_diff is None:
                first_diff = diff
        oldest = min(database.keyframe_epochs())
        assert oldest > 2
        # A publish that lost the race against history pruning still gets a
        # usable update, but must not re-populate the cache with an epoch
        # that would then never be pruned again.
        keyframe = database.codec.keyframe_update(1, state=first_state)
        assert keyframe.epoch == 1 and keyframe.data
        diff_update = database.codec.diff_update(2, diff=first_diff)
        assert diff_update.epoch == 2 and diff_update.data
        assert 1 not in database.codec._keyframes
        assert 2 not in database.codec._diffs
        assert all(epoch >= oldest for epoch in database.codec._keyframes)
        assert all(epoch > oldest for epoch in database.codec._diffs)

    def test_concurrent_encodes_stay_exactly_once(self):
        config = iridium_configuration()
        calculation = ConstellationCalculation(config)
        database = ConstellationDatabase()
        state = calculation.state_at(0.0)
        database.set_state(state)
        codec = database.codec
        results: list[bytes] = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(5):
                update = codec.keyframe_update(1, state=state)
                with lock:
                    results.append(update.data)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        # The gateway's single-encode guarantee holds under contention:
        # everyone shares one encoding, counted once.
        assert codec.encode_count == 1
        assert len(results) == 40
        assert all(data is results[0] for data in results)


class TestScientificSanity:
    def test_streamed_delays_are_physical(self):
        config = iridium_configuration()
        calculation = ConstellationCalculation(config)
        snapshot = EpochSnapshot.from_state(calculation.state_at(0.0), 1)
        assert snapshot.node_a.shape == snapshot.node_b.shape
        assert np.all(snapshot.node_a < snapshot.node_b)
        assert np.all(snapshot.delay_ms > 0)
        # ISL delays are bounded by a bent-pipe worst case of a few 100 ms.
        assert np.all(snapshot.delay_ms < 1000.0)
