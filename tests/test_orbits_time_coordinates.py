"""Unit tests for astronomical time utilities and coordinate transforms."""

import math
from datetime import datetime, timezone

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orbits import (
    GEOCENTRIC_LATITUDE_MARGIN_DEG,
    Epoch,
    ecef_to_eci,
    ecef_to_geocentric_latlon,
    ecef_to_geodetic,
    eci_to_ecef,
    geodetic_to_ecef,
    gmst_rad,
    julian_date,
    subsatellite_point,
)
from repro.orbits.coordinates import great_circle_distance_km


def test_julian_date_j2000():
    assert julian_date(datetime(2000, 1, 1, 12, 0, 0)) == pytest.approx(2451545.0)


def test_julian_date_known_value():
    # 1999-01-01 00:00 UT is JD 2451179.5 (standard almanac value).
    assert julian_date(datetime(1999, 1, 1, 0, 0, 0)) == pytest.approx(2451179.5)


def test_julian_date_timezone_aware():
    aware = datetime(2000, 1, 1, 12, 0, 0, tzinfo=timezone.utc)
    assert julian_date(aware) == pytest.approx(2451545.0)


def test_gmst_at_j2000_reference():
    # GMST at J2000.0 is approximately 280.46 degrees.
    gmst = math.degrees(gmst_rad(2451545.0))
    assert gmst == pytest.approx(280.46061837, abs=1e-6)


def test_gmst_advances_faster_than_solar_day():
    jd = 2459580.5
    one_day_later = gmst_rad(jd + 1.0) - gmst_rad(jd)
    # Earth rotates ~360.9856 degrees per solar day; modulo 2pi the difference
    # is ~0.9856 degrees.
    assert math.degrees(one_day_later) % 360.0 == pytest.approx(0.9856, abs=1e-3)


def test_epoch_offsets_and_gmst():
    epoch = Epoch(datetime(2022, 1, 1))
    assert epoch.at(60.0) == datetime(2022, 1, 1, 0, 1, 0)
    assert epoch.julian_date_at(86400.0) == pytest.approx(epoch.julian_date + 1.0)
    assert 0.0 <= epoch.gmst_at(0.0) < 2 * math.pi


def test_geodetic_to_ecef_equator_prime_meridian():
    position = geodetic_to_ecef(0.0, 0.0, 0.0)
    assert position[0] == pytest.approx(6378.137, abs=1e-6)
    assert position[1] == pytest.approx(0.0, abs=1e-9)
    assert position[2] == pytest.approx(0.0, abs=1e-9)


def test_geodetic_to_ecef_north_pole():
    position = geodetic_to_ecef(90.0, 0.0, 0.0)
    # Polar radius of the WGS-84 ellipsoid is ~6356.752 km.
    assert position[2] == pytest.approx(6356.7523, abs=1e-3)
    assert abs(position[0]) < 1e-6


def test_eci_ecef_roundtrip():
    position = np.array([7000.0, -1234.5, 3000.0])
    gmst = 1.234
    roundtrip = ecef_to_eci(eci_to_ecef(position, gmst), gmst)
    np.testing.assert_allclose(roundtrip, position, atol=1e-9)


def test_eci_to_ecef_rotation_preserves_norm_and_z():
    position = np.array([7000.0, 100.0, 2000.0])
    rotated = eci_to_ecef(position, 0.7)
    assert np.linalg.norm(rotated) == pytest.approx(np.linalg.norm(position))
    assert rotated[2] == pytest.approx(position[2])


@settings(max_examples=100, deadline=None)
@given(
    latitude=st.floats(min_value=-85.0, max_value=85.0),
    longitude=st.floats(min_value=-179.9, max_value=179.9),
    altitude=st.floats(min_value=0.0, max_value=2000.0),
)
def test_property_geodetic_roundtrip(latitude, longitude, altitude):
    ecef = geodetic_to_ecef(latitude, longitude, altitude)
    lat2, lon2, alt2 = ecef_to_geodetic(ecef)
    assert lat2 == pytest.approx(latitude, abs=1e-6)
    assert lon2 == pytest.approx(longitude, abs=1e-6)
    assert alt2 == pytest.approx(altitude, abs=1e-3)


def test_subsatellite_point_over_equator():
    # A satellite on the x-axis in ECI with GMST=0 is directly over (0, 0).
    position = np.array([7000.0, 0.0, 0.0])
    lat, lon = subsatellite_point(position, 0.0)
    assert lat == pytest.approx(0.0, abs=1e-9)
    assert lon == pytest.approx(0.0, abs=1e-9)


def test_subsatellite_point_accounts_for_earth_rotation():
    position = np.array([7000.0, 0.0, 0.0])
    quarter_turn = math.pi / 2.0
    _, lon = subsatellite_point(position, quarter_turn)
    assert lon == pytest.approx(-90.0, abs=1e-6)


def test_geocentric_latitude_margin_is_certified():
    """Longitude is bitwise the geodetic one; the geocentric latitude stays
    within the documented margin of the geodetic latitude for points at or
    above the WGS-84 surface."""
    rng = np.random.default_rng(0)
    points = rng.normal(size=(50000, 3))
    points /= np.sqrt((points * points).sum(axis=1, keepdims=True))
    points *= rng.uniform(6378.137, 8400.0, (points.shape[0], 1))
    geocentric_lat, lon = ecef_to_geocentric_latlon(points)
    geodetic_lat, geodetic_lon, _ = ecef_to_geodetic(points)
    assert np.array_equal(lon, geodetic_lon)
    deviation = np.abs(geodetic_lat - geocentric_lat)
    assert deviation.max() < GEOCENTRIC_LATITUDE_MARGIN_DEG
    # The margin is tight-ish: the true surface maximum is ≈ 0.1924°.
    assert deviation.max() > 0.15


def test_great_circle_distance_quarter_meridian():
    # Equator to pole along a meridian is roughly 10,008 km on the mean sphere.
    distance = great_circle_distance_km(0.0, 0.0, 90.0, 0.0)
    assert distance == pytest.approx(10007.5, rel=1e-3)


def test_great_circle_distance_symmetry_and_zero():
    assert great_circle_distance_km(10.0, 20.0, 10.0, 20.0) == 0.0
    forward = great_circle_distance_km(6.5, -3.4, 4.05, 9.7)
    backward = great_circle_distance_km(4.05, 9.7, 6.5, -3.4)
    assert forward == pytest.approx(backward)
