"""Unit tests for TLE handling and the SGP4 propagator."""

import math
from datetime import datetime

import numpy as np
import pytest

from repro.orbits import (
    KeplerPropagator,
    KeplerianElements,
    SGP4Error,
    SGP4Propagator,
    TwoLineElement,
    constants,
)
from repro.orbits.tle import TLEError, _checksum


def _starlink_like_elements(mean_anomaly=10.0, raan=120.0):
    return KeplerianElements.circular(
        altitude_km=550.0,
        inclination_deg=53.0,
        raan_deg=raan,
        mean_anomaly_deg=mean_anomaly,
    )


def _starlink_like_tle(bstar=0.0):
    return TwoLineElement.from_elements(
        _starlink_like_elements(),
        epoch=datetime(2022, 1, 1),
        name="TESTSAT",
        satellite_number=878,
        bstar=bstar,
    )


class TestTLE:
    def test_roundtrip_through_lines(self):
        tle = _starlink_like_tle(bstar=1.5e-4)
        line1, line2 = tle.lines()
        assert len(line1) == 69
        assert len(line2) == 69
        parsed = TwoLineElement.parse(line1, line2, name="TESTSAT")
        assert parsed.satellite_number == 878
        assert parsed.inclination_deg == pytest.approx(53.0, abs=1e-4)
        assert parsed.raan_deg == pytest.approx(120.0, abs=1e-4)
        assert parsed.mean_anomaly_deg == pytest.approx(10.0, abs=1e-4)
        assert parsed.mean_motion_rev_day == pytest.approx(tle.mean_motion_rev_day, rel=1e-7)
        assert parsed.bstar == pytest.approx(1.5e-4, rel=1e-4)
        assert parsed.epoch == datetime(2022, 1, 1)

    def test_checksum_rejects_corruption(self):
        line1, line2 = _starlink_like_tle().lines()
        corrupted = line1[:20] + "9" + line1[21:]
        with pytest.raises(TLEError):
            TwoLineElement.parse(corrupted, line2)

    def test_wrong_line_number_rejected(self):
        line1, line2 = _starlink_like_tle().lines()
        with pytest.raises(TLEError):
            TwoLineElement.parse(line2, line1)

    def test_short_line_rejected(self):
        with pytest.raises(TLEError):
            TwoLineElement.parse("1 00878U", "2 00878")

    def test_checksum_rule_counts_minus_as_one(self):
        assert _checksum("-" * 68) == 68 % 10
        assert _checksum("0" * 68) == 0
        assert _checksum("1" + "0" * 67) == 1

    def test_to_elements_recovers_orbit(self):
        tle = _starlink_like_tle()
        elements = tle.to_elements()
        assert elements.altitude_km == pytest.approx(550.0, abs=1.0)
        assert elements.inclination_deg == pytest.approx(53.0)

    def test_period_property(self):
        tle = _starlink_like_tle()
        assert tle.period_s == pytest.approx(_starlink_like_elements().period_s, rel=1e-6)


class TestSGP4:
    def test_position_radius_near_circular_altitude(self):
        propagator = SGP4Propagator(_starlink_like_tle())
        for t in np.linspace(0.0, 6000.0, 25):
            radius = np.linalg.norm(propagator.position_eci(float(t)))
            assert 6900.0 < radius < 6960.0

    def test_velocity_magnitude(self):
        propagator = SGP4Propagator(_starlink_like_tle())
        _, velocity = propagator.position_velocity_eci(300.0)
        speed = np.linalg.norm(velocity)
        assert speed == pytest.approx(7.59, abs=0.1)

    def test_orbit_roughly_periodic(self):
        tle = _starlink_like_tle()
        propagator = SGP4Propagator(tle)
        start = propagator.position_eci(0.0)
        after_period = propagator.position_eci(tle.period_s)
        # J2 causes the orbit not to close exactly, but the satellite should be
        # within a small fraction of the orbit circumference of its start.
        assert np.linalg.norm(after_period - start) < 300.0

    def test_agreement_with_kepler_over_short_horizon(self):
        tle = _starlink_like_tle()
        sgp4 = SGP4Propagator(tle)
        kepler = KeplerPropagator(_starlink_like_elements(), include_j2=True)
        for t in (0.0, 300.0, 900.0, 1800.0):
            difference = np.linalg.norm(sgp4.position_eci(t) - kepler.position_eci(t))
            # Same mean elements, slightly different periodic terms: the two
            # models should stay within a few tens of kilometres.
            assert difference < 60.0

    def test_inclination_respected(self):
        propagator = SGP4Propagator(_starlink_like_tle())
        samples = np.array(
            [propagator.position_eci(t) for t in np.linspace(0, 6000.0, 300)]
        )
        max_z_fraction = np.max(np.abs(samples[:, 2])) / np.mean(
            np.linalg.norm(samples, axis=1)
        )
        assert math.degrees(math.asin(max_z_fraction)) == pytest.approx(53.0, abs=0.5)

    def test_raan_regression_moves_node_westward(self):
        tle = _starlink_like_tle()
        propagator = SGP4Propagator(tle)
        day = constants.SECONDS_PER_DAY
        # Sample the ascending node by looking at where the satellite crosses
        # the equatorial plane going north, at t=0 and one day later.
        def ascending_node_longitude(start):
            previous = propagator.position_eci(start)
            for t in np.arange(start + 10.0, start + 7000.0, 10.0):
                current = propagator.position_eci(float(t))
                if previous[2] < 0.0 <= current[2]:
                    return math.atan2(current[1], current[0])
                previous = current
            raise AssertionError("no ascending node found")

        node_start = ascending_node_longitude(0.0)
        node_later = ascending_node_longitude(day)
        drift = (node_later - node_start + math.pi) % (2 * math.pi) - math.pi
        assert math.degrees(drift) == pytest.approx(-5.0, abs=1.5)

    def test_drag_decays_orbit(self):
        with_drag = SGP4Propagator(_starlink_like_tle(bstar=5e-4))
        without_drag = SGP4Propagator(_starlink_like_tle(bstar=0.0))
        week = 7 * constants.SECONDS_PER_DAY
        radius_with = np.linalg.norm(with_drag.position_eci(week))
        radius_without = np.linalg.norm(without_drag.position_eci(week))
        assert radius_with < radius_without

    def test_deep_space_orbit_rejected(self):
        geostationary = KeplerianElements.circular(35786.0, 0.1)
        tle = TwoLineElement.from_elements(geostationary, epoch=datetime(2022, 1, 1))
        with pytest.raises(SGP4Error):
            SGP4Propagator(tle)

    def test_decayed_orbit_raises(self):
        low = KeplerianElements.circular(120.0, 53.0)
        tle = TwoLineElement.from_elements(low, epoch=datetime(2022, 1, 1), bstar=1e-2)
        propagator = SGP4Propagator(tle)
        with pytest.raises(SGP4Error):
            propagator.position_eci(30 * constants.SECONDS_PER_DAY)
