"""Differential-update equivalence suite.

The differential pipeline must be an observable no-op: N consecutive epochs
advanced via ``ConstellationCalculation.diff_since`` (and distributed as
sharded per-host slices through ``Coordinator``/``MachineManager.apply_diff``)
have to produce byte-identical constellation state — link arrays, delays,
bandwidths, shortest-path tables, uplink tables, bounding-box active sets —
and identical suspend/resume behaviour compared to rebuilding every epoch
from scratch with ``state_at`` and replaying it fully via ``apply_state``.
"""

import numpy as np
import pytest

from repro.core import (
    BoundingBox,
    ComputeParams,
    Configuration,
    ConstellationCalculation,
    ConstellationDatabase,
    Coordinator,
    GroundStationConfig,
    MachineManager,
    NetworkParams,
    ShellConfig,
)
from repro.hosts import Host
from repro.orbits import GroundStation, ShellGeometry
from repro.scenarios import dart_configuration, west_africa_configuration
from repro.topology import LinkType, NetworkGraph, NodeIndex


def _assert_states_identical(full, incremental):
    """Byte-identical comparison of every observable state component."""
    g_full, g_inc = full.graph, incremental.graph
    assert np.array_equal(g_full.node_a, g_inc.node_a)
    assert np.array_equal(g_full.node_b, g_inc.node_b)
    assert np.array_equal(g_full.distances_km, g_inc.distances_km)
    assert np.array_equal(g_full.delays_ms, g_inc.delays_ms)
    assert np.array_equal(g_full.bandwidths_kbps, g_inc.bandwidths_kbps)
    assert np.array_equal(g_full.link_type_codes, g_inc.link_type_codes)
    assert full.gmst_rad == incremental.gmst_rad
    assert full.uplinks == incremental.uplinks
    for shell in full.active_satellites:
        assert np.array_equal(
            full.active_satellites[shell], incremental.active_satellites[shell]
        )
        assert np.array_equal(
            full.satellite_positions_ecef[shell],
            incremental.satellite_positions_ecef[shell],
        )
    for source in full.node_index.ground_station_indices():
        assert np.array_equal(
            full.paths.delays_from(source), incremental.paths.delays_from(source)
        )


def _run_equivalence(config, epochs):
    reference = ConstellationCalculation(config)
    incremental = ConstellationCalculation(config)
    state = incremental.state_at(0.0)
    _assert_states_identical(reference.state_at(0.0), state)
    structural_noops = 0
    for step in range(1, epochs + 1):
        time_s = step * config.update_interval_s
        state, diff = incremental.diff_since(state, time_s)
        assert diff.previous_time_s == (step - 1) * config.update_interval_s
        assert diff.time_s == time_s
        structural_noops += diff.topology.is_structural_noop
        _assert_states_identical(reference.state_at(time_s), state)
    return structural_noops


class TestDiffSinceEquivalence:
    def test_iridium_ten_epochs(self):
        config = dart_configuration(buoy_count=6, sink_count=10, duration_s=120.0)
        _run_equivalence(config, epochs=10)

    def test_starlink_ten_epochs(self):
        config = west_africa_configuration(duration_s=60.0, shells="two-lowest")
        _run_equivalence(config, epochs=10)

    def test_large_time_gap_falls_back_gracefully(self):
        # A big Δt blows up the certified visibility margins so the diff
        # path degrades to the full evaluation — results must stay identical.
        config = dart_configuration(buoy_count=4, sink_count=4, duration_s=120.0)
        calculation = ConstellationCalculation(config)
        reference = ConstellationCalculation(config)
        state = calculation.state_at(0.0)
        state, _ = calculation.diff_since(state, 1800.0)
        _assert_states_identical(reference.state_at(1800.0), state)
        # Stepping backwards in time also only widens the margins.
        state, _ = calculation.diff_since(state, 900.0)
        _assert_states_identical(reference.state_at(900.0), state)

    def test_rejects_foreign_state(self):
        config = dart_configuration(buoy_count=4, sink_count=4, duration_s=60.0)
        state = ConstellationCalculation(config).state_at(0.0)
        other = ConstellationCalculation(config)
        with pytest.raises(ValueError):
            other.diff_since(state, 5.0)


class TestTopologyDiffPrimitive:
    def _graph(self, index, edges):
        graph = NetworkGraph(index)
        arrays = np.array(edges, dtype=float).reshape(-1, 4)
        graph.add_links(
            arrays[:, 0].astype(np.int64),
            arrays[:, 1].astype(np.int64),
            arrays[:, 2],
            arrays[:, 2],
            arrays[:, 3],
            LinkType.ISL,
        )
        return graph

    def test_diff_categories(self):
        index = NodeIndex([6], [])
        old = self._graph(index, [(0, 1, 1.0, 10.0), (1, 2, 2.0, 10.0), (2, 3, 3.0, 10.0)])
        new = self._graph(index, [(0, 1, 1.0, 10.0), (1, 2, 2.5, 10.0), (3, 4, 4.0, 20.0)])
        diff = new.diff_from(old)
        assert diff.added_endpoints().tolist() == [[3, 4]]
        assert diff.removed_endpoints().tolist() == [[2, 3]]
        assert diff.delay_changed_endpoints().tolist() == [[1, 2]]
        assert diff.delay_changed_values_ms().tolist() == [2.5]
        assert diff.bandwidth_changed.size == 0
        assert not diff.is_empty and not diff.is_structural_noop
        assert diff.change_count == 3

    def test_identical_graphs_diff_empty(self):
        index = NodeIndex([4], [])
        edges = [(0, 1, 1.0, 10.0), (1, 2, 2.0, 10.0)]
        a, b = self._graph(index, edges), self._graph(index, edges)
        diff = b.diff_from(a)
        assert diff.is_empty and diff.is_structural_noop
        assert a.structurally_equal(b) and b.structurally_equal(a)

    def test_from_edge_arrays_shares_structure(self):
        index = NodeIndex([4], [])
        base = self._graph(index, [(0, 1, 1.0, 10.0), (1, 2, 2.0, 10.0)])
        base.delay_matrix()  # build the CSR structure template
        clone = NetworkGraph.from_edge_arrays(
            index,
            base.node_a,
            base.node_b,
            base.distances_km,
            base.delays_ms * 2.0,
            base.bandwidths_kbps,
            base.link_type_codes,
            structure_from=base,
        )
        assert clone.structurally_equal(base)
        assert clone._csr_template is base._csr_template
        dense = clone.delay_matrix().toarray()
        assert dense[0, 1] == 2.0 and dense[1, 2] == 4.0

    def test_from_edge_arrays_rejects_duplicates(self):
        index = NodeIndex([4], [])
        with pytest.raises(ValueError):
            NetworkGraph.from_edge_arrays(
                index,
                np.array([0, 1]),
                np.array([1, 0]),
                np.ones(2),
                np.ones(2),
                np.ones(2),
                np.zeros(2, dtype=np.int8),
            )


def _iridium_box_config(update_interval_s, duration_s):
    return Configuration(
        shells=(
            ShellConfig(
                name="iridium",
                geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                network=NetworkParams(min_elevation_deg=8.2),
                compute=ComputeParams(vcpu_count=1, memory_mib=1024),
            ),
        ),
        ground_stations=(
            GroundStationConfig(
                station=GroundStation("hawaii", 21.3, -157.9),
                compute=ComputeParams(vcpu_count=8, memory_mib=8192),
            ),
        ),
        bounding_box=BoundingBox(-35.0, 35.0, -180.0, -100.0),
        update_interval_s=update_interval_s,
        duration_s=duration_s,
    )


def _coordinator(config, incremental, host_count=3):
    calculation = ConstellationCalculation(config)
    managers = [
        MachineManager(Host(index=i, allow_memory_overcommit=True))
        for i in range(host_count)
    ]
    coordinator = Coordinator(
        config,
        calculation,
        ConstellationDatabase(keyframe_interval=5),
        managers,
        incremental=incremental,
    )
    coordinator.create_ground_stations(0.0)
    return coordinator, managers


class TestShardedCoordinatorEquivalence:
    def test_suspend_resume_and_machine_states_match_full_replay(self):
        # Long enough (two Iridium orbits) that satellites leave the box,
        # get suspended, come back and are resumed again.
        config = _iridium_box_config(update_interval_s=60.0, duration_s=12000.0)
        incremental, managers_inc = _coordinator(config, incremental=True)
        full, managers_full = _coordinator(config, incremental=False)
        for step in range(201):
            time_s = step * 60.0
            state_inc = incremental.update(time_s)
            state_full = full.update(time_s)
            for shell in state_full.active_satellites:
                assert np.array_equal(
                    state_full.active_satellites[shell],
                    state_inc.active_satellites[shell],
                )
        counters_inc = sorted(
            (manager.suspension_count, manager.resume_count)
            for manager in managers_inc
        )
        counters_full = sorted(
            (manager.suspension_count, manager.resume_count)
            for manager in managers_full
        )
        assert counters_inc == counters_full
        assert sum(suspended for suspended, _ in counters_inc) > 0
        assert sum(resumed for _, resumed in counters_inc) > 0
        states_inc = {
            name: manager.host.machines[name].state
            for manager in managers_inc
            for name in manager.host.machines
        }
        states_full = {
            name: manager.host.machines[name].state
            for manager in managers_full
            for name in manager.host.machines
        }
        assert states_inc == states_full
        assert incremental.stats.diff_updates == 200
        assert incremental.stats.full_updates == 1

    def test_slices_cover_the_full_change_set(self):
        config = _iridium_box_config(update_interval_s=60.0, duration_s=600.0)
        coordinator, managers = _coordinator(config, incremental=True)
        coordinator.update(0.0)
        state = coordinator.update(60.0)
        diff = coordinator.database.latest_diff
        assert diff is not None
        slices = [manager.last_slice for manager in managers]
        assert all(state_slice is not None for state_slice in slices)
        # Each changed link involving a created machine appears in at least
        # one host's slice; every slice row genuinely touches that host.
        owned = {
            node
            for state_slice in slices
            for node in state_slice.machine_nodes.tolist()
        }
        changed = diff.topology.delay_changed_endpoints()
        expected = {
            (int(a), int(b))
            for a, b in changed
            if int(a) in owned or int(b) in owned
        }
        covered = set()
        for state_slice in slices:
            host_nodes = set(state_slice.machine_nodes.tolist())
            for a, b in state_slice.links_delay_changed.tolist():
                assert a in host_nodes or b in host_nodes
                covered.add((a, b))
        assert covered == expected
        # The per-ground-station delay vectors match the shortest-path table.
        for state_slice in slices:
            for name, delays in state_slice.gst_delays_ms.items():
                source = state.node_index.ground_station(name)
                reference = state.paths.delays_from(source)[state_slice.machine_nodes]
                assert np.array_equal(delays, reference)
            for name, delays in state_slice.uplink_delays_ms.items():
                source = state.node_index.ground_station(name)
                for position, node in enumerate(state_slice.machine_nodes.tolist()):
                    link = state.graph.link_between(source, node)
                    if link is None:
                        assert delays[position] == np.inf
                    else:
                        assert delays[position] == link.delay_ms

    def test_dirty_machines_reconciled_after_fault_injection(self):
        config = _iridium_box_config(update_interval_s=60.0, duration_s=600.0)
        incremental, managers_inc = _coordinator(config, incremental=True)
        full, managers_full = _coordinator(config, incremental=False)
        for coordinator in (incremental, full):
            coordinator.update(0.0)
        # Reboot a suspended (out-of-box) satellite: it comes back RUNNING
        # even though it is outside the box, and the next update must
        # suspend it again on both paths.
        state = incremental.database.state
        outside = int(np.nonzero(~state.active_satellites[0])[0][0])
        for coordinator in (incremental, full):
            victim = coordinator.calculation.satellite(0, outside)
            if not coordinator.has_machine(victim):
                coordinator.create_machine(victim, 10.0)
            coordinator.manager_for(victim).reboot_machine(victim, 20.0)
        incremental.update(60.0)
        full.update(60.0)
        for coordinator in (incremental, full):
            victim = coordinator.calculation.satellite(0, outside)
            machine = coordinator.manager_for(victim).machine(victim)
            assert machine.state.value == "suspended"


class TestDatabaseDiffHistory:
    def test_keyframes_and_diff_chain(self):
        config = dart_configuration(buoy_count=4, sink_count=4, duration_s=600.0)
        calculation = ConstellationCalculation(config)
        database = ConstellationDatabase(keyframe_interval=4, retained_keyframes=2)
        state = calculation.state_at(0.0)
        database.set_state(state)  # epoch 1: keyframe (no diff)
        for step in range(1, 12):
            state, diff = calculation.diff_since(state, step * 5.0)
            database.set_state(state, diff=diff)
        assert database.epoch == 12
        # Keyframes at epochs 1, 5, 9 → the last two are retained.
        assert database.keyframe_epochs() == [5, 9]
        chain = database.diffs_since(5)
        assert len(chain) == 7
        assert [d.time_s for d in chain] == [25.0, 30.0, 35.0, 40.0, 45.0, 50.0, 55.0]
        with pytest.raises(KeyError):
            database.diffs_since(3)  # pruned history
        with pytest.raises(KeyError):
            database.diffs_since(99)  # future epoch
        assert database.latest_diff is chain[-1]
        assert database.keyframe_state(9).time_s == 40.0
        info = database.constellation_info()
        assert info["keyframe_epochs"] == [5, 9]
        assert info["last_diff"] == chain[-1].summary()
