"""Cross-cutting property-based tests on core invariants.

These complement the per-module unit tests with randomized checks of the
invariants the whole system relies on: address/DNS consistency, shell
geometry, constellation network symmetry, netem conservation properties and
configuration round-tripping.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CelestialDNS,
    ComputeParams,
    Configuration,
    ConstellationCalculation,
    GroundStationConfig,
    NetworkParams,
    ShellConfig,
)
from repro.core.addressing import machine_ip, parse_machine_ip
from repro.netem import NetemQdisc, NetemRule
from repro.orbits import GroundStation, Shell, ShellGeometry, constants
from repro.topology.isl import grid_plus_isl_pairs


class TestAddressingProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        shell_sizes=st.lists(st.integers(min_value=1, max_value=300), min_size=1, max_size=4),
        data=st.data(),
    )
    def test_address_roundtrip_and_uniqueness(self, shell_sizes, data):
        shell = data.draw(st.integers(min_value=0, max_value=len(shell_sizes) - 1))
        identifier = data.draw(st.integers(min_value=0, max_value=shell_sizes[shell] - 1))
        address = machine_ip(shell_sizes, shell, identifier)
        assert parse_machine_ip(shell_sizes, address) == (shell, identifier)

    @settings(max_examples=30, deadline=None)
    @given(
        shell_size=st.integers(min_value=1, max_value=500),
        identifier=st.integers(min_value=0, max_value=499),
    )
    def test_dns_resolution_matches_addressing(self, shell_size, identifier):
        identifier = identifier % shell_size
        dns = CelestialDNS([shell_size], ["gst-a"])
        resolved = dns.resolve(f"{identifier}.0.celestial")
        assert resolved == machine_ip([shell_size], 0, identifier)
        assert dns.reverse(resolved) == f"{identifier}.0.celestial"


class TestShellGeometryProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        planes=st.integers(min_value=1, max_value=24),
        per_plane=st.integers(min_value=1, max_value=40),
        altitude=st.floats(min_value=300.0, max_value=2000.0),
        inclination=st.floats(min_value=10.0, max_value=98.0),
        time=st.floats(min_value=0.0, max_value=7200.0),
    )
    def test_all_satellites_on_shell_sphere(self, planes, per_plane, altitude, inclination, time):
        shell = Shell(ShellGeometry(planes, per_plane, altitude, inclination))
        positions = shell.positions_eci(time)
        radii = np.linalg.norm(positions, axis=1)
        expected = constants.EARTH_RADIUS_KM + altitude
        assert np.allclose(radii, expected, rtol=1e-6)
        assert positions.shape == (planes * per_plane, 3)

    @settings(max_examples=30, deadline=None)
    @given(
        # With only two planes a wrapped delta shell would de-duplicate its
        # inter-plane links, so the closed-form count below needs >= 3 planes.
        planes=st.integers(min_value=3, max_value=16),
        per_plane=st.integers(min_value=3, max_value=30),
        arc=st.sampled_from([180.0, 360.0]),
    )
    def test_isl_pairs_valid_and_symmetric_free(self, planes, per_plane, arc):
        geometry = ShellGeometry(planes, per_plane, 550.0, 53.0, arc)
        pairs = grid_plus_isl_pairs(geometry)
        total = geometry.total_satellites
        assert all(0 <= a < b < total for a, b in pairs)
        assert len(set(pairs)) == len(pairs)
        expected = 2 * total - (per_plane if arc <= 180.0 else 0)
        assert len(pairs) == expected

    @settings(max_examples=20, deadline=None)
    @given(
        altitude=st.floats(min_value=400.0, max_value=1500.0),
        inclination=st.floats(min_value=30.0, max_value=90.0),
    )
    def test_period_increases_with_altitude(self, altitude, inclination):
        low = ShellGeometry(4, 8, altitude, inclination)
        high = ShellGeometry(4, 8, altitude + 200.0, inclination)
        assert high.period_s > low.period_s
        # LEO periods are between roughly 90 minutes and 2 hours.
        assert 5000.0 < low.period_s < 8000.0


class TestConstellationProperties:
    def _calculation(self, min_elevation):
        config = Configuration(
            shells=(
                ShellConfig(
                    name="shell",
                    geometry=ShellGeometry(6, 11, 780.0, 90.0, 180.0),
                    network=NetworkParams(min_elevation_deg=min_elevation),
                    compute=ComputeParams(vcpu_count=1, memory_mib=512),
                ),
            ),
            ground_stations=(
                GroundStationConfig(station=GroundStation("a", 21.3, -157.9)),
                GroundStationConfig(station=GroundStation("b", -33.9, 151.2)),
            ),
            update_interval_s=5.0,
        )
        return ConstellationCalculation(config)

    @settings(max_examples=10, deadline=None)
    @given(time=st.floats(min_value=0.0, max_value=3600.0))
    def test_delays_are_symmetric_and_triangle_bounded(self, time):
        calculation = self._calculation(8.2)
        state = calculation.state_at(time)
        a = calculation.ground_station("a")
        b = calculation.ground_station("b")
        delay_ab = state.delay_ms(a, b)
        delay_ba = state.delay_ms(b, a)
        if math.isfinite(delay_ab):
            assert delay_ab == pytest.approx(delay_ba, rel=1e-9)
            # End-to-end delay cannot be shorter than the straight-line
            # propagation delay between the two ground stations.
            straight_km = float(
                np.linalg.norm(
                    state.ground_positions_ecef["a"] - state.ground_positions_ecef["b"]
                )
            )
            assert delay_ab >= straight_km / constants.SPEED_OF_LIGHT_KM_S * 1000.0 - 1e-6

    @settings(max_examples=6, deadline=None)
    @given(time=st.floats(min_value=0.0, max_value=1800.0))
    def test_stricter_elevation_never_adds_uplinks(self, time):
        lenient = self._calculation(8.2).state_at(time)
        strict = self._calculation(40.0).state_at(time)
        for name in ("a", "b"):
            lenient_sats = {(u.shell, u.satellite) for u in lenient.uplinks_of(name)}
            strict_sats = {(u.shell, u.satellite) for u in strict.uplinks_of(name)}
            assert strict_sats <= lenient_sats


class TestNetemProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        delay=st.floats(min_value=0.0, max_value=200.0),
        loss=st.floats(min_value=0.0, max_value=0.9),
        duplicate=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_delivery_counts_bounded(self, delay, loss, duplicate, seed):
        qdisc = NetemQdisc(
            NetemRule(delay_ms=delay, loss_probability=loss, duplicate_probability=duplicate),
            rng=np.random.default_rng(seed),
        )
        deliveries = qdisc.transmit(1000, now_s=5.0)
        assert 0 <= len(deliveries) <= 2
        for delivery in deliveries:
            assert delivery.arrival_time_s >= 5.0

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_same_seed_same_outcome(self, seed):
        rule = NetemRule(delay_ms=10.0, jitter_ms=2.0, distribution="normal",
                         loss_probability=0.2)
        a = NetemQdisc(rule, rng=np.random.default_rng(seed))
        b = NetemQdisc(rule, rng=np.random.default_rng(seed))
        outcomes_a = [tuple((d.arrival_time_s, d.corrupted) for d in a.transmit(100, 0.0))
                      for _ in range(20)]
        outcomes_b = [tuple((d.arrival_time_s, d.corrupted) for d in b.transmit(100, 0.0))
                      for _ in range(20)]
        assert outcomes_a == outcomes_b


class TestLatencyStatisticsProperties:
    """Float-accumulation hazards in the figure aggregations (metrics.py).

    ``np.mean``/``np.percentile``/``np.median`` interpolation can round a
    hair outside the interval spanned by the samples; all statistics must
    stay clamped to the sample extremes.
    """

    @staticmethod
    def _series(latencies, times=None):
        from repro.analysis.metrics import LatencySeries

        series = LatencySeries("prop")
        for position, latency in enumerate(latencies):
            time_s = times[position] if times is not None else float(position)
            series.add(time_s, latency)
        return series

    @settings(max_examples=120, deadline=None)
    @given(
        latencies=st.lists(
            st.floats(min_value=0.0, max_value=1e308, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_percentile_and_mean_within_sample_extremes(self, latencies, q):
        series = self._series(latencies)
        low, high = min(latencies), max(latencies)
        assert low <= series.mean() <= high
        assert low <= series.percentile(q) <= high
        assert low <= series.median() <= high

    @settings(max_examples=80, deadline=None)
    @given(
        latencies=st.lists(
            st.floats(min_value=0.0, max_value=1e308, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        window=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_rolling_median_within_global_extremes(self, latencies, window):
        series = self._series(latencies)
        centres, medians = series.rolling_median(window_s=window)
        assert len(centres) == len(medians)
        assert medians.size > 0
        low, high = min(latencies), max(latencies)
        assert np.all(medians >= low)
        assert np.all(medians <= high)

    @settings(max_examples=60, deadline=None)
    @given(
        latencies=st.lists(
            st.floats(min_value=0.0, max_value=1e308, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
    )
    def test_cdf_fractions_monotone_and_bounded(self, latencies):
        series = self._series(latencies)
        values, fractions = series.cdf()
        assert np.all(np.diff(values) >= 0)
        assert np.all((fractions > 0) & (fractions <= 1.0))
        assert fractions[-1] == pytest.approx(1.0)


class TestConfigurationProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        planes=st.integers(min_value=1, max_value=40),
        per_plane=st.integers(min_value=1, max_value=40),
        altitude=st.floats(min_value=300.0, max_value=1500.0),
        inclination=st.floats(min_value=20.0, max_value=98.0),
        update_interval=st.floats(min_value=0.5, max_value=30.0),
        duration=st.floats(min_value=30.0, max_value=3600.0),
    )
    def test_dict_roundtrip_preserves_structure(
        self, planes, per_plane, altitude, inclination, update_interval, duration
    ):
        config = Configuration(
            shells=(
                ShellConfig(
                    name="shell",
                    geometry=ShellGeometry(planes, per_plane, altitude, inclination),
                ),
            ),
            ground_stations=(
                GroundStationConfig(station=GroundStation("gst", 10.0, 20.0)),
            ),
            update_interval_s=update_interval,
            duration_s=duration,
        )
        rebuilt = Configuration.from_dict(config.to_dict())
        assert rebuilt.total_satellites == planes * per_plane
        assert rebuilt.shells[0].geometry == config.shells[0].geometry
        assert rebuilt.update_interval_s == update_interval
        assert rebuilt.update_steps() == config.update_steps()
