"""Application processing-delay model.

In a preliminary baseline evaluation the paper finds that clients and bridge
server incur a 1.37 ms median processing delay with a 3.86 ms standard
deviation, caused by measurement software, packet duplication, packet
forwarding and clock drift (§4.1).  This module models that skewed
distribution as a lognormal with the given median and standard deviation.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


class ProcessingDelayModel:
    """Samples per-packet processing delays with a given median and std."""

    def __init__(
        self,
        median_ms: float = 1.37,
        std_ms: float = 3.86,
        rng: Optional[np.random.Generator] = None,
        floor_ms: float = 0.05,
    ):
        if median_ms <= 0:
            raise ValueError("median must be positive")
        if std_ms < 0:
            raise ValueError("standard deviation must be non-negative")
        self.median_ms = median_ms
        self.std_ms = std_ms
        self.floor_ms = floor_ms
        self._rng = rng if rng is not None else np.random.default_rng(0)
        # For a lognormal with median m and sigma s: std/median = e^{s^2/2} sqrt(e^{s^2}-1).
        # Solving x^2 - x = (std/median)^2 for x = e^{s^2} gives the closed form below.
        if std_ms == 0:
            self._sigma = 0.0
        else:
            ratio_sq = (std_ms / median_ms) ** 2
            x = (1.0 + math.sqrt(1.0 + 4.0 * ratio_sq)) / 2.0
            self._sigma = math.sqrt(math.log(x))

    def sample_ms(self) -> float:
        """One processing delay sample [ms]."""
        if self._sigma == 0.0:
            return self.median_ms
        value = self.median_ms * math.exp(self._sigma * float(self._rng.standard_normal()))
        return max(self.floor_ms, value)

    def sample_s(self) -> float:
        """One processing delay sample [s]."""
        return self.sample_ms() / 1000.0

    def expected_ms(self) -> float:
        """The median delay, used when computing *expected* latency (Fig. 5)."""
        return self.median_ms
