"""Example LEO edge applications used in the paper's evaluation.

* :mod:`repro.apps.processing` — the measured client/bridge processing-delay
  model (1.37 ms median, 3.86 ms standard deviation, §4.1).
* :mod:`repro.apps.video` — the §4 WebRTC-style video conference with a
  meetup/bridge server on a satellite or in the Johannesburg cloud, plus the
  tracking service that selects the optimal satellite.
* :mod:`repro.apps.dart` — the §5 real-time ocean environment alert system:
  DART buoys, an LSTM inference service (central or on-satellite) and
  ship/island data sinks.
"""

from repro.apps.processing import ProcessingDelayModel
from repro.apps.video import BridgeSelector, MeetupExperiment, MeetupResults, VideoStreamParams
from repro.apps.dart.experiment import DartExperiment, DartResults
from repro.apps.dart.lstm import StackedLSTM
from repro.apps.stateful import VirtualStationarityExperiment, VirtualStationarityResults

__all__ = [
    "BridgeSelector",
    "DartExperiment",
    "DartResults",
    "MeetupExperiment",
    "MeetupResults",
    "ProcessingDelayModel",
    "StackedLSTM",
    "VideoStreamParams",
    "VirtualStationarityExperiment",
    "VirtualStationarityResults",
]
