"""A NumPy stacked LSTM used by the inference service.

The paper's inference service uses a TensorFlow stacked LSTM network to
predict weather and environmental events from grouped sensor readings
(§5.1).  TensorFlow is not available offline, so this module implements the
forward pass of a stacked LSTM from scratch in NumPy: identical structure
(stacked recurrent layers followed by a dense read-out), deterministic
weights from a seed, and an inference-cost estimate used by the experiment's
processing-delay model (~2 ms per inference, §5.2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


class StackedLSTM:
    """A stacked LSTM with a dense output layer (forward pass only)."""

    def __init__(
        self,
        input_size: int,
        hidden_sizes: Sequence[int] = (32, 32),
        output_size: int = 1,
        seed: int = 0,
    ):
        if input_size <= 0 or output_size <= 0 or not hidden_sizes:
            raise ValueError("layer sizes must be positive and non-empty")
        self.input_size = input_size
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.output_size = output_size
        rng = np.random.default_rng(seed)
        self._layers = []
        previous = input_size
        for hidden in self.hidden_sizes:
            scale = 1.0 / np.sqrt(previous + hidden)
            self._layers.append(
                {
                    "w_x": rng.normal(0.0, scale, size=(4 * hidden, previous)),
                    "w_h": rng.normal(0.0, scale, size=(4 * hidden, hidden)),
                    "bias": np.zeros(4 * hidden),
                    "hidden": hidden,
                }
            )
            previous = hidden
        self._w_out = rng.normal(0.0, 1.0 / np.sqrt(previous), size=(output_size, previous))
        self._b_out = np.zeros(output_size)

    # -- forward pass ------------------------------------------------------

    @staticmethod
    def _cell_step(layer: dict, x: np.ndarray, h: np.ndarray, c: np.ndarray):
        hidden = layer["hidden"]
        gates = layer["w_x"] @ x + layer["w_h"] @ h + layer["bias"]
        i = _sigmoid(gates[:hidden])
        f = _sigmoid(gates[hidden : 2 * hidden])
        g = np.tanh(gates[2 * hidden : 3 * hidden])
        o = _sigmoid(gates[3 * hidden :])
        c_next = f * c + i * g
        h_next = o * np.tanh(c_next)
        return h_next, c_next

    def forward(self, sequence: np.ndarray) -> np.ndarray:
        """Run the network over a (timesteps, input_size) sequence."""
        sequence = np.asarray(sequence, dtype=float)
        if sequence.ndim == 1:
            sequence = sequence[:, None]
        if sequence.shape[1] != self.input_size:
            raise ValueError(
                f"expected input size {self.input_size}, got {sequence.shape[1]}"
            )
        states = [
            (np.zeros(layer["hidden"]), np.zeros(layer["hidden"])) for layer in self._layers
        ]
        for x in sequence:
            layer_input = x
            for index, layer in enumerate(self._layers):
                h, c = states[index]
                h, c = self._cell_step(layer, layer_input, h, c)
                states[index] = (h, c)
                layer_input = h
        return self._w_out @ states[-1][0] + self._b_out

    def predict(self, window: np.ndarray) -> np.ndarray:
        """Alias of :meth:`forward` matching the inference-service wording."""
        return self.forward(window)

    # -- metadata ------------------------------------------------------------

    def parameter_count(self) -> int:
        """Number of trainable parameters in the network."""
        count = 0
        for layer in self._layers:
            count += layer["w_x"].size + layer["w_h"].size + layer["bias"].size
        return count + self._w_out.size + self._b_out.size

    def inference_nominal_seconds(self) -> float:
        """Single-core inference duration estimate used as processing delay.

        The paper observes ~2 ms of processing latency per inference in both
        deployments (§5.2); the estimate scales mildly with model size.
        """
        base = 0.002
        return base * max(1.0, self.parameter_count() / 10_000.0)
