"""Sensor workload: readings, sensor groups and sink subscriptions.

Readings are grouped by sensor location and type before inference (§5);
results are distributed to the ships and islands in the vicinity of the
sensors.  The grouping here follows the geography: buoys are clustered into
groups by longitude/latitude, and every sink subscribes to the group whose
centroid is closest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.orbits import GroundStation
from repro.orbits.coordinates import great_circle_distance_km


@dataclass
class SensorReadingGenerator:
    """Generates synthetic bottom-pressure readings for one buoy.

    The signal is a slow tidal oscillation plus measurement noise; an
    optional anomaly (tsunami precursor) adds a transient pressure step,
    which is what the inference service is meant to detect.
    """

    base_pressure_hpa: float = 1013.0
    tidal_amplitude_hpa: float = 3.0
    tidal_period_s: float = 12.0 * 3600.0
    noise_std_hpa: float = 0.2
    anomaly_start_s: float | None = None
    anomaly_magnitude_hpa: float = 15.0
    seed: int = 0

    def __post_init__(self):
        self._rng = np.random.default_rng(self.seed)

    def reading(self, time_s: float) -> float:
        """One pressure reading at a given time [hPa]."""
        value = self.base_pressure_hpa + self.tidal_amplitude_hpa * np.sin(
            2.0 * np.pi * time_s / self.tidal_period_s
        )
        if self.anomaly_start_s is not None and time_s >= self.anomaly_start_s:
            value += self.anomaly_magnitude_hpa
        return float(value + self._rng.normal(0.0, self.noise_std_hpa))

    def window(self, end_time_s: float, samples: int = 16, interval_s: float = 1.0) -> np.ndarray:
        """A window of consecutive readings ending at ``end_time_s``."""
        times = end_time_s - interval_s * np.arange(samples - 1, -1, -1)
        return np.array([self.reading(float(t)) for t in times])


class SensorGroups:
    """Groups buoys geographically and subscribes sinks to nearby groups."""

    def __init__(self, buoys: list[GroundStation], sinks: list[GroundStation], group_count: int = 20):
        if group_count <= 0:
            raise ValueError("group count must be positive")
        if not buoys:
            raise ValueError("at least one buoy is required")
        self.group_count = min(group_count, len(buoys))
        # Sort buoys west-to-east (unwrapping the antimeridian) and slice into
        # contiguous groups, which keeps each group geographically compact.
        def sort_key(station: GroundStation) -> float:
            longitude = station.longitude_deg
            return longitude if longitude >= 0 else longitude + 360.0

        ordered = sorted(buoys, key=sort_key)
        self.group_of_buoy: dict[str, int] = {}
        for position, buoy in enumerate(ordered):
            group = min(self.group_count - 1, position * self.group_count // len(ordered))
            self.group_of_buoy[buoy.name] = group
        self._centroids = self._compute_centroids(buoys)
        self.sinks_of_group: dict[int, list[str]] = {g: [] for g in range(self.group_count)}
        self.group_of_sink: dict[str, int] = {}
        for sink in sinks:
            group = self._nearest_group(sink)
            self.sinks_of_group[group].append(sink.name)
            self.group_of_sink[sink.name] = group

    def _compute_centroids(self, buoys: list[GroundStation]) -> dict[int, tuple[float, float]]:
        sums: dict[int, list[float]] = {g: [0.0, 0.0, 0.0] for g in range(self.group_count)}
        for buoy in buoys:
            group = self.group_of_buoy[buoy.name]
            sums[group][0] += buoy.latitude_deg
            longitude = buoy.longitude_deg if buoy.longitude_deg >= 0 else buoy.longitude_deg + 360.0
            sums[group][1] += longitude
            sums[group][2] += 1.0
        centroids = {}
        for group, (lat_sum, lon_sum, count) in sums.items():
            if count == 0:
                centroids[group] = (0.0, 180.0)
                continue
            longitude = lon_sum / count
            if longitude > 180.0:
                longitude -= 360.0
            centroids[group] = (lat_sum / count, longitude)
        return centroids

    def _nearest_group(self, sink: GroundStation) -> int:
        best_group, best_distance = 0, float("inf")
        for group, (lat, lon) in self._centroids.items():
            distance = great_circle_distance_km(sink.latitude_deg, sink.longitude_deg, lat, lon)
            if distance < best_distance:
                best_group, best_distance = group, distance
        return best_group

    def subscribers(self, buoy_name: str) -> list[str]:
        """Sink names subscribed to a buoy's group."""
        return list(self.sinks_of_group[self.group_of_buoy[buoy_name]])

    def centroid(self, group: int) -> tuple[float, float]:
        """Latitude/longitude centroid of a group."""
        return self._centroids[group]
