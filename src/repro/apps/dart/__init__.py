"""The §5 DART-inspired real-time ocean environment alert application."""

from repro.apps.dart.lstm import StackedLSTM
from repro.apps.dart.workload import SensorGroups, SensorReadingGenerator
from repro.apps.dart.experiment import DartExperiment, DartResults

__all__ = [
    "DartExperiment",
    "DartResults",
    "SensorGroups",
    "SensorReadingGenerator",
    "StackedLSTM",
]
