"""The §5 ocean environment alert experiment.

100 data buoys transmit sensor readings over the Iridium constellation every
second; readings are run through an LSTM inference service either at the
central Pacific Tsunami Warning Center or on the Iridium satellites
(device-to-device), and results are forwarded to the ships and islands
subscribed to the sensor's group.  Sinks measure end-to-end latency from the
buoy's transmission to the result's arrival (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional

import numpy as np

from repro.analysis.metrics import LatencySeries
from repro.apps.dart.lstm import StackedLSTM
from repro.apps.dart.workload import SensorGroups, SensorReadingGenerator
from repro.core.constellation import MachineId
from repro.core.testbed import Celestial
from repro.orbits import GroundStation


@dataclass
class DartResults:
    """Results of one ocean-alert experiment run."""

    deployment: str
    sink_latencies: dict[str, LatencySeries] = field(default_factory=dict)
    sink_locations: dict[str, tuple[float, float]] = field(default_factory=dict)
    processing_ms: LatencySeries = field(default_factory=lambda: LatencySeries("processing"))
    readings_sent: int = 0
    results_delivered: int = 0

    def mean_latency_per_sink(self) -> dict[str, float]:
        """Mean observed end-to-end latency per sink [ms] (Fig. 11 colours)."""
        return {
            name: series.mean()
            for name, series in self.sink_latencies.items()
            if len(series) > 0
        }

    def all_latencies(self) -> LatencySeries:
        """All sink latency samples merged into one series."""
        merged = LatencySeries(f"dart-{self.deployment}")
        for series in self.sink_latencies.values():
            merged.extend(series.samples)
        return merged

    def latency_range_ms(self) -> tuple[float, float]:
        """(min, max) of the per-sink mean latencies [ms]."""
        means = list(self.mean_latency_per_sink().values())
        if not means:
            return (float("nan"), float("nan"))
        return (float(np.min(means)), float(np.max(means)))

    def mean_latency_by_region(self) -> dict[str, float]:
        """Mean latency split into West Pacific (lon >= 0 east of 150E) vs Americas."""
        regions: dict[str, list[float]] = {"west_pacific": [], "americas": []}
        for name, series in self.sink_latencies.items():
            if len(series) == 0 or name not in self.sink_locations:
                continue
            _, longitude = self.sink_locations[name]
            region = "west_pacific" if longitude >= 0.0 else "americas"
            regions[region].append(series.mean())
        return {
            region: float(np.mean(values)) if values else float("nan")
            for region, values in regions.items()
        }

    def summary_metrics(self) -> list[list]:
        """The headline ``[label, value]`` rows of a run (§5 reporting).

        Shared by the CLI table and the experiment runner's result bundle,
        so both surfaces report the identical quantities.
        """
        low, high = self.latency_range_ms()
        regions = self.mean_latency_by_region()
        return [
            ["readings sent", self.readings_sent],
            ["results delivered", self.results_delivered],
            ["mean latency [ms]", self.all_latencies().mean()],
            ["min/max sink mean [ms]", f"{low:.1f} / {high:.1f}"],
            ["West Pacific mean [ms]", regions["west_pacific"]],
            ["Americas mean [ms]", regions["americas"]],
            ["processing mean [ms]", self.processing_ms.mean()],
        ]


class DartExperiment:
    """Runs the DART-inspired remote-sensing workload on a Celestial testbed."""

    def __init__(
        self,
        testbed: Celestial,
        deployment: Literal["central", "satellite"] = "central",
        buoys: Optional[list[GroundStation]] = None,
        sinks: Optional[list[GroundStation]] = None,
        central_name: str = "pacific-tsunami-warning-center",
        group_count: int = 20,
        reading_interval_s: float = 1.0,
        reading_size_bytes: int = 512,
        result_size_bytes: int = 256,
        lstm: Optional[StackedLSTM] = None,
        run_inference: bool = False,
    ):
        if deployment not in ("central", "satellite"):
            raise ValueError(f"unknown deployment: {deployment!r}")
        self.testbed = testbed
        self.deployment = deployment
        config_names = set(testbed.config.ground_station_names)
        if buoys is None:
            buoys = [
                gst.station
                for gst in testbed.config.ground_stations
                if gst.name.startswith("buoy-")
            ]
        if sinks is None:
            sinks = [
                gst.station
                for gst in testbed.config.ground_stations
                if gst.name.startswith("sink-")
            ]
        missing = {station.name for station in buoys + sinks} - config_names
        if missing:
            raise ValueError(f"stations missing from the configuration: {sorted(missing)[:3]}")
        self.buoys = buoys
        self.sinks = sinks
        self.central = testbed.ground_station(central_name)
        self.groups = SensorGroups(buoys, sinks, group_count)
        self.reading_interval_s = reading_interval_s
        self.reading_size_bytes = reading_size_bytes
        self.result_size_bytes = result_size_bytes
        self.lstm = lstm if lstm is not None else StackedLSTM(input_size=1, hidden_sizes=(16, 16))
        self.run_inference = run_inference
        self.results = DartResults(deployment=deployment)
        self._generators = {
            buoy.name: SensorReadingGenerator(seed=index) for index, buoy in enumerate(buoys)
        }
        self._sink_endpoints = {}
        self._buoy_endpoints = {}
        self._inference_started: set[str] = set()

    # -- orchestration -------------------------------------------------------

    def run(self, duration_s: Optional[float] = None) -> DartResults:
        """Run the experiment and return the collected results."""
        self.testbed.start()
        sim = self.testbed.sim
        for sink in self.sinks:
            machine = self.testbed.ground_station(sink.name)
            self._sink_endpoints[sink.name] = self.testbed.endpoint(machine)
            self.results.sink_latencies[sink.name] = LatencySeries(sink.name)
            self.results.sink_locations[sink.name] = (sink.latitude_deg, sink.longitude_deg)
            sim.process(self._sink_process(sink.name))
        for buoy in self.buoys:
            machine = self.testbed.ground_station(buoy.name)
            self._buoy_endpoints[buoy.name] = self.testbed.endpoint(machine)
            sim.process(self._buoy_process(buoy.name))
        if self.deployment == "central":
            sim.process(self._inference_process(self.central))
            self._inference_started.add(self.central.name)
        self.testbed.run(until=duration_s)
        return self.results

    # -- processes ----------------------------------------------------------------

    def _inference_destination(self, buoy_name: str) -> Optional[MachineId]:
        if self.deployment == "central":
            return self.central
        uplinks = self.testbed.state.uplinks_of(buoy_name)
        if not uplinks:
            return None
        nearest = uplinks[0]
        satellite = self.testbed.satellite(nearest.shell, nearest.satellite)
        if satellite.name not in self._inference_started:
            self._inference_started.add(satellite.name)
            self.testbed.sim.process(self._inference_process(satellite))
        return satellite

    def _buoy_process(self, buoy_name: str):
        sim = self.testbed.sim
        endpoint = self._buoy_endpoints[buoy_name]
        generator = self._generators[buoy_name]
        while True:
            destination = self._inference_destination(buoy_name)
            if destination is not None:
                payload = {
                    "origin": buoy_name,
                    "sent": sim.now,
                    "group": self.groups.group_of_buoy[buoy_name],
                    "reading": generator.reading(sim.now),
                }
                endpoint.send(destination, self.reading_size_bytes, payload=payload)
                self.results.readings_sent += 1
            yield sim.timeout(self.reading_interval_s)

    def _inference_process(self, machine: MachineId):
        sim = self.testbed.sim
        endpoint = self.testbed.endpoint(machine)
        while True:
            message = yield endpoint.receive()
            nominal = self.lstm.inference_nominal_seconds()
            if self.run_inference:
                window = np.full((8, self.lstm.input_size), message.payload["reading"])
                self.lstm.predict(window)
            delay_s = self.testbed.processing_delay_s(machine, nominal)
            yield sim.timeout(delay_s)
            self.results.processing_ms.add(sim.now, delay_s * 1000.0)
            payload = dict(message.payload)
            payload["inference_at"] = machine.name
            for sink_name in self.groups.subscribers(message.payload["origin"]):
                sink_machine = self.testbed.ground_station(sink_name)
                endpoint.send(sink_machine, self.result_size_bytes, payload=payload)

    def _sink_process(self, sink_name: str):
        sim = self.testbed.sim
        endpoint = self._sink_endpoints[sink_name]
        while True:
            message = yield endpoint.receive()
            latency_ms = (sim.now - message.payload["sent"]) * 1000.0
            self.results.sink_latencies[sink_name].add(
                sim.now, latency_ms, message.payload["origin"], sink_name
            )
            self.results.results_delivered += 1
