"""Virtual stationarity: state management on the moving LEO edge (§6.7).

The paper's future-work section highlights state management as the key open
challenge: clients frequently connect to new satellite servers, and
Bhattacherjee et al. propose *virtual stationarity* — migrating server-side
state between satellites based on their position relative to Earth, so data
appears to stay in the same place from the clients' perspective.  Celestial
itself deliberately ships no such strategy; it is the testbed on which such
strategies are evaluated.  This module implements exactly that kind of
evaluation subject: a small key-value service anchored to a geographic
location, with a migration service that moves its state to whichever
satellite currently serves that location, and clients measuring read latency
and staleness under two policies (proactive migration vs. none).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional

from repro.analysis.metrics import LatencySeries
from repro.core.constellation import MachineId
from repro.core.testbed import Celestial


@dataclass
class VirtualStationarityResults:
    """Results of one virtual-stationarity run."""

    policy: str
    read_latency: LatencySeries = field(default_factory=lambda: LatencySeries("reads"))
    migration_count: int = 0
    migration_downtime_s: float = 0.0
    hits: int = 0
    misses: int = 0
    anchor_history: list[tuple[float, str]] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        """Fraction of reads answered by a satellite that held the state."""
        total = self.hits + self.misses
        return self.hits / total if total else float("nan")


class VirtualStationarityExperiment:
    """Evaluates state migration between satellite servers on a testbed.

    ``policy`` selects the strategy under test:

    * ``"proactive"`` — a migration service checks the anchor location every
      ``migration_interval_s`` and copies the state to the satellite that now
      serves the anchor, so reads almost always hit.
    * ``"static"`` — the state stays on the satellite that held it first
      (no migration); as the constellation moves, reads increasingly miss and
      must be redirected, paying an extra round trip.
    """

    def __init__(
        self,
        testbed: Celestial,
        anchor_station: str,
        client_stations: Optional[list[str]] = None,
        policy: Literal["proactive", "static"] = "proactive",
        state_size_bytes: int = 256 * 1024,
        read_interval_s: float = 1.0,
        migration_interval_s: float = 5.0,
        request_size_bytes: int = 256,
    ):
        if policy not in ("proactive", "static"):
            raise ValueError(f"unknown policy: {policy!r}")
        self.testbed = testbed
        self.policy = policy
        self.anchor = testbed.ground_station(anchor_station)
        client_names = client_stations if client_stations is not None else [anchor_station]
        self.clients = [testbed.ground_station(name) for name in client_names]
        self.state_size_bytes = state_size_bytes
        self.read_interval_s = read_interval_s
        self.migration_interval_s = migration_interval_s
        self.request_size_bytes = request_size_bytes
        self.results = VirtualStationarityResults(policy=policy)
        self._state_holder: Optional[MachineId] = None
        self._holder_endpoints: dict[str, object] = {}

    # -- helpers ---------------------------------------------------------------

    def _anchor_satellite(self) -> Optional[MachineId]:
        uplinks = self.testbed.state.uplinks_of(self.anchor.name)
        if not uplinks:
            return None
        nearest = uplinks[0]
        return self.testbed.satellite(nearest.shell, nearest.satellite)

    def _ensure_service(self, machine: MachineId) -> None:
        if machine.name not in self._holder_endpoints:
            self.testbed.ensure_machine(machine)
            endpoint = self.testbed.endpoint(machine)
            self._holder_endpoints[machine.name] = endpoint
            self.testbed.sim.process(self._service_process(machine, endpoint))

    # -- processes --------------------------------------------------------------

    def _migration_process(self):
        sim = self.testbed.sim
        while True:
            target = self._anchor_satellite()
            if target is not None:
                if self._state_holder is None:
                    self._ensure_service(target)
                    self._state_holder = target
                    self.results.anchor_history.append((sim.now, target.name))
                elif self.policy == "proactive" and target.name != self._state_holder.name:
                    self._ensure_service(target)
                    # Moving the state takes one transfer over the network:
                    # serialization at the bottleneck bandwidth plus the path
                    # delay between the old and new holder.
                    rule = self.testbed.database.pair_rule(self._state_holder, target)
                    bandwidth = rule.bandwidth_kbps or 10_000_000.0
                    transfer_s = (
                        self.state_size_bytes * 8.0 / (bandwidth * 1000.0)
                        + max(0.0, rule.delay_ms) / 1000.0
                    )
                    yield sim.timeout(transfer_s)
                    self.results.migration_count += 1
                    self.results.migration_downtime_s += transfer_s
                    self._state_holder = target
                    self.results.anchor_history.append((sim.now, target.name))
            yield sim.timeout(self.migration_interval_s)

    def _service_process(self, machine: MachineId, endpoint):
        sim = self.testbed.sim
        while True:
            message = yield endpoint.receive()
            holder = self._state_holder
            hit = holder is not None and holder.name == machine.name
            reply = dict(message.payload)
            reply["hit"] = hit
            processing = self.testbed.processing_delay_s(machine, 0.001)
            yield sim.timeout(processing)
            if not hit and holder is not None:
                # Redirect: fetch the value from the actual holder first.
                rule = self.testbed.database.pair_rule(machine, holder)
                if rule.reachable:
                    yield sim.timeout(2.0 * rule.delay_ms / 1000.0)
            endpoint.send(message.payload["client"], self.request_size_bytes, payload=reply)

    def _client_process(self, client: MachineId):
        sim = self.testbed.sim
        endpoint = self.testbed.endpoint(client)
        pending: dict[int, float] = {}
        sequence = 0

        def reader():
            nonlocal sequence
            while True:
                target = self._current_read_target(client)
                if target is not None:
                    sequence += 1
                    pending[sequence] = sim.now
                    endpoint.send(
                        target,
                        self.request_size_bytes,
                        payload={"client": client, "sequence": sequence},
                    )
                yield sim.timeout(self.read_interval_s)

        def receiver():
            while True:
                message = yield endpoint.receive()
                sent_at = pending.pop(message.payload["sequence"], None)
                if sent_at is None:
                    continue
                self.results.read_latency.add(
                    sim.now, (sim.now - sent_at) * 1000.0, client.name, message.source.name
                )
                if message.payload.get("hit"):
                    self.results.hits += 1
                else:
                    self.results.misses += 1

        sim.process(reader())
        sim.process(receiver())

    def _current_read_target(self, client: MachineId) -> Optional[MachineId]:
        # Clients always talk to the satellite currently serving the anchor
        # location (that is what virtual stationarity promises them); under
        # the static policy this satellite may no longer hold the state.
        target = self._anchor_satellite()
        if target is None:
            return self._state_holder
        self._ensure_service(target)
        return target

    # -- orchestration ------------------------------------------------------------

    def run(self, duration_s: Optional[float] = None) -> VirtualStationarityResults:
        """Run the experiment and return the collected results."""
        self.testbed.start()
        self.testbed.sim.process(self._migration_process())
        for client in self.clients:
            self._client_process(client)
        self.testbed.run(until=duration_s)
        return self.results
