"""The §4 LEO edge application: a WebRTC-style video conference.

Three clients (Accra, Abuja, Yaoundé) send a constant-bit-rate video stream
(2.6 Mb/s each) to a common bridge/meetup server, which duplicates every
stream to the other participants.  The bridge runs either in the Johannesburg
cloud data centre or on the currently-optimal satellite server; in the latter
case a tracking service in the data centre periodically checks the satellites
in reach of the clients and instructs them to use the best one (§4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional

import numpy as np

from repro.analysis.metrics import LatencySeries
from repro.apps.processing import ProcessingDelayModel
from repro.core.constellation import MachineId
from repro.core.testbed import Celestial


@dataclass(frozen=True)
class VideoStreamParams:
    """Parameters of one client's video stream."""

    bitrate_kbps: float = 2600.0
    packet_interval_s: float = 0.02

    def __post_init__(self):
        if self.bitrate_kbps <= 0 or self.packet_interval_s <= 0:
            raise ValueError("stream parameters must be positive")

    @property
    def packet_size_bytes(self) -> int:
        """Size of one video packet at the configured bitrate and pacing."""
        return max(1, int(self.bitrate_kbps * 1000.0 / 8.0 * self.packet_interval_s))


class BridgeSelector:
    """Holds the currently-selected bridge server and its selection history."""

    def __init__(self):
        self.current: Optional[MachineId] = None
        self.history: list[tuple[float, str]] = []

    def select(self, time_s: float, machine: MachineId) -> bool:
        """Set the current bridge; returns True if it changed."""
        changed = self.current is None or self.current.name != machine.name
        self.current = machine
        if changed:
            self.history.append((time_s, machine.name))
        return changed

    @property
    def distinct_bridges(self) -> list[str]:
        """Names of all machines that have served as the bridge."""
        return [name for _, name in self.history]


@dataclass
class MeetupResults:
    """Results of one meetup/video-conference run."""

    mode: str
    measured: dict[tuple[str, str], LatencySeries] = field(default_factory=dict)
    expected: dict[tuple[str, str], LatencySeries] = field(default_factory=dict)
    bridge_history: list[tuple[float, str]] = field(default_factory=list)
    selected_shells: list[int] = field(default_factory=list)

    def pair(self, source: str, destination: str) -> LatencySeries:
        """Measured end-to-end latency series of one ordered client pair."""
        return self.measured[(source, destination)]

    def expected_pair(self, source: str, destination: str) -> LatencySeries:
        """Expected (simulated distance + processing) series of a client pair."""
        return self.expected[(source, destination)]

    def all_measurements(self) -> LatencySeries:
        """All measured samples across every client pair."""
        merged = LatencySeries(f"meetup-{self.mode}")
        for series in self.measured.values():
            merged.extend(series.samples)
        return merged

    def summary_metrics(self) -> list[list]:
        """The headline ``[label, value]`` rows of a run (§4 reporting).

        Shared by the CLI table and the experiment runner's result bundle,
        so both surfaces report the identical quantities.
        """
        merged = self.all_measurements()
        return [
            ["samples", len(merged)],
            ["median latency [ms]", merged.median()],
            ["p80 latency [ms]", merged.percentile(80)],
            ["fraction <= 16 ms", merged.fraction_below(16.0)],
            ["fraction <= 46 ms", merged.fraction_below(46.0)],
            ["bridge handovers", max(0, len(self.bridge_history) - 1)],
        ]


class MeetupExperiment:
    """Runs the §4 meetup experiment on a Celestial testbed."""

    def __init__(
        self,
        testbed: Celestial,
        mode: Literal["satellite", "cloud"] = "satellite",
        client_names: tuple[str, ...] = ("accra", "abuja", "yaounde"),
        cloud_bridge_name: str = "johannesburg-cloud",
        tracking_name: str = "johannesburg-tracking",
        stream: VideoStreamParams = VideoStreamParams(),
        tracking_interval_s: float = 5.0,
        processing: Optional[ProcessingDelayModel] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if mode not in ("satellite", "cloud"):
            raise ValueError(f"unknown mode: {mode!r}")
        self.testbed = testbed
        self.mode = mode
        self.stream = stream
        self.tracking_interval_s = tracking_interval_s
        self._rng = rng if rng is not None else testbed.streams.stream("meetup")
        self.processing = processing or ProcessingDelayModel(rng=self._rng)
        self.clients = {name: testbed.ground_station(name) for name in client_names}
        self.cloud_bridge = testbed.ground_station(cloud_bridge_name)
        self.tracking_machine = testbed.ground_station(tracking_name)
        self.selector = BridgeSelector()
        self.results = MeetupResults(mode=mode)
        for source in client_names:
            for destination in client_names:
                if source != destination:
                    self.results.measured[(source, destination)] = LatencySeries(
                        f"{source}->{destination} measured"
                    )
                    self.results.expected[(source, destination)] = LatencySeries(
                        f"{source}->{destination} expected"
                    )
        self._client_endpoints = {}
        self._bridge_processes_started: set[str] = set()

    # -- experiment orchestration ---------------------------------------------

    def run(self, duration_s: Optional[float] = None) -> MeetupResults:
        """Run the experiment and return the collected results."""
        self.testbed.start()
        sim = self.testbed.sim
        for name, machine in self.clients.items():
            self._client_endpoints[name] = self.testbed.endpoint(machine)
            self.testbed.set_busy(machine, 0.4)
        self.testbed.set_busy(self.tracking_machine, 0.2)
        sim.process(self._tracking_process())
        for name in self.clients:
            sim.process(self._client_send_process(name))
            sim.process(self._client_receive_process(name))
        self.testbed.run(until=duration_s)
        self.results.bridge_history = list(self.selector.history)
        return self.results

    # -- tracking service ----------------------------------------------------------

    def _select_satellite_bridge(self) -> Optional[MachineId]:
        state = self.testbed.state
        candidate_sets = []
        for machine in self.clients.values():
            uplinks = state.uplinks_of(machine.name)
            candidate_sets.append({(u.shell, u.satellite) for u in uplinks})
        if not candidate_sets or not all(candidate_sets):
            return None
        common = set.intersection(*candidate_sets)
        candidates = common if common else set.union(*candidate_sets)
        best_key, best_latency = None, float("inf")
        for shell, satellite in candidates:
            satellite_machine = self.testbed.satellite(shell, satellite)
            combined = max(
                state.delay_ms(client, satellite_machine) for client in self.clients.values()
            )
            if combined < best_latency:
                best_key, best_latency = (shell, satellite), combined
        if best_key is None:
            return None
        return self.testbed.satellite(*best_key)

    def _tracking_process(self):
        sim = self.testbed.sim
        while True:
            if self.mode == "cloud":
                bridge = self.cloud_bridge
            else:
                bridge = self._select_satellite_bridge()
            if bridge is not None:
                if bridge.is_satellite:
                    self.testbed.ensure_machine(bridge)
                    self.results.selected_shells.append(bridge.shell)
                self.selector.select(sim.now, bridge)
                if bridge.name not in self._bridge_processes_started:
                    self._bridge_processes_started.add(bridge.name)
                    sim.process(self._bridge_process(bridge))
                self._record_expected_latencies(bridge)
            yield sim.timeout(self.tracking_interval_s)

    def _record_expected_latencies(self, bridge: MachineId) -> None:
        state = self.testbed.state
        now = self.testbed.sim.now
        for source_name, source in self.clients.items():
            for destination_name, destination in self.clients.items():
                if source_name == destination_name:
                    continue
                expected = (
                    state.delay_ms(source, bridge)
                    + state.delay_ms(bridge, destination)
                    + self.processing.expected_ms()
                )
                if np.isfinite(expected):
                    self.results.expected[(source_name, destination_name)].add(
                        now, float(expected), source_name, destination_name
                    )

    # -- data plane processes ----------------------------------------------------------

    def _client_send_process(self, client_name: str):
        sim = self.testbed.sim
        endpoint = self._client_endpoints[client_name]
        size = self.stream.packet_size_bytes
        while True:
            bridge = self.selector.current
            if bridge is not None:
                endpoint.send(
                    bridge, size, payload={"origin": client_name, "sent": sim.now}
                )
            yield sim.timeout(self.stream.packet_interval_s)

    def _bridge_process(self, bridge: MachineId):
        sim = self.testbed.sim
        endpoint = self.testbed.endpoint(bridge)
        if self.testbed.coordinator.has_machine(bridge):
            self.testbed.set_busy(bridge, 0.6)
        while True:
            message = yield endpoint.receive()
            delay_s = self.testbed.processing_delay_s(bridge, self.processing.sample_s())
            yield sim.timeout(delay_s)
            origin = message.payload["origin"]
            for client_name, client in self.clients.items():
                if client_name == origin:
                    continue
                endpoint.send(client, message.size_bytes, payload=dict(message.payload))

    def _client_receive_process(self, client_name: str):
        sim = self.testbed.sim
        endpoint = self._client_endpoints[client_name]
        while True:
            message = yield endpoint.receive()
            origin = message.payload["origin"]
            if origin == client_name:
                continue
            latency_ms = (sim.now - message.payload["sent"]) * 1000.0
            self.results.measured[(origin, client_name)].add(
                sim.now, latency_ms, origin, client_name
            )
