"""Resource usage traces for Celestial hosts (CPU, memory, process counts)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class UsageSample:
    """One sample of host resource usage, as plotted in Figs. 7 and 8."""

    time_s: float
    machine_manager_cpu_percent: float
    microvm_cpu_percent: float
    machine_manager_memory_percent: float
    microvm_memory_percent: float
    firecracker_processes: int

    @property
    def total_cpu_percent(self) -> float:
        """Combined machine-manager and microVM CPU usage."""
        return self.machine_manager_cpu_percent + self.microvm_cpu_percent

    @property
    def total_memory_percent(self) -> float:
        """Combined machine-manager and microVM memory usage."""
        return self.machine_manager_memory_percent + self.microvm_memory_percent


class ResourceTrace:
    """A time series of host resource usage samples."""

    def __init__(self):
        self._samples: list[UsageSample] = []

    def record(self, sample: UsageSample) -> None:
        """Append a sample (samples must be recorded in time order)."""
        if self._samples and sample.time_s < self._samples[-1].time_s:
            raise ValueError("samples must be recorded in non-decreasing time order")
        self._samples.append(sample)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterable[UsageSample]:
        return iter(self._samples)

    @property
    def samples(self) -> list[UsageSample]:
        """All recorded samples."""
        return list(self._samples)

    def times(self) -> np.ndarray:
        """Sample timestamps [s]."""
        return np.array([sample.time_s for sample in self._samples])

    def cpu_percent(self) -> np.ndarray:
        """Total CPU usage per sample [%]."""
        return np.array([sample.total_cpu_percent for sample in self._samples])

    def memory_percent(self) -> np.ndarray:
        """Total memory usage per sample [%]."""
        return np.array([sample.total_memory_percent for sample in self._samples])

    def machine_manager_cpu_percent(self) -> np.ndarray:
        """Machine-manager CPU usage per sample [%]."""
        return np.array([s.machine_manager_cpu_percent for s in self._samples])

    def microvm_memory_percent(self) -> np.ndarray:
        """microVM memory usage per sample [%]."""
        return np.array([s.microvm_memory_percent for s in self._samples])

    def firecracker_processes(self) -> np.ndarray:
        """Number of Firecracker processes per sample."""
        return np.array([s.firecracker_processes for s in self._samples])

    def peak_cpu_percent(self) -> float:
        """Highest total CPU usage observed."""
        return float(np.max(self.cpu_percent())) if self._samples else 0.0

    def peak_memory_percent(self) -> float:
        """Highest total memory usage observed."""
        return float(np.max(self.memory_percent())) if self._samples else 0.0

    def mean_cpu_percent(self, after_s: float = 0.0) -> float:
        """Mean total CPU usage over samples at or after ``after_s``."""
        values = [
            sample.total_cpu_percent for sample in self._samples if sample.time_s >= after_s
        ]
        return float(np.mean(values)) if values else 0.0
