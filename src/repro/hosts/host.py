"""A Celestial host: a physical (cloud) server running microVMs.

Hosts support over-provisioning of CPU (microVM vCPUs may exceed physical
cores, §4.1) while memory is a hard constraint because every booted microVM
keeps its full allocation reserved (§4.2).  The host also accounts for the
Machine Manager's own overhead so the usage traces of Figs. 7-8 can be
reproduced.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hosts.resources import ResourceTrace, UsageSample
from repro.microvm import MachineState, MicroVM, OverlayStore


class HostError(RuntimeError):
    """Raised when a host cannot accommodate a machine."""


#: Machine-manager steady-state CPU overhead (paper: ~0.2% of the host).
MACHINE_MANAGER_CPU_PERCENT = 0.2
#: Extra machine-manager CPU cost while applying a constellation update.
MACHINE_MANAGER_UPDATE_CPU_PERCENT = 1.5
#: Machine-manager CPU burst during initial host/network setup.
MACHINE_MANAGER_SETUP_CPU_PERCENT = 25.0
#: Machine-manager memory overhead right after setup (paper: up to 4.5%).
MACHINE_MANAGER_MEMORY_PERCENT_PEAK = 4.5
MACHINE_MANAGER_MEMORY_PERCENT_STEADY = 3.0


class Host:
    """One emulation host with bounded memory and over-provisionable CPU."""

    def __init__(
        self,
        index: int,
        cpu_cores: int = 32,
        memory_mib: int = 32 * 1024,
        allow_memory_overcommit: bool = False,
    ):
        if cpu_cores <= 0 or memory_mib <= 0:
            raise ValueError("host resources must be positive")
        self.index = index
        self.cpu_cores = cpu_cores
        self.memory_mib = memory_mib
        self.allow_memory_overcommit = allow_memory_overcommit
        self.machines: dict[str, MicroVM] = {}
        self.overlay_store = OverlayStore()
        self.trace = ResourceTrace()
        self._busy_fractions: dict[str, float] = {}

    # -- placement ---------------------------------------------------------

    def reserved_memory_mib(self) -> float:
        """Memory reserved by all placed machines (booted or not)."""
        return float(
            sum(machine.resources.memory_mib for machine in self.machines.values())
        )

    def allocated_memory_mib(self) -> float:
        """Memory held by booted (running or suspended) machines."""
        return sum(machine.memory_footprint_mib() for machine in self.machines.values())

    def allocated_vcpus(self) -> int:
        """Total vCPUs of all placed machines (may exceed physical cores)."""
        return sum(machine.resources.vcpu_count for machine in self.machines.values())

    def can_place(self, machine: MicroVM) -> bool:
        """Whether the machine's memory allocation fits on this host."""
        if self.allow_memory_overcommit:
            return True
        prospective = self.reserved_memory_mib() + machine.resources.memory_mib
        return prospective <= self.memory_mib

    def place(self, machine: MicroVM) -> None:
        """Place a machine on this host (it is not booted yet)."""
        if machine.name in self.machines:
            raise HostError(f"machine {machine.name!r} is already placed on host {self.index}")
        if not self.can_place(machine):
            raise HostError(
                f"host {self.index} cannot fit machine {machine.name!r}: "
                f"{self.reserved_memory_mib() + machine.resources.memory_mib:.0f} MiB "
                f"needed, {self.memory_mib} MiB available"
            )
        self.machines[machine.name] = machine
        self.overlay_store.create_overlay(machine.name, machine.rootfs)

    def remove(self, machine_name: str) -> None:
        """Remove a machine and its overlay from this host."""
        self.machines.pop(machine_name, None)
        self._busy_fractions.pop(machine_name, None)
        self.overlay_store.remove_overlay(machine_name)

    def machine(self, name: str) -> MicroVM:
        """Look up a placed machine by name."""
        if name not in self.machines:
            raise HostError(f"machine {name!r} is not placed on host {self.index}")
        return self.machines[name]

    # -- workload accounting ------------------------------------------------

    def set_busy_fraction(self, machine_name: str, fraction: float) -> None:
        """Report how busy a machine's workload keeps its vCPUs (0..1)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("busy fraction must be in [0, 1]")
        self.machine(machine_name)
        self._busy_fractions[machine_name] = fraction

    def booted_machine_count(self) -> int:
        """Number of machines that have booted (running or suspended)."""
        return sum(1 for machine in self.machines.values() if machine.is_booted)

    def running_machine_count(self) -> int:
        """Number of machines currently running."""
        return sum(1 for machine in self.machines.values() if machine.is_running)

    def cpu_cores_in_use(self) -> float:
        """Host cores currently consumed by all microVMs."""
        total = 0.0
        for name, machine in self.machines.items():
            total += machine.cpu_cores_in_use(self._busy_fractions.get(name))
        return min(total, float(self.cpu_cores))

    def microvm_cpu_percent(self) -> float:
        """microVM CPU usage as a percentage of the host's cores."""
        return 100.0 * self.cpu_cores_in_use() / self.cpu_cores

    def microvm_memory_percent(self) -> float:
        """microVM memory usage as a percentage of the host's memory."""
        return 100.0 * self.allocated_memory_mib() / self.memory_mib

    @staticmethod
    def sample_rng_draws(setup_phase: bool = False, applying_update: bool = False) -> int:
        """Number of random variates one :meth:`sample_usage` call consumes.

        Kept next to :meth:`sample_usage` because the two must evolve
        together: a replica that mirrors a sampling host without sampling
        itself (the coordinator-side shadow managers of
        ``repro.dist.backend``) advances its RNG stream by exactly this many
        draws to stay in lockstep.
        """
        if setup_phase:
            return 1
        return 2 if applying_update else 1

    def sample_usage(
        self,
        now_s: float,
        setup_phase: bool = False,
        applying_update: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> UsageSample:
        """Record and return one resource-usage sample for this host."""
        rng = rng if rng is not None else np.random.default_rng(0)
        if setup_phase:
            manager_cpu = MACHINE_MANAGER_SETUP_CPU_PERCENT * (0.8 + 0.4 * rng.random())
            manager_memory = MACHINE_MANAGER_MEMORY_PERCENT_PEAK
        else:
            manager_cpu = MACHINE_MANAGER_CPU_PERCENT * (0.5 + rng.random())
            if applying_update:
                manager_cpu += MACHINE_MANAGER_UPDATE_CPU_PERCENT * (0.5 + rng.random())
            manager_memory = MACHINE_MANAGER_MEMORY_PERCENT_STEADY
        booting = sum(
            1 for machine in self.machines.values() if machine.state is MachineState.BOOTING
        )
        sample = UsageSample(
            time_s=now_s,
            machine_manager_cpu_percent=manager_cpu,
            microvm_cpu_percent=self.microvm_cpu_percent() + 2.0 * booting,
            machine_manager_memory_percent=manager_memory,
            microvm_memory_percent=self.microvm_memory_percent(),
            firecracker_processes=self.booted_machine_count(),
        )
        self.trace.record(sample)
        return sample
