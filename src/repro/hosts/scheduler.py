"""Placement of microVMs onto Celestial hosts.

Celestial distributes microVMs across all of its hosts (§3.3).  The paper's
experiments additionally pin all latency-measuring clients onto the same host
so they can share a PTP clock (§4.1); the scheduler supports such affinity
groups.  A more advanced scheduler (e.g. FirePlace, §6.1) could be plugged in
behind the same interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.hosts.host import Host
from repro.microvm import MicroVM


class PlacementError(RuntimeError):
    """Raised when machines cannot be placed on the available hosts."""


@dataclass
class MachinePlacement:
    """Result of placing a set of machines on a set of hosts."""

    host_of_machine: dict[str, int] = field(default_factory=dict)

    def host_for(self, machine_name: str) -> int:
        """Host index of a machine."""
        if machine_name not in self.host_of_machine:
            raise KeyError(f"machine {machine_name!r} has not been placed")
        return self.host_of_machine[machine_name]

    def machines_on(self, host_index: int) -> list[str]:
        """Names of all machines placed on one host."""
        return [name for name, host in self.host_of_machine.items() if host == host_index]

    def colocated(self, machine_a: str, machine_b: str) -> bool:
        """Whether two machines share a host."""
        return self.host_for(machine_a) == self.host_for(machine_b)


def place_machines(
    machines: Sequence[MicroVM],
    hosts: Sequence[Host],
    affinity_groups: Optional[Iterable[Sequence[str]]] = None,
) -> MachinePlacement:
    """Place machines on hosts, least-loaded (by memory) first.

    ``affinity_groups`` lists groups of machine names that must share a host
    (e.g. all measurement clients).  Each group is placed first, on the host
    with the most free memory.
    """
    if not hosts:
        raise PlacementError("at least one host is required")
    machine_by_name = {machine.name: machine for machine in machines}
    if len(machine_by_name) != len(machines):
        raise PlacementError("machine names must be unique")
    placement = MachinePlacement()
    remaining = dict(machine_by_name)

    def free_memory(host: Host) -> float:
        return host.memory_mib - host.reserved_memory_mib()

    for group in affinity_groups or []:
        group_machines = []
        for name in group:
            if name not in machine_by_name:
                raise PlacementError(f"affinity group references unknown machine {name!r}")
            if name in remaining:
                group_machines.append(remaining.pop(name))
        if not group_machines:
            continue
        target = max(hosts, key=free_memory)
        for machine in group_machines:
            target.place(machine)
            placement.host_of_machine[machine.name] = target.index

    for machine in remaining.values():
        candidates = sorted(hosts, key=free_memory, reverse=True)
        for host in candidates:
            if host.can_place(machine):
                host.place(machine)
                placement.host_of_machine[machine.name] = host.index
                break
        else:
            raise PlacementError(
                f"no host has enough free memory for machine {machine.name!r}"
            )
    return placement
