"""Celestial host substrate: physical servers that run microVMs.

Celestial runs on an arbitrary number of standard Linux servers ("hosts"),
each running a Machine Manager that boots microVMs, shapes their network and
reports resource usage (§3).  This package models hosts, the placement of
machines onto hosts, and CPU/memory usage accounting used to reproduce the
efficiency measurements of Figs. 7 and 8.
"""

from repro.hosts.host import Host, HostError
from repro.hosts.resources import ResourceTrace, UsageSample
from repro.hosts.scheduler import MachinePlacement, PlacementError, place_machines
from repro.hosts.migration import MigrationEvent, MigrationPlanEntry, MigrationScheduler

__all__ = [
    "Host",
    "HostError",
    "MachinePlacement",
    "MigrationEvent",
    "MigrationPlanEntry",
    "MigrationScheduler",
    "PlacementError",
    "ResourceTrace",
    "UsageSample",
    "place_machines",
]
