"""microVM migration between hosts (FirePlace-style rebalancing, §6.1).

The paper notes that network or resource bottlenecks on individual hosts
could be mitigated by dynamically migrating satellite-server microVMs across
hosts, using a more advanced scheduler such as FirePlace.  This module
implements such a rebalancing scheduler on top of the host substrate: it
plans moves that even out reserved memory across hosts and executes them,
accounting for the transfer downtime of each migrated machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hosts.host import Host
from repro.microvm import MachineState


@dataclass(frozen=True)
class MigrationPlanEntry:
    """One planned microVM move."""

    machine_name: str
    source_host: int
    target_host: int
    memory_mib: int


@dataclass(frozen=True)
class MigrationEvent:
    """One executed microVM move."""

    time_s: float
    machine_name: str
    source_host: int
    target_host: int
    downtime_s: float


@dataclass
class MigrationScheduler:
    """Plans and executes memory-balancing microVM migrations across hosts.

    ``imbalance_threshold_mib`` is the reserved-memory spread between the
    fullest and emptiest host above which rebalancing kicks in;
    ``transfer_rate_mbps`` models the host-to-host copy bandwidth used to
    compute per-migration downtime (suspend, copy memory, resume).
    """

    hosts: list[Host]
    imbalance_threshold_mib: float = 4096.0
    transfer_rate_mbps: float = 10_000.0
    migration_overhead_s: float = 0.2
    events: list[MigrationEvent] = field(default_factory=list)

    def __post_init__(self):
        if len(self.hosts) < 2:
            raise ValueError("migration requires at least two hosts")
        if self.imbalance_threshold_mib < 0:
            raise ValueError("imbalance threshold must be non-negative")
        if self.transfer_rate_mbps <= 0:
            raise ValueError("transfer rate must be positive")

    # -- metrics ------------------------------------------------------------

    def imbalance_mib(self) -> float:
        """Current reserved-memory spread between fullest and emptiest host."""
        reserved = [host.reserved_memory_mib() for host in self.hosts]
        return max(reserved) - min(reserved)

    def migration_downtime_s(self, memory_mib: float) -> float:
        """Downtime of migrating one machine with the given memory size."""
        transfer_s = memory_mib * 8.0 / self.transfer_rate_mbps
        return self.migration_overhead_s + transfer_s

    # -- planning -------------------------------------------------------------

    def plan(self, max_moves: int = 16) -> list[MigrationPlanEntry]:
        """Greedy plan of moves that reduces the reserved-memory imbalance."""
        if max_moves <= 0:
            raise ValueError("max_moves must be positive")
        reserved = {host.index: host.reserved_memory_mib() for host in self.hosts}
        machines = {
            host.index: sorted(
                host.machines.values(), key=lambda m: m.resources.memory_mib, reverse=True
            )
            for host in self.hosts
        }
        plan: list[MigrationPlanEntry] = []
        for _ in range(max_moves):
            fullest = max(reserved, key=reserved.get)
            emptiest = min(reserved, key=reserved.get)
            spread = reserved[fullest] - reserved[emptiest]
            if spread <= self.imbalance_threshold_mib:
                break
            candidate = None
            for machine in machines[fullest]:
                if machine.resources.memory_mib < spread:
                    candidate = machine
                    break
            if candidate is None:
                break
            machines[fullest].remove(candidate)
            machines[emptiest].append(candidate)
            reserved[fullest] -= candidate.resources.memory_mib
            reserved[emptiest] += candidate.resources.memory_mib
            plan.append(
                MigrationPlanEntry(
                    machine_name=candidate.name,
                    source_host=fullest,
                    target_host=emptiest,
                    memory_mib=candidate.resources.memory_mib,
                )
            )
        return plan

    # -- execution ----------------------------------------------------------------

    def execute(self, now_s: float, plan: list[MigrationPlanEntry] | None = None) -> list[MigrationEvent]:
        """Execute a plan (or a freshly computed one) and return the events.

        Running machines are suspended for the duration of the transfer and
        resumed on the target host; machines in other states are moved
        without a suspend/resume bracket.
        """
        host_by_index = {host.index: host for host in self.hosts}
        executed: list[MigrationEvent] = []
        for entry in plan if plan is not None else self.plan():
            source = host_by_index[entry.source_host]
            target = host_by_index[entry.target_host]
            machine = source.machine(entry.machine_name)
            if not target.can_place(machine):
                continue
            downtime = self.migration_downtime_s(machine.resources.memory_mib)
            was_running = machine.state is MachineState.RUNNING
            if was_running:
                machine.suspend(now_s)
            source.remove(entry.machine_name)
            target.place(machine)
            if was_running:
                machine.resume(now_s + downtime)
            event = MigrationEvent(
                time_s=now_s,
                machine_name=entry.machine_name,
                source_host=entry.source_host,
                target_host=entry.target_host,
                downtime_s=downtime if was_running else 0.0,
            )
            executed.append(event)
            self.events.append(event)
        return executed

    def rebalance(self, now_s: float) -> list[MigrationEvent]:
        """Plan and execute in one call; returns the executed migrations."""
        return self.execute(now_s, self.plan())
