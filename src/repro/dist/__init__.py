"""The multi-process distribution runtime.

The paper's testbed distributes Celestial hosts across real machines: the
coordinator computes constellation updates centrally and each host's Machine
Manager applies the part that concerns its own microVMs (§3, Fig. 2).  Up to
PR 3 this reproduction kept every :class:`~repro.core.machine_manager.
MachineManager` inside the coordinator process, so the sharded fan-out of
:meth:`~repro.core.coordinator.Coordinator.update` — although thread-parallel
— was serialised by the GIL exactly where Starlink-scale per-host sweeps need
real parallelism.  This package moves the managers behind a process boundary:

* :mod:`repro.dist.wire` — a compact, versioned wire protocol.  One frame is
  a fixed header plus a small metadata blob plus the raw buffers of every
  NumPy array in the payload, so a
  :class:`~repro.core.machine_manager.HostStateSlice` round-trips
  byte-identically without pickling arrays field by field.  Corrupt or
  forged frames — truncations, bad array descriptors, unknown kinds —
  decode to typed :class:`~repro.dist.wire.WireError`\\ s, never to nonsense
  array views.
* :mod:`repro.dist.transport` — *how* frames travel.
  :class:`~repro.dist.transport.PipeTransport` wraps the local duplex pipe
  (default); :class:`~repro.dist.transport.SocketTransport` speaks
  length-prefixed frames over TCP behind one persistent listener per worker
  slot.  A connecting worker handshakes with a ``HELLO`` frame carrying its
  worker index (the frame header carries ``WIRE_VERSION``, so incompatible
  builds are rejected before anything else is read) and receives its
  :class:`~repro.dist.worker.WorkerSpec` in the answering ``SPEC`` frame.
  Because the listener outlives worker incarnations, a restarted worker
  *reconnects* to the same address and the supervisor's ledger-replay +
  keyframe/diff restore runs over the fresh connection unchanged.
* :mod:`repro.dist.worker` — the worker entrypoint.  One worker owns one or
  more Machine Managers (with their hosts and microVMs), applies the slices
  it is sent, performs the per-host usage-sampling sweeps and streams
  samples, counters and dirty-machine reconciliation results back.  Runs as
  a supervisor-spawned child (pipe or localhost TCP) or standalone on
  another machine: ``python -m repro.dist.worker --connect host:port
  --index N``.
* :mod:`repro.dist.supervisor` — worker lifecycle: spawn, heartbeat, crash
  detection and restart.  A restarted worker is rebuilt from the durable
  control ledger (machine creations, fault-injection ops) and its runtime
  state — bounding-box activity, suspend/resume counters, RNG streams — is
  replayed from the constellation database's keyframe + diff chain plus the
  last acknowledged checkpoint.  Receives are bounded by ``ack_timeout_s``
  (a wedged-but-alive worker is killed and rebuilt like a crashed one) and
  the bounded per-worker restart budget decays after a configurable number
  of healthy acknowledged requests, so transient crashes spread over days
  never accumulate into a fatal budget exhaustion.
* :mod:`repro.dist.backend` — the seam the coordinator dispatches through:
  :class:`~repro.dist.backend.ThreadFanoutBackend` (the previous in-process
  thread pool) and :class:`~repro.dist.backend.ProcessFanoutBackend` (the
  worker pool) behind one interface, selected with
  ``Coordinator(parallelism="threads" | "processes")`` and, for the worker
  pool, ``transport="pipe" | "tcp"``.

In the spirit of RAFDA's separation of application logic from distribution
policy, nothing above this package knows which side of a process — or
machine — boundary a manager lives on: the update producer emits the same
slices either way, and the pipe and TCP backends are proven
byte/count-identical (including crash recovery) by the equivalence suite.
"""

from repro.dist.backend import (
    FanoutBackend,
    MirroredManager,
    ProcessFanoutBackend,
    ThreadFanoutBackend,
    WorkerDesyncError,
)
from repro.dist.supervisor import (
    WorkerCrashError,
    WorkerSupervisor,
    WorkerTimeoutError,
)
from repro.dist.transport import (
    PipeTransport,
    PipeTransportFactory,
    SocketListener,
    SocketTransport,
    TcpTransportFactory,
    Transport,
    TransportError,
    TransportFactory,
    TransportTimeout,
    connect_transport,
    make_transport_factory,
)
from repro.dist.wire import (
    FLAG_PICKLED,
    WIRE_VERSION,
    FrameKind,
    WireError,
    WireVersionError,
    decode_blob,
    decode_frame,
    decode_slice,
    encode_blob,
    encode_frame,
    encode_slice,
)
from repro.dist.worker import WorkerSpec, worker_main

__all__ = [
    "FLAG_PICKLED",
    "FanoutBackend",
    "FrameKind",
    "MirroredManager",
    "PipeTransport",
    "PipeTransportFactory",
    "ProcessFanoutBackend",
    "SocketListener",
    "SocketTransport",
    "TcpTransportFactory",
    "ThreadFanoutBackend",
    "Transport",
    "TransportError",
    "TransportFactory",
    "TransportTimeout",
    "WIRE_VERSION",
    "WireError",
    "WireVersionError",
    "WorkerCrashError",
    "WorkerDesyncError",
    "WorkerSpec",
    "WorkerSupervisor",
    "WorkerTimeoutError",
    "connect_transport",
    "decode_blob",
    "decode_frame",
    "decode_slice",
    "encode_blob",
    "encode_frame",
    "encode_slice",
    "make_transport_factory",
    "worker_main",
]
