"""The multi-process distribution runtime.

The paper's testbed distributes Celestial hosts across real machines: the
coordinator computes constellation updates centrally and each host's Machine
Manager applies the part that concerns its own microVMs (§3, Fig. 2).  Up to
PR 3 this reproduction kept every :class:`~repro.core.machine_manager.
MachineManager` inside the coordinator process, so the sharded fan-out of
:meth:`~repro.core.coordinator.Coordinator.update` — although thread-parallel
— was serialised by the GIL exactly where Starlink-scale per-host sweeps need
real parallelism.  This package moves the managers behind a process boundary:

* :mod:`repro.dist.wire` — a compact, versioned wire protocol.  One frame is
  a fixed header plus a small metadata blob plus the raw buffers of every
  NumPy array in the payload, so a
  :class:`~repro.core.machine_manager.HostStateSlice` round-trips
  byte-identically without pickling arrays field by field.
* :mod:`repro.dist.worker` — the child-process entrypoint.  One worker owns
  one or more Machine Managers (with their hosts and microVMs), applies the
  slices it is sent, performs the per-host usage-sampling sweeps and streams
  samples, counters and dirty-machine reconciliation results back.
* :mod:`repro.dist.supervisor` — worker lifecycle: spawn, heartbeat, crash
  detection and restart.  A restarted worker is rebuilt from the durable
  control ledger (machine creations, fault-injection ops) and its runtime
  state — bounding-box activity, suspend/resume counters, RNG streams — is
  replayed from the constellation database's keyframe + diff chain plus the
  last acknowledged checkpoint.
* :mod:`repro.dist.backend` — the seam the coordinator dispatches through:
  :class:`~repro.dist.backend.ThreadFanoutBackend` (the previous in-process
  thread pool) and :class:`~repro.dist.backend.ProcessFanoutBackend` (the
  worker pool) behind one interface, selected with
  ``Coordinator(parallelism="threads" | "processes")``.

In the spirit of RAFDA's separation of application logic from distribution
policy, nothing above this package knows which side of a process boundary a
manager lives on: the update producer emits the same slices either way, and
future PRs can place workers on remote hosts by swapping the pipe transport
without touching the coordinator.
"""

from repro.dist.backend import (
    FanoutBackend,
    MirroredManager,
    ProcessFanoutBackend,
    ThreadFanoutBackend,
    WorkerDesyncError,
)
from repro.dist.supervisor import WorkerCrashError, WorkerSupervisor
from repro.dist.wire import (
    WIRE_VERSION,
    FrameKind,
    WireError,
    WireVersionError,
    decode_frame,
    decode_slice,
    encode_frame,
    encode_slice,
)
from repro.dist.worker import WorkerSpec, worker_main

__all__ = [
    "FanoutBackend",
    "FrameKind",
    "MirroredManager",
    "ProcessFanoutBackend",
    "ThreadFanoutBackend",
    "WIRE_VERSION",
    "WireError",
    "WireVersionError",
    "WorkerCrashError",
    "WorkerDesyncError",
    "WorkerSpec",
    "WorkerSupervisor",
    "decode_frame",
    "decode_slice",
    "encode_frame",
    "encode_slice",
    "worker_main",
]
