"""The transport seam between the worker supervisor and its workers.

The paper's testbed runs hosts on *remote* machines; PR 4's worker processes
only spoke over local :mod:`multiprocessing` pipes.  This module separates
*what* travels (``repro.dist.wire`` frames) from *how* it travels — in the
spirit of RAFDA's separation of application logic from distribution policy —
behind two small abstractions:

* :class:`Transport` — one established, bidirectional, message-oriented
  channel to a worker.  The API mirrors the subset of
  :class:`multiprocessing.connection.Connection` the supervisor and worker
  already use (``send_bytes`` / ``recv_bytes`` / ``poll`` / ``close``), so
  the framing, supervision and recovery code is transport-agnostic.

  - :class:`PipeTransport` wraps a duplex pipe ``Connection`` (the default,
    byte-for-byte the PR 4 behaviour).
  - :class:`SocketTransport` speaks length-prefixed frames over a TCP
    stream: a little-endian ``u32`` byte count followed by the wire frame.
    Receives take an optional deadline, so a peer that wedges mid-frame
    raises :class:`TransportTimeout` instead of hanging the supervisor.

* :class:`TransportFactory` — how a supervisor *obtains* a transport for a
  worker spec, called once at start and again after every crash:

  - :class:`PipeTransportFactory` creates a pipe pair and forks/spawns the
    worker process with its spec as process arguments.
  - :class:`TcpTransportFactory` binds one persistent listener per worker
    (so a restarted worker reconnects to the *same* address) and performs a
    connect/accept handshake: the worker's first frame is ``HELLO`` carrying
    its worker index (the frame header itself carries ``WIRE_VERSION``, so
    an incompatible peer is rejected before anything else is read), and the
    supervisor answers with a ``SPEC`` frame holding the
    :class:`~repro.dist.worker.WorkerSpec` — the worker builds its managers
    from the wire, not from process arguments, so the same code path serves
    a supervisor-spawned localhost worker and a worker started by hand on
    another machine (``python -m repro.dist.worker --connect host:port``).
    With ``external=True`` the factory never spawns anything: it waits for
    an operator-started worker to connect (and, after a crash, reconnect).

Connection-loss semantics match pipes everywhere: a clean peer close raises
``EOFError`` from ``recv_bytes``, a broken send raises ``OSError`` — the
supervisor's crash detection and the worker's exit path work unchanged.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import select
import socket
import struct
import time
from typing import Any, Optional

from repro.dist import wire
from repro.dist.wire import FrameKind

#: Upper bound on one length-prefixed frame (1 GiB).  A full-Starlink slice
#: is a few MiB; anything near this bound is stream corruption, not data.
MAX_FRAME_BYTES = 1 << 30

#: Bytes of entropy in an authentication challenge nonce.
AUTH_NONCE_BYTES = 32

_LENGTH_PREFIX = struct.Struct("<I")


class TransportError(OSError):
    """The transport channel failed (framing corruption, broken stream)."""


class TransportTimeout(TransportError, TimeoutError):
    """A receive did not complete within its deadline."""


class HandshakeError(TransportError):
    """A connecting worker failed the HELLO handshake."""


# -- shared-secret authentication ---------------------------------------------


def auth_digest(secret: str, nonce: bytes, identity: str) -> bytes:
    """The HMAC-SHA256 response to an authentication challenge.

    Keyed by the shared secret over ``nonce || identity``: binding the
    dialer's claimed identity (``worker-<index>`` for workers, the client
    id for gateway subscribers) into the digest stops a valid response
    from being replayed for a different slot, and the fresh server nonce
    stops replays across connections.
    """
    message = nonce + identity.encode("utf-8")
    return hmac.new(secret.encode("utf-8"), message, hashlib.sha256).digest()


def verify_auth(
    transport: Transport, secret: str, identity: str, timeout_s: float
) -> bool:
    """Server side: challenge a dialer and verify its digest.

    Sends a ``CHALLENGE`` frame with a fresh nonce and expects an ``AUTH``
    frame answering it.  Returns ``False`` (instead of raising) on a wrong
    digest, an unexpected frame or a handshake timeout, so accept loops
    can drop the dialer and keep listening.
    """
    nonce = os.urandom(AUTH_NONCE_BYTES)
    try:
        transport.send_bytes(
            wire.encode_frame(FrameKind.CHALLENGE, {"nonce": nonce})
        )
        kind, meta, _arrays = wire.decode_frame(
            transport.recv_bytes(timeout=timeout_s)
        )
    except (wire.WireError, TransportError, EOFError, OSError):
        return False
    if kind is not FrameKind.AUTH:
        return False
    digest = meta.get("digest")
    if not isinstance(digest, bytes):
        return False
    return hmac.compare_digest(digest, auth_digest(secret, nonce, identity))


def answer_challenge(
    transport: Transport, meta: dict, secret: str, identity: str
) -> None:
    """Dialer side: answer a received ``CHALLENGE`` frame's nonce."""
    nonce = meta.get("nonce", b"")
    transport.send_bytes(
        wire.encode_frame(
            FrameKind.AUTH, {"digest": auth_digest(secret, nonce, identity)}
        )
    )


class Transport:
    """One established channel to a worker (documentation base class)."""

    def send_bytes(self, data: bytes) -> None:
        """Send one complete message."""
        raise NotImplementedError

    def recv_bytes(self, timeout: Optional[float] = None) -> bytes:
        """Receive one complete message.

        ``timeout=None`` blocks forever.  Raises :class:`TransportTimeout`
        when the deadline passes, ``EOFError`` when the peer closed.  For
        sockets the deadline also covers a peer that stalls *mid-message*;
        for pipes it has message granularity (see :class:`PipeTransport`).
        """
        raise NotImplementedError

    def poll(self, timeout: float = 0.0) -> bool:
        """Whether a message (or EOF) is ready within ``timeout`` seconds."""
        raise NotImplementedError

    def close(self) -> None:
        """Close the channel (idempotent)."""
        raise NotImplementedError


class PipeTransport(Transport):
    """A duplex :mod:`multiprocessing` pipe behind the transport API.

    Picklable through :mod:`multiprocessing` process arguments (the wrapped
    ``Connection`` carries its own reduction), so the child receives the
    same object the factory built.
    """

    def __init__(self, conn):
        self.conn = conn

    def send_bytes(self, data: bytes) -> None:
        self.conn.send_bytes(data)

    def recv_bytes(self, timeout: Optional[float] = None) -> bytes:
        # Connection has no deadline on an in-flight read, so the poll
        # below bounds the wait at message granularity: a worker that
        # wedges *between* messages (the realistic failure — a deadlock or
        # busy loop never starts the ack) is caught; a local peer stopped
        # midway through writing a message larger than the pipe buffer
        # could still block past the deadline.  The TCP transport bounds
        # that case too; pipes trade it for zero-copy kernel framing.
        if timeout is not None and not self.conn.poll(timeout):
            raise TransportTimeout(
                f"no message arrived on the pipe within {timeout:.1f}s"
            )
        return self.conn.recv_bytes()

    def poll(self, timeout: float = 0.0) -> bool:
        return self.conn.poll(timeout)

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


class SocketTransport(Transport):
    """Length-prefixed wire frames over one connected TCP socket."""

    def __init__(self, sock: socket.socket):
        try:
            # Acks are small and latency-sensitive; don't let Nagle batch
            # them.  Best-effort: AF_UNIX stream sockets have no such knob.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        sock.setblocking(True)
        self._sock = sock
        self._closed = False

    def send_bytes(self, data: bytes) -> None:
        if len(data) > MAX_FRAME_BYTES:
            raise TransportError(
                f"refusing to send a {len(data)}-byte frame "
                f"(limit {MAX_FRAME_BYTES})"
            )
        self._sock.sendall(_LENGTH_PREFIX.pack(len(data)) + data)

    def recv_bytes(self, timeout: Optional[float] = None) -> bytes:
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            prefix = self._recv_exact(_LENGTH_PREFIX.size, deadline)
            (length,) = _LENGTH_PREFIX.unpack(prefix)
            if length > MAX_FRAME_BYTES:
                raise TransportError(
                    f"frame length prefix {length} exceeds the "
                    f"{MAX_FRAME_BYTES}-byte limit (stream corruption?)"
                )
            return self._recv_exact(length, deadline)
        finally:
            # The per-chunk deadline budgets must not leak into later
            # blocking receives or sends (sendall inherits the socket
            # timeout, and a partially timed-out send corrupts the stream).
            try:
                self._sock.settimeout(None)
            except OSError:  # pragma: no cover - closed concurrently
                pass

    def _recv_exact(self, count: int, deadline: Optional[float]) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            if deadline is not None:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    raise TransportTimeout(
                        f"receive deadline passed with {remaining} of "
                        f"{count} bytes outstanding"
                    )
                self._sock.settimeout(budget)
            else:
                self._sock.settimeout(None)
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except socket.timeout as error:
                raise TransportTimeout(
                    f"receive deadline passed with {remaining} of "
                    f"{count} bytes outstanding"
                ) from error
            if not chunk:
                raise EOFError(
                    "connection closed mid-frame"
                    if chunks or count != remaining
                    else "connection closed"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def poll(self, timeout: float = 0.0) -> bool:
        if self._closed:
            return True  # a read will raise EOF/OSError immediately
        readable, _, _ = select.select([self._sock], [], [], max(0.0, timeout))
        return bool(readable)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


# -- connect / accept handshake ----------------------------------------------


def connect_transport(
    host: str,
    port: int,
    worker_index: int,
    timeout_s: float = 30.0,
    auth_secret: str = "",
) -> tuple[Any, SocketTransport]:
    """Worker side: dial the supervisor, handshake, receive the spec.

    Retries the TCP connect until ``timeout_s`` (the supervisor may still be
    binding its listeners, or — after a crash — still tearing down the dead
    predecessor), then sends ``HELLO`` with this worker's index and waits
    for the answering ``SPEC`` frame.  A supervisor configured with a
    shared secret interposes a ``CHALLENGE`` frame before the spec; the
    worker answers it with the HMAC digest derived from ``auth_secret``
    (an empty secret answers with a digest that cannot match, so the
    mismatch surfaces as the supervisor closing the connection).
    Returns ``(worker_spec, transport)``.
    """
    deadline = time.monotonic() + timeout_s
    while True:
        budget = max(0.05, deadline - time.monotonic())
        try:
            sock = socket.create_connection((host, port), timeout=min(2.0, budget))
            break
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.1)
    transport = SocketTransport(sock)
    try:
        transport.send_bytes(
            wire.encode_frame(FrameKind.HELLO, {"worker_index": worker_index})
        )
        data = transport.recv_bytes(timeout=max(0.05, deadline - time.monotonic()))
        # allow_pickle: the SPEC frame carries the rich WorkerSpec blueprint,
        # and this side *dialed* the operator-configured supervisor address —
        # the trusted direction of the handshake.
        kind, meta, _arrays = wire.decode_frame(data, allow_pickle=True)
        if kind is FrameKind.CHALLENGE:
            answer_challenge(
                transport, meta, auth_secret, f"worker-{worker_index}"
            )
            data = transport.recv_bytes(
                timeout=max(0.05, deadline - time.monotonic())
            )
            kind, meta, _arrays = wire.decode_frame(data, allow_pickle=True)
        if kind is not FrameKind.SPEC:
            raise HandshakeError(
                f"expected a SPEC frame after HELLO, got {kind.name}"
            )
        return meta["spec"], transport
    except BaseException:
        transport.close()
        raise


class SocketListener:
    """One persistent listening socket for one worker slot.

    The listener outlives worker incarnations: a restarted (or operator-
    relaunched) worker reconnects to the same address and the accept-side
    handshake re-validates protocol version and worker index before the
    supervisor replays the ledger into it.
    """

    def __init__(
        self,
        worker_index: int,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_secret: str = "",
    ):
        self.worker_index = worker_index
        self.host = host
        self.auth_secret = auth_secret
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(4)
        self.port = self._sock.getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` workers must dial."""
        return (self.host, self.port)

    def accept(self, timeout_s: float) -> SocketTransport:
        """Accept the next connection that passes the HELLO handshake.

        Connections that fail the handshake (garbage bytes from a stray
        client, a HELLO for the wrong worker slot) are closed and accepting
        continues until the deadline; an incompatible protocol generation
        raises :class:`~repro.dist.wire.WireVersionError` immediately —
        retrying cannot fix a version skew, the operator has mismatched
        builds.  Raises :class:`TransportTimeout` at the deadline.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise TransportTimeout(
                    f"no worker {self.worker_index} connected to "
                    f"{self.host}:{self.port} within {timeout_s:.1f}s"
                )
            self._sock.settimeout(budget)
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout as error:
                raise TransportTimeout(
                    f"no worker {self.worker_index} connected to "
                    f"{self.host}:{self.port} within {timeout_s:.1f}s"
                ) from error
            transport = SocketTransport(conn)
            try:
                # Each dialer gets a short handshake budget, not the whole
                # remaining window: a silent stray connection (port scanner,
                # health probe) must not starve the real worker's slot.
                handshake_budget = min(5.0, max(0.05, deadline - time.monotonic()))
                data = transport.recv_bytes(timeout=handshake_budget)
                kind, meta, _arrays = wire.decode_frame(data)
            except wire.WireVersionError:
                transport.close()
                raise
            except (wire.WireError, TransportError, EOFError, OSError):
                transport.close()
                continue
            if (
                kind is not FrameKind.HELLO
                or meta.get("worker_index") != self.worker_index
            ):
                transport.close()
                continue
            if self.auth_secret:
                # The challenge happens before the SPEC frame is sent, so
                # an unauthenticated dialer never sees the worker blueprint.
                handshake_budget = min(5.0, max(0.05, deadline - time.monotonic()))
                if not verify_auth(
                    transport,
                    self.auth_secret,
                    f"worker-{self.worker_index}",
                    handshake_budget,
                ):
                    transport.close()
                    continue
            return transport

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


# -- factories ----------------------------------------------------------------


class TransportFactory:
    """How the supervisor obtains a transport per worker (base class)."""

    #: ``"pipe"`` or ``"tcp"``.
    name: str

    def spawn(self, spec, ctx) -> tuple[Optional[Any], Transport]:
        """Bring one worker up and return ``(process, transport)``.

        Called at pool start and again for every restart.  ``process`` is
        ``None`` when the factory does not manage the worker's lifetime
        (externally placed workers): the supervisor then skips process-
        liveness checks and relies on EOF detection and receive timeouts.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release factory resources, e.g. listening sockets (idempotent)."""
        raise NotImplementedError


class PipeTransportFactory(TransportFactory):
    """Local worker processes over duplex pipes (the default)."""

    name = "pipe"

    def spawn(self, spec, ctx):
        from repro.dist.worker import worker_main

        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=worker_main,
            args=(spec, child_conn),
            name=f"celestial-worker-{spec.worker_index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, PipeTransport(parent_conn)

    def close(self) -> None:
        pass


class TcpTransportFactory(TransportFactory):
    """Workers over localhost- or LAN-TCP, spawned locally or placed remotely.

    Managed mode (default): ``spawn`` launches a local child process that
    dials back in — functionally the pipe topology, but every byte crosses a
    real TCP stream, which is what the equivalence suite pins down.

    External mode (``external=True``): the operator starts each worker by
    hand (``python -m repro.dist.worker --connect host:port --index N``,
    typically on another machine) and ``spawn`` only accepts; ``base_port``
    must then be explicit so the workers know where to dial (worker *i*
    listens on ``base_port + i``).
    """

    name = "tcp"

    def __init__(
        self,
        host: str = "127.0.0.1",
        base_port: int = 0,
        external: bool = False,
        accept_timeout_s: float = 60.0,
        auth_secret: str = "",
    ):
        if external and base_port == 0:
            raise ValueError(
                "external workers need an explicit base_port to dial; "
                "an ephemeral port is only knowable to a spawning supervisor"
            )
        self.host = host
        self.base_port = base_port
        self.external = external
        self.accept_timeout_s = accept_timeout_s
        self.auth_secret = auth_secret
        self._listeners: dict[int, SocketListener] = {}
        self._closed = False

    def listener_for(self, worker_index: int) -> SocketListener:
        """The persistent listener of one worker slot (bound on first use)."""
        if self._closed:
            raise TransportError("the transport factory has been closed")
        if worker_index not in self._listeners:
            port = 0 if self.base_port == 0 else self.base_port + worker_index
            self._listeners[worker_index] = SocketListener(
                worker_index,
                host=self.host,
                port=port,
                auth_secret=self.auth_secret,
            )
        return self._listeners[worker_index]

    def spawn(self, spec, ctx):
        from repro.dist.worker import tcp_worker_main

        listener = self.listener_for(spec.worker_index)
        process = None
        if not self.external:
            process = ctx.Process(
                target=tcp_worker_main,
                # Workers dial the loopback/LAN address the listener bound;
                # a spawned worker inherits the supervisor's shared secret.
                args=(self.host, listener.port, spec.worker_index, self.auth_secret),
                name=f"celestial-worker-{spec.worker_index}",
                daemon=True,
            )
            process.start()
        try:
            transport = listener.accept(self.accept_timeout_s)
            transport.send_bytes(wire.encode_frame(FrameKind.SPEC, {"spec": spec}))
        except BaseException:
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            raise
        return process, transport

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for listener in self._listeners.values():
            listener.close()
        self._listeners.clear()


def make_transport_factory(transport) -> TransportFactory:
    """Resolve ``"pipe"`` / ``"tcp"`` (or a ready factory) to a factory."""
    if isinstance(transport, TransportFactory):
        return transport
    if transport in (None, "pipe"):
        return PipeTransportFactory()
    if transport == "tcp":
        return TcpTransportFactory()
    raise ValueError(f"unknown transport {transport!r} (expected 'pipe' or 'tcp')")
