"""Versioned wire protocol for coordinator ↔ worker traffic.

Frame layout
------------

Every message is one self-contained frame::

    +---------+---------+------+-------+----------+-------------+
    | magic   | version | kind | flags | meta_len | array_count |   header
    | 4 bytes |   u16   |  u8  |  u8   |   u32    |     u32     |
    +---------+---------+------+-------+----------+-------------+
    | metadata blob (meta_len bytes)                            |
    +-----------------------------------------------------------+
    | raw array buffers, concatenated in descriptor order       |
    +-----------------------------------------------------------+

The metadata blob holds the small, scalar part of the payload (epoch
numbers, machine names, counters) plus one *descriptor* per NumPy array:
``(dtype_str, shape)``.  The arrays themselves travel as their raw memory
buffers appended after the blob — **not** pickled field by field — so a
multi-kilobyte per-ground-station delay vector costs one ``memcpy`` each
way and round-trips byte-identically (dtype, shape and payload bits).

The header is parsed with :mod:`struct` and the version is checked *before*
the metadata blob is deserialised; a frame from a different protocol
generation is rejected with :class:`WireVersionError` instead of being
misinterpreted.  Every array descriptor is validated before its buffer is
sliced: the dtype string must name a real, fixed-size, object-free dtype and
every shape dimension must be a non-negative integer, so a corrupt or forged
descriptor (e.g. a negative dimension that would make ``nbytes`` negative
and defeat the bounds check) raises :class:`WireError` instead of producing
a nonsense array view.

The metadata blob is a *security boundary*: frames arrive from network
peers that have not authenticated yet (the worker listener's ``HELLO``,
the streaming gateway's ``SUBSCRIBE``), so the blob must never be able to
execute code on decode.  It therefore uses a closed, self-describing
binary encoding (:func:`encode_blob` / :func:`decode_blob`) restricted to
``None``/bool/int/float/str/bytes/list/tuple/dict — no object
construction, no imports, no callables.  The one payload that genuinely
carries rich Python objects — the worker blueprint in ``SPEC`` frames and
the kernel/rootfs dataclasses of ``CREATE_MACHINE`` — falls back to
pickle protocol 5 and is *flagged* in the frame header
(:data:`FLAG_PICKLED`); :func:`decode_frame` refuses such frames unless
the caller passes ``allow_pickle=True``, which only the worker side of an
operator-configured supervisor channel does.  An unauthenticated dialer
can thus never reach ``pickle.loads``.

Payload codecs
--------------

:func:`encode_slice` / :func:`decode_slice` map a
:class:`~repro.core.machine_manager.HostStateSlice` onto a frame:
``activated`` / ``deactivated`` machine identities are shipped as
``(shell, identifier)`` integer arrays (satellite names are canonical:
``"{identifier}.{shell}.celestial"``), the link arrays and per-ground-station
delay vectors as raw buffers, and the small ``dirty_active`` map in the
metadata blob.  :func:`encode_activity` ships the per-shell bounding-box
activity masks of a full-state replay the same way.
"""

from __future__ import annotations

import enum
import math
import pickle
import struct
from typing import Any, Optional

import numpy as np

from repro.core.constellation import MachineId, satellite_name
from repro.core.machine_manager import HostStateSlice

#: Frame magic: "CeLestial Wire".
WIRE_MAGIC = b"CLW1"
#: Protocol generation.  Bump on any incompatible frame/codec change.
#: Version 2: the metadata blob moved from pickle to the safe blob codec
#: (pickle remains only as the header-flagged fallback for rich payloads).
WIRE_VERSION = 2

#: Header flag: the metadata blob is pickled, not safe-blob-encoded.  Only
#: set by :func:`encode_frame` when the metadata holds objects outside the
#: safe codec's closed type set; decoding requires ``allow_pickle=True``.
FLAG_PICKLED = 0x01

_HEADER = struct.Struct("<4sHBBII")


class WireError(ValueError):
    """Raised when a frame cannot be decoded."""


class WireVersionError(WireError):
    """Raised when a frame was produced by an incompatible protocol version."""


# -- safe metadata-blob codec -------------------------------------------------
#
# A tiny tag-length-value encoding over a closed type set.  Unlike pickle
# it can only ever *construct data* — decoding allocates containers and
# scalars, never looks up classes or calls anything — so it is safe to run
# on bytes from an unauthenticated network peer.

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

#: Maximum container nesting in a metadata blob.  Deep enough for every
#: real payload (slice metas nest 3 levels), shallow enough that a forged
#: blob cannot drive the recursive decoder into a RecursionError.
_BLOB_MAX_DEPTH = 32


def encode_blob(obj: Any) -> bytes:
    """Encode one metadata object with the safe blob codec.

    Supports ``None``, bool, int (arbitrary precision), float, str, bytes,
    list, tuple and dict (NumPy scalars are coerced to their Python
    equivalents).  Raises :class:`TypeError` for anything else — the
    caller (:func:`encode_frame`) then falls back to flagged pickle.
    """
    out: list[bytes] = []
    _encode_obj(obj, out, 0)
    return b"".join(out)


def _encode_obj(obj: Any, out: list[bytes], depth: int) -> None:
    if depth > _BLOB_MAX_DEPTH:
        raise TypeError("metadata blob nests too deeply for the safe codec")
    if obj is None:
        out.append(b"N")
    elif isinstance(obj, (bool, np.bool_)):
        out.append(b"T" if obj else b"F")
    elif isinstance(obj, (int, np.integer)):
        value = int(obj)
        if -(1 << 63) <= value < (1 << 63):
            out.append(b"i")
            out.append(_I64.pack(value))
        else:
            # Arbitrary-precision escape hatch: RNG-state checkpoints carry
            # 128-bit PCG64 state integers through acknowledgement metas.
            magnitude = abs(value)
            raw = magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "little")
            out.append(b"I" + (b"\x01" if value < 0 else b"\x00"))
            out.append(_U32.pack(len(raw)))
            out.append(raw)
    elif isinstance(obj, (float, np.floating)):
        out.append(b"f")
        out.append(_F64.pack(float(obj)))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8", "surrogatepass")
        out.append(b"s")
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif isinstance(obj, (bytes, bytearray)):
        out.append(b"b")
        out.append(_U32.pack(len(obj)))
        out.append(bytes(obj))
    elif isinstance(obj, (list, tuple)):
        out.append(b"l" if isinstance(obj, list) else b"t")
        out.append(_U32.pack(len(obj)))
        for item in obj:
            _encode_obj(item, out, depth + 1)
    elif isinstance(obj, dict):
        out.append(b"d")
        out.append(_U32.pack(len(obj)))
        for key, value in obj.items():
            _encode_obj(key, out, depth + 1)
            _encode_obj(value, out, depth + 1)
    else:
        raise TypeError(
            f"{type(obj).__name__} cannot travel in a safe metadata blob"
        )


def decode_blob(data: bytes) -> Any:
    """Decode one safe-codec metadata blob; :class:`WireError` on corruption."""
    obj, offset = _decode_obj(data, 0, 0)
    if offset != len(data):
        raise WireError(f"{len(data) - offset} trailing bytes in metadata blob")
    return obj


def _blob_slice(data: bytes, offset: int, count: int) -> bytes:
    if len(data) - offset < count:
        raise WireError("metadata blob truncated")
    return data[offset : offset + count]


def _decode_obj(data: bytes, offset: int, depth: int) -> tuple[Any, int]:
    if depth > _BLOB_MAX_DEPTH:
        raise WireError("metadata blob nests too deeply")
    tag = _blob_slice(data, offset, 1)
    offset += 1
    if tag == b"N":
        return None, offset
    if tag == b"T":
        return True, offset
    if tag == b"F":
        return False, offset
    if tag == b"i":
        (value,) = _I64.unpack(_blob_slice(data, offset, 8))
        return value, offset + 8
    if tag == b"I":
        sign = _blob_slice(data, offset, 1)
        (length,) = _U32.unpack(_blob_slice(data, offset + 1, 4))
        raw = _blob_slice(data, offset + 5, length)
        value = int.from_bytes(raw, "little")
        return (-value if sign == b"\x01" else value), offset + 5 + length
    if tag == b"f":
        (value,) = _F64.unpack(_blob_slice(data, offset, 8))
        return value, offset + 8
    if tag in (b"s", b"b"):
        (length,) = _U32.unpack(_blob_slice(data, offset, 4))
        raw = _blob_slice(data, offset + 4, length)
        offset += 4 + length
        if tag == b"b":
            return raw, offset
        try:
            return raw.decode("utf-8", "surrogatepass"), offset
        except UnicodeDecodeError as error:
            raise WireError(f"undecodable string in metadata blob: {error}") from error
    if tag in (b"l", b"t"):
        (count,) = _U32.unpack(_blob_slice(data, offset, 4))
        offset += 4
        if count > len(data) - offset:  # every element costs >= 1 byte
            raise WireError("metadata blob truncated inside a sequence")
        items = []
        for _ in range(count):
            item, offset = _decode_obj(data, offset, depth + 1)
            items.append(item)
        return (items if tag == b"l" else tuple(items)), offset
    if tag == b"d":
        (count,) = _U32.unpack(_blob_slice(data, offset, 4))
        offset += 4
        if 2 * count > len(data) - offset:
            raise WireError("metadata blob truncated inside a mapping")
        mapping = {}
        for _ in range(count):
            key, offset = _decode_obj(data, offset, depth + 1)
            value, offset = _decode_obj(data, offset, depth + 1)
            try:
                mapping[key] = value
            except TypeError as error:
                raise WireError(
                    f"unhashable mapping key in metadata blob: {error}"
                ) from error
        return mapping, offset
    raise WireError(f"unknown metadata blob tag {tag!r}")


class FrameKind(enum.IntEnum):
    """Message types of the coordinator ↔ worker protocol."""

    # worker → coordinator
    ACK = 0
    ERROR = 1
    # control plane (durable: replayed from the ledger after a crash)
    CREATE_MACHINE = 10
    BOOT = 11
    BOOT_ALL = 12
    STOP = 13
    REBOOT = 14
    SET_CPU_QUOTA = 15
    SET_BUSY = 16
    # data plane (recovered via keyframe + diff replay, never journalled)
    APPLY_SLICE = 20
    APPLY_ACTIVITY = 21
    SAMPLE_USAGE = 22
    RESTORE = 23
    # lifecycle
    PING = 30
    SHUTDOWN = 31
    CRASH = 32  # test hook: hard-exit without cleanup
    WEDGE = 33  # test hook: hang forever while staying alive
    # transport handshake (TCP): worker → supervisor greeting carrying the
    # worker index (the frame header itself carries WIRE_VERSION), answered
    # by the supervisor with the worker's blueprint.  When the listener is
    # configured with a shared secret the greeting is interposed by a
    # CHALLENGE (nonce) → AUTH (HMAC response) exchange before SPEC is sent.
    HELLO = 40
    SPEC = 41
    CHALLENGE = 42
    AUTH = 43
    # serving tier (repro.serve): one epoch's state distribution unit — a
    # full-state KEYFRAME or the DIFF against the previous epoch — plus the
    # subscription/query handshake of the streaming gateway.
    KEYFRAME = 50
    DIFF = 51
    SUBSCRIBE = 52
    SUBSCRIBE_ACK = 53
    QUERY = 54
    RESULT = 55


def encode_frame(
    kind: FrameKind,
    meta: Optional[dict[str, Any]] = None,
    arrays: tuple[np.ndarray, ...] = (),
) -> bytes:
    """Serialise one frame: header + metadata blob + raw array buffers.

    The metadata blob uses the safe blob codec; metadata holding objects
    outside its closed type set (the ``SPEC`` blueprint, ``CREATE_MACHINE``
    image dataclasses) falls back to pickle and sets :data:`FLAG_PICKLED`
    in the header, so only decoders that opted in will accept the frame.
    """
    descriptors = []
    buffers = []
    for array in arrays:
        array = np.ascontiguousarray(array)
        descriptors.append((array.dtype.str, array.shape))
        buffers.append(array.tobytes())
    payload = {"meta": meta if meta is not None else {}, "arrays": descriptors}
    flags = 0
    try:
        blob = encode_blob(payload)
    except TypeError:
        blob = pickle.dumps(payload, protocol=5)
        flags = FLAG_PICKLED
    header = _HEADER.pack(
        WIRE_MAGIC, WIRE_VERSION, int(kind), flags, len(blob), len(descriptors)
    )
    return b"".join([header, blob, *buffers])


def decode_frame(
    data: bytes, *, allow_pickle: bool = False
) -> tuple[FrameKind, dict[str, Any], list[np.ndarray]]:
    """Parse one frame back into ``(kind, meta, arrays)``.

    The returned arrays are zero-copy read-only views over ``data``; copy
    them before mutating.  Raises :class:`WireError` on malformed frames and
    :class:`WireVersionError` on a protocol-version mismatch (checked before
    anything else is deserialised).

    ``allow_pickle`` gates frames whose metadata fell back to pickle
    (:data:`FLAG_PICKLED`): it must stay ``False`` — the default — for any
    frame read from a peer that has not authenticated, and is only set on
    the worker side of an operator-configured supervisor channel, where the
    ``SPEC``/``CREATE_MACHINE`` payloads genuinely carry rich objects.
    """
    if len(data) < _HEADER.size:
        raise WireError(f"frame truncated: {len(data)} bytes < header size")
    magic, version, kind, flags, meta_len, array_count = _HEADER.unpack_from(data)
    if magic != WIRE_MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireVersionError(
            f"wire protocol version {version} is not supported "
            f"(this codec speaks version {WIRE_VERSION})"
        )
    try:
        frame_kind = FrameKind(kind)
    except ValueError as error:
        raise WireError(f"unknown frame kind {kind}") from error
    offset = _HEADER.size
    if len(data) < offset + meta_len:
        raise WireError("frame truncated inside the metadata blob")
    if flags & FLAG_PICKLED and not allow_pickle:
        raise WireError(
            f"refusing the pickled metadata blob of a {frame_kind.name} frame: "
            "this decoder only accepts pickle on trusted channels"
        )
    try:
        if flags & FLAG_PICKLED:
            blob = pickle.loads(data[offset : offset + meta_len])
        else:
            blob = decode_blob(data[offset : offset + meta_len])
        meta, descriptors = blob["meta"], blob["arrays"]
    except Exception as error:
        raise WireError(f"undecodable metadata blob: {error}") from error
    if not isinstance(meta, dict):
        raise WireError(f"frame metadata is {type(meta).__name__}, not a dict")
    if not isinstance(descriptors, (list, tuple)):
        raise WireError(
            f"descriptor table is {type(descriptors).__name__}, not a sequence"
        )
    if len(descriptors) != array_count:
        raise WireError(
            f"descriptor count {len(descriptors)} != header array count {array_count}"
        )
    offset += meta_len
    view = memoryview(data)
    arrays = []
    for descriptor in descriptors:
        dtype, shape = _validated_descriptor(descriptor)
        # Python ints: arbitrary precision, so a forged dimension can never
        # overflow the byte count into passing the bounds check below.
        nbytes = dtype.itemsize * math.prod(shape)
        if len(data) < offset + nbytes:
            raise WireError("frame truncated inside an array buffer")
        arrays.append(
            np.frombuffer(view[offset : offset + nbytes], dtype=dtype).reshape(shape)
        )
        offset += nbytes
    if offset != len(data):
        raise WireError(f"{len(data) - offset} trailing bytes after the last array")
    return frame_kind, meta, arrays


def _validated_descriptor(descriptor: Any) -> tuple[np.dtype, tuple[int, ...]]:
    """Validate one ``(dtype_str, shape)`` array descriptor.

    Descriptors arrive in the frame's metadata blob, i.e. from outside this
    process; they must never be able to slice a nonsense array view out of
    the frame (negative dimensions producing a negative ``nbytes``, object
    dtypes materialising arbitrary pointers, dimension counts beyond what
    NumPy supports).  Anything suspicious is a :class:`WireError`.
    """
    if not isinstance(descriptor, (tuple, list)) or len(descriptor) != 2:
        raise WireError(f"malformed array descriptor {descriptor!r}")
    dtype_str, shape = descriptor
    if not isinstance(dtype_str, str):
        raise WireError(f"array dtype descriptor {dtype_str!r} is not a string")
    try:
        dtype = np.dtype(dtype_str)
    except Exception as error:
        raise WireError(f"invalid array dtype {dtype_str!r}: {error}") from error
    if dtype.hasobject:
        raise WireError(f"object dtype {dtype_str!r} cannot travel as a raw buffer")
    if dtype.itemsize == 0:
        raise WireError(f"zero-itemsize dtype {dtype_str!r} in array descriptor")
    if not isinstance(shape, (tuple, list)) or len(shape) > 32:
        raise WireError(f"malformed array shape {shape!r}")
    dims = []
    for dim in shape:
        if isinstance(dim, bool) or not isinstance(dim, (int, np.integer)) or dim < 0:
            raise WireError(f"invalid array shape dimension {dim!r} in {shape!r}")
        dims.append(int(dim))
    return dtype, tuple(dims)


# -- machine identities ------------------------------------------------------


def _machine_ids_to_arrays(
    machines: tuple[MachineId, ...],
) -> tuple[np.ndarray, np.ndarray]:
    shells = np.array([m.shell for m in machines], dtype=np.int64)
    identifiers = np.array([m.identifier for m in machines], dtype=np.int64)
    return shells, identifiers


def _machine_ids_from_arrays(
    shells: np.ndarray, identifiers: np.ndarray
) -> tuple[MachineId, ...]:
    # Satellite names are canonical, so identities rebuild without a
    # ConstellationCalculation on the worker side.  Only satellites cross
    # this path: ground stations never flip activity.
    return tuple(
        MachineId(int(shell), int(identifier), satellite_name(int(shell), int(identifier)))
        for shell, identifier in zip(shells.tolist(), identifiers.tolist())
    )


# -- HostStateSlice codec ----------------------------------------------------

#: Fixed array fields of a slice frame, in wire order.
_SLICE_FIELDS = (
    "machine_nodes",
    "links_added",
    "added_delays_ms",
    "links_removed",
    "links_delay_changed",
    "delay_changed_ms",
)


def slice_payload(
    state_slice: HostStateSlice,
) -> tuple[dict[str, Any], tuple[np.ndarray, ...]]:
    """The ``(meta, arrays)`` payload of one per-host slice frame."""
    activated = _machine_ids_to_arrays(state_slice.activated)
    deactivated = _machine_ids_to_arrays(state_slice.deactivated)
    gst_names = list(state_slice.gst_delays_ms)
    uplink_names = list(state_slice.uplink_delays_ms)
    meta = {
        "host_index": state_slice.host_index,
        "time_s": state_slice.time_s,
        "epoch": state_slice.epoch,
        "dirty_active": dict(state_slice.dirty_active),
        "gst_names": gst_names,
        "uplink_names": uplink_names,
    }
    arrays = (
        *(getattr(state_slice, name) for name in _SLICE_FIELDS),
        *activated,
        *deactivated,
        *(state_slice.gst_delays_ms[name] for name in gst_names),
        *(state_slice.uplink_delays_ms[name] for name in uplink_names),
        *(state_slice.uplink_bandwidths_kbps[name] for name in uplink_names),
    )
    return meta, arrays


def encode_slice(state_slice: HostStateSlice) -> bytes:
    """Encode one per-host slice as an ``APPLY_SLICE`` frame."""
    meta, arrays = slice_payload(state_slice)
    return encode_frame(FrameKind.APPLY_SLICE, meta, arrays)


def decode_slice(meta: dict[str, Any], arrays: list[np.ndarray]) -> HostStateSlice:
    """Rebuild a :class:`HostStateSlice` from a decoded ``APPLY_SLICE`` frame."""
    fixed = dict(zip(_SLICE_FIELDS, arrays))
    cursor = len(_SLICE_FIELDS)
    activated = _machine_ids_from_arrays(arrays[cursor], arrays[cursor + 1])
    deactivated = _machine_ids_from_arrays(arrays[cursor + 2], arrays[cursor + 3])
    cursor += 4
    gst_names = meta["gst_names"]
    uplink_names = meta["uplink_names"]
    gst_delays = dict(zip(gst_names, arrays[cursor : cursor + len(gst_names)]))
    cursor += len(gst_names)
    uplink_delays = dict(zip(uplink_names, arrays[cursor : cursor + len(uplink_names)]))
    cursor += len(uplink_names)
    uplink_bandwidths = dict(
        zip(uplink_names, arrays[cursor : cursor + len(uplink_names)])
    )
    return HostStateSlice(
        host_index=meta["host_index"],
        time_s=meta["time_s"],
        epoch=meta["epoch"],
        activated=activated,
        deactivated=deactivated,
        dirty_active=meta["dirty_active"],
        gst_delays_ms=gst_delays,
        uplink_delays_ms=uplink_delays,
        uplink_bandwidths_kbps=uplink_bandwidths,
        **fixed,
    )


# -- full-state activity codec ----------------------------------------------


def activity_payload(
    active_satellites: dict[int, np.ndarray], time_s: float, epoch: int
) -> tuple[dict[str, Any], tuple[np.ndarray, ...]]:
    """The ``(meta, arrays)`` payload of a full-state activity frame."""
    shells = sorted(active_satellites)
    meta = {"shells": shells, "time_s": time_s, "epoch": epoch}
    return meta, tuple(active_satellites[shell] for shell in shells)


def encode_activity(
    active_satellites: dict[int, np.ndarray], time_s: float, epoch: int
) -> bytes:
    """Encode the per-shell bounding-box masks of a full-state replay."""
    meta, arrays = activity_payload(active_satellites, time_s, epoch)
    return encode_frame(FrameKind.APPLY_ACTIVITY, meta, arrays)


def decode_activity(
    meta: dict[str, Any], arrays: list[np.ndarray]
) -> tuple[dict[int, np.ndarray], float, int]:
    """Rebuild ``(active_satellites, time_s, epoch)`` from an activity frame."""
    return dict(zip(meta["shells"], arrays)), meta["time_s"], meta["epoch"]
