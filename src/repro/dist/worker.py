"""The worker-process entrypoint of the distribution runtime.

One worker owns one or more :class:`~repro.core.machine_manager.
MachineManager`\\ s — each with its :class:`~repro.hosts.Host` and microVMs —
in a child process.  It plays the role a Celestial host plays on a real
machine of the paper's testbed: receive the part of every constellation
update that concerns its own machines, apply it, and report host resource
usage back to the coordinator (§3, Fig. 2).

Protocol
--------

The worker reads :mod:`repro.dist.wire` frames from its pipe in order and
executes them sequentially, which makes its random streams replayable: the
coordinator forwards machine creations and usage-sample requests in exactly
the order the in-process thread backend would execute them, so every random
draw (usage-sample jitter, microVM boot times) lands on the same generator
state as in a single-process run — the foundation of the byte-identical
backend-equivalence guarantee.

Frames whose metadata carries a ``seq`` number are acknowledged.  Every
acknowledgement streams back the worker's observable state: per-manager
counter/RNG checkpoints (:meth:`MachineManager.counters_snapshot`), the
dirty-machine reconciliation results of an applied slice, usage samples, and
any errors from unacknowledged control frames.  The supervisor keeps the
latest acknowledgement as the recovery checkpoint.

Control frames (machine creation, fault-injection ops) are *durable*: the
supervisor journals them and replays the journal into a fresh process after
a crash, followed by a ``RESTORE`` frame that forces bounding-box activity
to the checkpoint epoch (recovered from the database's keyframe + diff
chain) and restores counters and RNG streams.
"""

from __future__ import annotations

import dataclasses
import os
import traceback
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.core.config import ComputeParams
from repro.core.constellation import MachineId
from repro.core.machine_manager import MachineManager
from repro.dist import wire
from repro.dist.wire import FrameKind
from repro.hosts import Host


@dataclass(frozen=True)
class HostSpec:
    """Blueprint of one host (and its manager) owned by a worker.

    ``rng_state`` is the bit-generator state of the coordinator-side manager
    stream at backend creation time, so the worker's manager draws exactly
    the sequence the in-process backend would have drawn.
    """

    position: int
    host_index: int
    cpu_cores: int
    memory_mib: int
    allow_memory_overcommit: bool
    rng_state: dict


@dataclass(frozen=True)
class WorkerSpec:
    """Blueprint of one worker process (picklable for any start method)."""

    worker_index: int
    hosts: tuple[HostSpec, ...]


def _machine_id(meta: dict[str, Any]) -> MachineId:
    return MachineId(meta["shell"], meta["identifier"], meta["name"])


class _Worker:
    """Dispatch loop state of one worker process."""

    def __init__(self, spec: WorkerSpec, conn):
        self.spec = spec
        self.conn = conn
        self.by_position: dict[int, MachineManager] = {}
        self.by_host_index: dict[int, MachineManager] = {}
        for host_spec in spec.hosts:
            host = Host(
                index=host_spec.host_index,
                cpu_cores=host_spec.cpu_cores,
                memory_mib=host_spec.memory_mib,
                allow_memory_overcommit=host_spec.allow_memory_overcommit,
            )
            manager = MachineManager(host)
            manager._rng.bit_generator.state = host_spec.rng_state
            self.by_position[host_spec.position] = manager
            self.by_host_index[host_spec.host_index] = manager
        # Last epoch applied per manager: a worker owning several hosts may
        # be mid-epoch (one slice applied, the next not), and recovery
        # restores each manager to its own acknowledged epoch.
        self.epochs = {host_spec.position: 0 for host_spec in spec.hosts}
        self.deferred_errors: list[str] = []

    # -- acknowledgements ---------------------------------------------------

    def _ack(self, seq: int, extra: Optional[dict[str, Any]] = None) -> None:
        meta = {
            "seq": seq,
            "epochs": dict(self.epochs),
            "counters": {
                position: manager.counters_snapshot()
                for position, manager in self.by_position.items()
            },
        }
        if self.deferred_errors:
            meta["deferred_errors"] = list(self.deferred_errors)
            self.deferred_errors.clear()
        if extra:
            meta.update(extra)
        self.conn.send_bytes(wire.encode_frame(FrameKind.ACK, meta))

    def _error(self, seq: int, error: BaseException) -> None:
        self.conn.send_bytes(
            wire.encode_frame(
                FrameKind.ERROR,
                {"seq": seq, "traceback": "".join(traceback.format_exception(error))},
            )
        )

    # -- dispatch -----------------------------------------------------------

    def run(self) -> None:
        while True:
            try:
                data = self.conn.recv_bytes()
            except (EOFError, OSError):
                return
            kind, meta, arrays = wire.decode_frame(data)
            if kind is FrameKind.CRASH:
                # Test hook: die like a killed process, no cleanup, no reply.
                os._exit(17)
            if kind is FrameKind.SHUTDOWN:
                if "seq" in meta:
                    self._ack(meta["seq"])
                return
            try:
                extra = self._dispatch(kind, meta, arrays)
            except BaseException as error:  # noqa: BLE001 - reported to the parent
                if "seq" in meta:
                    self._error(meta["seq"], error)
                else:
                    self.deferred_errors.append(
                        f"{kind.name}: {type(error).__name__}: {error}"
                    )
                continue
            if "seq" in meta:
                self._ack(meta["seq"], extra)

    def _dispatch(
        self, kind: FrameKind, meta: dict[str, Any], arrays: list[np.ndarray]
    ) -> Optional[dict[str, Any]]:
        if kind is FrameKind.APPLY_SLICE:
            position = meta["position"]
            state_slice = wire.decode_slice(meta, arrays)
            manager = self.by_position[position]
            manager.apply_diff(state_slice, meta["now_s"])
            self.epochs[position] = state_slice.epoch
            reconciled = {}
            for name in state_slice.dirty_active:
                machine = manager.host.machines.get(name)
                if machine is not None:
                    reconciled[name] = machine.state.value
            return {"reconciled": {position: reconciled}}
        if kind is FrameKind.APPLY_ACTIVITY:
            active, _time_s, epoch = wire.decode_activity(meta, arrays)
            for position, manager in self.by_position.items():
                manager.apply_activity(active, meta["now_s"])
                self.epochs[position] = epoch
            return None
        if kind is FrameKind.SAMPLE_USAGE:
            wanted = meta.get("positions")
            samples = {}
            for position, manager in sorted(self.by_position.items()):
                if wanted is not None and position not in wanted:
                    continue
                sample = manager.sample_usage(
                    meta["now_s"],
                    setup_phase=meta["setup_phase"],
                    applying_update=meta["applying_update"],
                )
                samples[position] = dataclasses.asdict(sample)
            return {"samples": samples}
        if kind is FrameKind.RESTORE:
            position = meta["position"]
            active = dict(zip(meta["shells"], arrays)) if meta["force_activity"] else None
            self.by_position[position].restore_runtime_state(
                active,
                meta["snapshot"],
                meta["now_s"],
                skip=set(meta["skip"]),  # machine names are globally unique
            )
            self.epochs[position] = meta["epoch"]
            return None
        if kind is FrameKind.CREATE_MACHINE:
            manager = self.by_position[meta["position"]]
            manager.create_machine(
                _machine_id(meta),
                ComputeParams(**meta["compute"]),
                kernel=meta["kernel"],
                rootfs=meta["rootfs"],
            )
            return None
        if kind is FrameKind.BOOT:
            self.by_position[meta["position"]].boot(_machine_id(meta), meta["now_s"])
            return None
        if kind is FrameKind.BOOT_ALL:
            self.by_position[meta["position"]].boot_all(meta["now_s"])
            return None
        if kind is FrameKind.STOP:
            self.by_position[meta["position"]].stop_machine(
                _machine_id(meta), meta["now_s"]
            )
            return None
        if kind is FrameKind.REBOOT:
            self.by_position[meta["position"]].reboot_machine(
                _machine_id(meta), meta["now_s"]
            )
            return None
        if kind is FrameKind.SET_CPU_QUOTA:
            self.by_position[meta["position"]].set_cpu_quota(
                _machine_id(meta), meta["quota_fraction"]
            )
            return None
        if kind is FrameKind.SET_BUSY:
            self.by_position[meta["position"]].set_busy_fraction(
                _machine_id(meta), meta["fraction"]
            )
            return None
        if kind is FrameKind.PING:
            return None
        raise ValueError(f"worker cannot handle frame kind {kind!r}")


def worker_main(spec: WorkerSpec, conn) -> None:
    """Child-process entrypoint: build the managers and serve the pipe."""
    try:
        _Worker(spec, conn).run()
    finally:
        try:
            conn.close()
        except OSError:
            pass
