"""The worker-process entrypoint of the distribution runtime.

One worker owns one or more :class:`~repro.core.machine_manager.
MachineManager`\\ s — each with its :class:`~repro.hosts.Host` and microVMs —
in a child process.  It plays the role a Celestial host plays on a real
machine of the paper's testbed: receive the part of every constellation
update that concerns its own machines, apply it, and report host resource
usage back to the coordinator (§3, Fig. 2).

Protocol
--------

The worker reads :mod:`repro.dist.wire` frames from its transport — a local
pipe or a TCP connection (:mod:`repro.dist.transport`) — in order and
executes them sequentially, which makes its random streams replayable: the
coordinator forwards machine creations and usage-sample requests in exactly
the order the in-process thread backend would execute them, so every random
draw (usage-sample jitter, microVM boot times) lands on the same generator
state as in a single-process run — the foundation of the byte-identical
backend-equivalence guarantee.

Frames whose metadata carries a ``seq`` number are acknowledged.  Every
acknowledgement streams back the worker's observable state: per-manager
counter/RNG checkpoints (:meth:`MachineManager.counters_snapshot`), the
dirty-machine reconciliation results of an applied slice, usage samples, and
any errors from unacknowledged control frames.  The supervisor keeps the
latest acknowledgement as the recovery checkpoint.

Control frames (machine creation, fault-injection ops) are *durable*: the
supervisor journals them and replays the journal into a fresh process after
a crash, followed by a ``RESTORE`` frame that forces bounding-box activity
to the checkpoint epoch (recovered from the database's keyframe + diff
chain) and restores counters and RNG streams.

Remote placement
----------------

Run standalone on another machine with::

    python -m repro.dist.worker --connect HOST:PORT --index N [--loop]

The worker dials the supervisor's per-worker listener, handshakes (a
``HELLO`` frame carrying its index; the frame header carries
``WIRE_VERSION``) and receives its :class:`WorkerSpec` in the answering
``SPEC`` frame, so the command line needs no blueprint — only an address.
With ``--loop`` the worker reconnects after a dropped connection (e.g. the
supervisor restarting it after a detected wedge), which is the external
analogue of the supervisor's local respawn.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time
import traceback
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.config import ComputeParams
from repro.core.constellation import MachineId
from repro.core.machine_manager import MachineManager
from repro.dist import wire
from repro.dist.transport import PipeTransport, Transport, connect_transport
from repro.dist.wire import FrameKind
from repro.hosts import Host


@dataclass(frozen=True)
class HostSpec:
    """Blueprint of one host (and its manager) owned by a worker.

    ``rng_state`` is the bit-generator state of the coordinator-side manager
    stream at backend creation time, so the worker's manager draws exactly
    the sequence the in-process backend would have drawn.
    """

    position: int
    host_index: int
    cpu_cores: int
    memory_mib: int
    allow_memory_overcommit: bool
    rng_state: dict


@dataclass(frozen=True)
class WorkerSpec:
    """Blueprint of one worker process (picklable for any start method)."""

    worker_index: int
    hosts: tuple[HostSpec, ...]


def _machine_id(meta: dict[str, Any]) -> MachineId:
    return MachineId(meta["shell"], meta["identifier"], meta["name"])


class _Worker:
    """Dispatch loop state of one worker process."""

    def __init__(self, spec: WorkerSpec, conn):
        self.spec = spec
        self.conn = conn
        self.by_position: dict[int, MachineManager] = {}
        self.by_host_index: dict[int, MachineManager] = {}
        for host_spec in spec.hosts:
            host = Host(
                index=host_spec.host_index,
                cpu_cores=host_spec.cpu_cores,
                memory_mib=host_spec.memory_mib,
                allow_memory_overcommit=host_spec.allow_memory_overcommit,
            )
            manager = MachineManager(host)
            manager._rng.bit_generator.state = host_spec.rng_state
            self.by_position[host_spec.position] = manager
            self.by_host_index[host_spec.host_index] = manager
        # Last epoch applied per manager: a worker owning several hosts may
        # be mid-epoch (one slice applied, the next not), and recovery
        # restores each manager to its own acknowledged epoch.
        self.epochs = {host_spec.position: 0 for host_spec in spec.hosts}
        self.deferred_errors: list[str] = []

    # -- acknowledgements ---------------------------------------------------

    def _ack(self, seq: int, extra: Optional[dict[str, Any]] = None) -> None:
        meta = {
            "seq": seq,
            "epochs": dict(self.epochs),
            "counters": {
                position: manager.counters_snapshot()
                for position, manager in self.by_position.items()
            },
        }
        if self.deferred_errors:
            meta["deferred_errors"] = list(self.deferred_errors)
            self.deferred_errors.clear()
        if extra:
            meta.update(extra)
        self.conn.send_bytes(wire.encode_frame(FrameKind.ACK, meta))

    def _error(self, seq: int, error: BaseException) -> None:
        self.conn.send_bytes(
            wire.encode_frame(
                FrameKind.ERROR,
                {"seq": seq, "traceback": "".join(traceback.format_exception(error))},
            )
        )

    # -- dispatch -----------------------------------------------------------

    def run(self) -> bool:
        """Serve frames until shutdown or connection loss.

        Returns ``True`` on a clean ``SHUTDOWN``, ``False`` when the
        connection dropped — the standalone ``--loop`` mode reconnects only
        in the latter case.
        """
        while True:
            try:
                data = self.conn.recv_bytes()
            except (EOFError, OSError):
                return False
            try:
                # allow_pickle: this channel is the supervisor that spawned
                # us (pipe) or whose address the operator configured (TCP);
                # CREATE_MACHINE frames carry kernel/rootfs dataclasses.
                kind, meta, arrays = wire.decode_frame(data, allow_pickle=True)
            except wire.WireError:
                # A corrupt frame means the stream is desynced; treat it
                # like a dropped connection (a --loop worker reconnects and
                # re-handshakes, the supervisor sees EOF and restarts us).
                return False
            if kind is FrameKind.CRASH:
                # Test hook: die like a killed process, no cleanup, no reply.
                os._exit(17)
            if kind is FrameKind.WEDGE:
                # Test hook: stay alive but stop serving — the supervisor's
                # receive timeout must detect this and restart the worker.
                while True:
                    time.sleep(60.0)
            if kind is FrameKind.SHUTDOWN:
                if "seq" in meta:
                    self._ack(meta["seq"])
                return True
            try:
                extra = self._dispatch(kind, meta, arrays)
            except BaseException as error:  # noqa: BLE001 - reported to the parent
                if "seq" in meta:
                    self._error(meta["seq"], error)
                else:
                    self.deferred_errors.append(
                        f"{kind.name}: {type(error).__name__}: {error}"
                    )
                continue
            if "seq" in meta:
                self._ack(meta["seq"], extra)

    def _dispatch(
        self, kind: FrameKind, meta: dict[str, Any], arrays: list[np.ndarray]
    ) -> Optional[dict[str, Any]]:
        if kind is FrameKind.APPLY_SLICE:
            position = meta["position"]
            state_slice = wire.decode_slice(meta, arrays)
            manager = self.by_position[position]
            manager.apply_diff(state_slice, meta["now_s"])
            self.epochs[position] = state_slice.epoch
            reconciled = {}
            for name in state_slice.dirty_active:
                machine = manager.host.machines.get(name)
                if machine is not None:
                    reconciled[name] = machine.state.value
            return {"reconciled": {position: reconciled}}
        if kind is FrameKind.APPLY_ACTIVITY:
            active, _time_s, epoch = wire.decode_activity(meta, arrays)
            for position, manager in self.by_position.items():
                manager.apply_activity(active, meta["now_s"])
                self.epochs[position] = epoch
            return None
        if kind is FrameKind.SAMPLE_USAGE:
            wanted = meta.get("positions")
            samples = {}
            for position, manager in sorted(self.by_position.items()):
                if wanted is not None and position not in wanted:
                    continue
                sample = manager.sample_usage(
                    meta["now_s"],
                    setup_phase=meta["setup_phase"],
                    applying_update=meta["applying_update"],
                )
                samples[position] = dataclasses.asdict(sample)
            return {"samples": samples}
        if kind is FrameKind.RESTORE:
            position = meta["position"]
            active = dict(zip(meta["shells"], arrays)) if meta["force_activity"] else None
            self.by_position[position].restore_runtime_state(
                active,
                meta["snapshot"],
                meta["now_s"],
                skip=set(meta["skip"]),  # machine names are globally unique
            )
            self.epochs[position] = meta["epoch"]
            return None
        if kind is FrameKind.CREATE_MACHINE:
            manager = self.by_position[meta["position"]]
            manager.create_machine(
                _machine_id(meta),
                ComputeParams(**meta["compute"]),
                kernel=meta["kernel"],
                rootfs=meta["rootfs"],
            )
            return None
        if kind is FrameKind.BOOT:
            self.by_position[meta["position"]].boot(_machine_id(meta), meta["now_s"])
            return None
        if kind is FrameKind.BOOT_ALL:
            self.by_position[meta["position"]].boot_all(meta["now_s"])
            return None
        if kind is FrameKind.STOP:
            self.by_position[meta["position"]].stop_machine(
                _machine_id(meta), meta["now_s"]
            )
            return None
        if kind is FrameKind.REBOOT:
            self.by_position[meta["position"]].reboot_machine(
                _machine_id(meta), meta["now_s"]
            )
            return None
        if kind is FrameKind.SET_CPU_QUOTA:
            self.by_position[meta["position"]].set_cpu_quota(
                _machine_id(meta), meta["quota_fraction"]
            )
            return None
        if kind is FrameKind.SET_BUSY:
            self.by_position[meta["position"]].set_busy_fraction(
                _machine_id(meta), meta["fraction"]
            )
            return None
        if kind is FrameKind.PING:
            return None
        raise ValueError(f"worker cannot handle frame kind {kind!r}")


def worker_main(spec: WorkerSpec, conn) -> None:
    """Child-process entrypoint: build the managers and serve the transport.

    ``conn`` may be a raw pipe ``Connection`` (the pipe factory passes the
    child end through process arguments) or any
    :class:`~repro.dist.transport.Transport`.
    """
    transport = conn if isinstance(conn, Transport) else PipeTransport(conn)
    try:
        _Worker(spec, transport).run()
    finally:
        try:
            transport.close()
        except OSError:
            pass


def tcp_worker_main(
    host: str, port: int, worker_index: int, auth_secret: str = ""
) -> None:
    """Child-process entrypoint of a supervisor-spawned TCP worker.

    Identical to what ``python -m repro.dist.worker --connect`` runs: dial,
    handshake (answering the supervisor's HMAC challenge when a shared
    secret is configured), receive the spec over the wire, serve — so the
    localhost equivalence suite exercises exactly the remote-placement
    code path.
    """
    spec, transport = connect_transport(
        host, port, worker_index, auth_secret=auth_secret
    )
    try:
        _Worker(spec, transport).run()
    finally:
        transport.close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point: ``python -m repro.dist.worker``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.dist.worker",
        description="Run one Celestial dist-layer worker against a remote "
        "supervisor (the worker's blueprint arrives over the wire).",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of the supervisor's listener for this worker slot",
    )
    parser.add_argument(
        "--index",
        type=int,
        required=True,
        help="worker index announced in the HELLO handshake",
    )
    parser.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        help="seconds to keep retrying the TCP connect (default: 30)",
    )
    parser.add_argument(
        "--loop",
        action="store_true",
        help="reconnect after a dropped connection instead of exiting "
        "(a clean SHUTDOWN always exits)",
    )
    parser.add_argument(
        "--auth-secret",
        default=os.environ.get("CELESTIAL_AUTH_SECRET", ""),
        help="shared secret answering the supervisor's HMAC challenge "
        "(defaults to $CELESTIAL_AUTH_SECRET; empty disables auth)",
    )
    args = parser.parse_args(argv)
    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        parser.error(f"--connect expects HOST:PORT, got {args.connect!r}")
    while True:
        spec, transport = connect_transport(
            host,
            int(port_text),
            args.index,
            timeout_s=args.connect_timeout,
            auth_secret=args.auth_secret,
        )
        try:
            clean_shutdown = _Worker(spec, transport).run()
        finally:
            transport.close()
        if clean_shutdown or not args.loop:
            return 0


if __name__ == "__main__":
    sys.exit(main())
