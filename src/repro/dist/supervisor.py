"""Supervision of the worker-process pool: spawn, heartbeat, crash recovery.

The supervisor owns one transport (+ process, when locally spawned) per
:class:`~repro.dist.worker.WorkerSpec` — obtained from a
:class:`~repro.dist.transport.TransportFactory`, so the same supervision,
ledger-replay and restore logic drives pipe-connected local processes,
TCP-connected local processes and operator-started remote workers — and
gives the fan-out backend three primitives:

* :meth:`WorkerSupervisor.post` — fire-and-forget control frames (machine
  creations, fault-injection ops).  Durable posts are journalled in a
  per-worker **control ledger** before they are sent; the ledger is the
  worker's genesis history and is replayed verbatim into a fresh process
  after a crash.
* :meth:`WorkerSupervisor.begin_request` / :meth:`finish_request` — frames
  that want an acknowledgement.  Splitting send from collect lets the
  backend broadcast one slice to every worker and only then start draining
  acks, so workers chew in parallel.  Every acknowledgement carries the
  worker's counter/RNG checkpoint and becomes the recovery point.
* :meth:`WorkerSupervisor.check` / :meth:`ping` — heartbeat: a liveness
  sweep over the pool (dead processes are detected and restarted before the
  next fan-out trips over a broken pipe) and an end-to-end round-trip probe.

Crash recovery
--------------

A worker crash is detected four ways: a broken/EOF transport while sending
or collecting, a heartbeat sweep finding the process dead, an ack wait
observing process exit, or — for a worker that *wedges while staying
alive* — the ``ack_timeout_s`` receive deadline expiring (routed into the
same recovery path as a hard crash; the wedged process is killed before its
successor spawns).  Recovery then proceeds in three steps:

1. **Respawn** a fresh process from the original spec (same host blueprint,
   same initial RNG states).
2. **Replay the control ledger** — the worker re-creates and boots exactly
   the machines it owned, in the original order.
3. **Restore runtime state from the database's keyframe + diff chain**: the
   per-shell bounding-box activity masks of the last acknowledged epoch are
   reconstructed with :meth:`~repro.core.database.ConstellationDatabase.
   activity_at_epoch` (nearest retained keyframe, diffs replayed forward)
   and shipped in a ``RESTORE`` frame together with the checkpointed
   counters and RNG states.  Machines whose lifecycle changed outside the
   diff protocol after the checkpoint (the coordinator-side dirty set,
   obtained through ``dirty_resolver``) are skipped, so the next slice's
   ``dirty_active`` map reconciles them *with* counting — exactly like the
   in-process path.

The in-flight request that observed the crash is then re-sent: the restored
worker is at the checkpoint epoch, so re-applying the current epoch's slice
produces the same transitions (and counter increments) the uncrashed worker
would have produced.  Restarts are bounded by ``max_restarts`` per worker —
but the budget *decays*: after ``restart_decay_acks`` healthy acknowledged
requests the counter resets to zero, so transient crashes spread over a
long-running sim never add up to a fatal budget exhaustion, while a crash
loop (which never stays healthy long enough to decay) still hits the bound.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from collections import deque
from typing import Any, Callable, Optional

import numpy as np

from repro.dist import wire
from repro.dist.transport import TransportTimeout, make_transport_factory
from repro.dist.wire import FrameKind
from repro.dist.worker import WorkerSpec


class WorkerCrashError(RuntimeError):
    """A worker died (detected via transport, heartbeat, exit or timeout)."""


class WorkerTimeoutError(WorkerCrashError):
    """A live worker failed to acknowledge within ``ack_timeout_s``.

    Subclasses :class:`WorkerCrashError` so a wedged-but-alive worker takes
    the same kill/respawn/replay path as a dead one.
    """


class WorkerRemoteError(RuntimeError):
    """A worker reported an exception while executing a frame."""


def default_context() -> multiprocessing.context.BaseContext:
    """The start-method context used for worker processes.

    ``fork`` (where available) shares the already-imported scientific stack
    with the children, which makes spawning a 4-worker pool cheap; set
    ``CELESTIAL_MP_CONTEXT=spawn`` to force the slower, stateless method.
    """
    name = os.environ.get("CELESTIAL_MP_CONTEXT")
    if name is None:
        name = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    return multiprocessing.get_context(name)


class _Handle:
    """Book-keeping of one supervised worker."""

    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        self.process = None
        self.conn = None
        self.seq = 0
        self.ledger: list[bytes] = []
        self.checkpoint: Optional[dict[str, Any]] = None
        #: (sequence, encoded frame, monotonic send time) per in-flight request.
        self.inflight: deque[tuple[int, bytes, float]] = deque()
        self.restarts = 0
        # Healthy acknowledged requests since the last restart; at
        # ``restart_decay_acks`` the restart budget resets (transient
        # crashes over a long run must not accumulate into a death).
        self.healthy_acks = 0
        # Set when a send observed a broken pipe: recovery is deferred to
        # the next collect/heartbeat so that every frame of the current
        # epoch is already queued in ``inflight`` when the worker is rebuilt
        # (the restore skip-set is derived from those frames).
        self.dead = False


class WorkerSupervisor:
    """Spawns, monitors and restarts the worker-process pool."""

    def __init__(
        self,
        specs: list[WorkerSpec],
        database=None,
        dirty_resolver: Optional[Callable[[int], set[str]]] = None,
        mp_context=None,
        max_restarts: int = 3,
        ack_timeout_s: float = 120.0,
        restart_decay_acks: int = 64,
        transport="pipe",
    ):
        self._handles = [_Handle(spec) for spec in specs]
        self._database = database
        self._dirty_resolver = dirty_resolver
        self._ctx = mp_context if mp_context is not None else default_context()
        self._factory = make_transport_factory(transport)
        self.max_restarts = max_restarts
        self.ack_timeout_s = ack_timeout_s
        self.restart_decay_acks = restart_decay_acks
        self.restart_count = 0
        # Ack round-trip seconds per worker slot, from first send to the
        # acknowledgement's arrival (recovery time included — a re-sent frame
        # keeps its original send stamp).  Drained by the backend into
        # UpdateStats.worker_ack_seconds.
        self._ack_latency: dict[int, list[float]] = {}
        self._started = False
        self._closed = False
        self._last_now_s = 0.0

    # -- lifecycle ----------------------------------------------------------

    @property
    def started(self) -> bool:
        """Whether the pool has been spawned."""
        return self._started

    @property
    def worker_count(self) -> int:
        """Number of supervised workers."""
        return len(self._handles)

    def start(self) -> None:
        """Spawn every worker process (idempotent; a closed pool stays closed)."""
        if self._closed:
            raise RuntimeError("the worker pool has been closed")
        if self._started:
            return
        self._started = True
        for handle in self._handles:
            self._spawn(handle)
        atexit.register(self.close)

    @property
    def transport_name(self) -> str:
        """The transport backend in use (``"pipe"`` or ``"tcp"``)."""
        return self._factory.name

    def _spawn(self, handle: _Handle) -> None:
        # ``process`` is None for externally placed workers: the factory
        # then only accepts the (re)connection — liveness checks fall back
        # to EOF detection and the receive timeout.
        handle.process, handle.conn = self._factory.spawn(handle.spec, self._ctx)

    def close(self) -> None:
        """Join/kill every worker deterministically (idempotent).

        Safe to call during interpreter shutdown: a best-effort SHUTDOWN
        frame drains each worker, stragglers are terminated, then killed.
        The workers are daemonic as a last line of defence, so even an
        unserviced close can never hang interpreter exit.
        """
        if self._closed or not self._started:
            self._closed = True
            self._factory.close()
            return
        self._closed = True
        for handle in self._handles:
            if handle.conn is None:
                continue
            try:
                if handle.process is None or handle.process.is_alive():
                    handle.conn.send_bytes(wire.encode_frame(FrameKind.SHUTDOWN, {}))
            except (OSError, BrokenPipeError, ValueError):
                pass
            if handle.process is not None:
                handle.process.join(timeout=2.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
                if handle.process.is_alive():  # pragma: no cover - last resort
                    handle.process.kill()
                    handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self._factory.close()
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    # -- frame transport ----------------------------------------------------

    def _track_time(self, meta: dict[str, Any]) -> None:
        if "now_s" in meta:
            self._last_now_s = max(self._last_now_s, float(meta["now_s"]))

    def post(
        self,
        worker: int,
        kind: FrameKind,
        meta: dict[str, Any],
        arrays: tuple[np.ndarray, ...] = (),
        durable: bool = True,
    ) -> None:
        """Send a fire-and-forget control frame (journalled when durable).

        The frame is appended to the worker's ledger *before* the send, so a
        crash mid-send is recovered by the ledger replay alone — the frame
        is never lost and never applied twice (the replay target is a fresh
        process).
        """
        self.start()
        self._track_time(meta)
        handle = self._handles[worker]
        frame = wire.encode_frame(kind, meta, arrays)
        if durable:
            handle.ledger.append(frame)
        if handle.dead:
            return  # durable frames reach the successor via the ledger replay
        try:
            handle.conn.send_bytes(frame)
        except (OSError, BrokenPipeError, EOFError):
            handle.dead = True

    def begin_request(
        self,
        worker: int,
        kind: FrameKind,
        meta: dict[str, Any],
        arrays: tuple[np.ndarray, ...] = (),
    ) -> int:
        """Send an acknowledged frame without waiting; returns its sequence.

        Several requests may be in flight per worker (one per slice of a
        multi-host worker); acknowledgements are collected FIFO with
        :meth:`finish_request`.
        """
        self.start()
        self._track_time(meta)
        handle = self._handles[worker]
        handle.seq += 1
        frame = wire.encode_frame(kind, {**meta, "seq": handle.seq}, arrays)
        handle.inflight.append((handle.seq, frame, time.monotonic()))
        if not handle.dead:
            try:
                handle.conn.send_bytes(frame)
            except (OSError, BrokenPipeError, EOFError):
                handle.dead = True  # recovered at collect time, frame queued
        return handle.seq

    def finish_request(self, worker: int) -> dict[str, Any]:
        """Collect the acknowledgement of the oldest in-flight request.

        Crashes observed while sending or waiting trigger recovery and a
        re-send of all in-flight frames; worker-side exceptions surface as
        :class:`WorkerRemoteError`.
        """
        handle = self._handles[worker]
        if not handle.inflight:
            raise RuntimeError(f"worker {worker} has no request in flight")
        while True:
            try:
                if handle.dead:
                    raise WorkerCrashError(
                        f"worker {handle.spec.worker_index} transport broke mid-send"
                    )
                meta = self._await_ack(handle, handle.inflight[0][0])
                _seq, _frame, sent_at = handle.inflight.popleft()
                self._ack_latency.setdefault(handle.spec.worker_index, []).append(
                    time.monotonic() - sent_at
                )
                self._note_healthy(handle)
                return meta
            except WorkerCrashError:
                self._recover(handle)  # re-sends every in-flight frame

    def _note_healthy(self, handle: _Handle) -> None:
        # Only *request* acknowledgements count as health evidence: the
        # restore acks of a freshly rebuilt worker must not decay the budget
        # (a crash loop that always survives its own restore would then
        # never exhaust it).
        handle.healthy_acks += 1
        if handle.restarts and handle.healthy_acks >= self.restart_decay_acks:
            handle.restarts = 0
            handle.healthy_acks = 0

    def request(
        self,
        worker: int,
        kind: FrameKind,
        meta: dict[str, Any],
        arrays: tuple[np.ndarray, ...] = (),
    ) -> dict[str, Any]:
        """Round-trip one acknowledged frame."""
        self.begin_request(worker, kind, meta, arrays)
        return self.finish_request(worker)

    def _await_ack(self, handle: _Handle, seq: int) -> dict[str, Any]:
        deadline = time.monotonic() + self.ack_timeout_s
        while not handle.conn.poll(0.05):
            if handle.process is not None and not handle.process.is_alive():
                raise WorkerCrashError(
                    f"worker {handle.spec.worker_index} died "
                    f"(exit code {handle.process.exitcode})"
                )
            if time.monotonic() > deadline:
                # The worker is alive (or unobservable, when external) but
                # silent: treat the wedge as a crash so recovery kills and
                # rebuilds it instead of hanging the epoch forever.
                raise WorkerTimeoutError(
                    f"worker {handle.spec.worker_index} did not acknowledge "
                    f"frame {seq} within {self.ack_timeout_s:.0f}s"
                )
        try:
            # The remaining deadline bounds the receive itself too: a peer
            # that wedges mid-frame (or a stream stalled after the length
            # prefix) cannot block past ack_timeout_s.
            data = handle.conn.recv_bytes(
                timeout=max(0.05, deadline - time.monotonic())
            )
        except (TransportTimeout, TimeoutError) as error:
            raise WorkerTimeoutError(
                f"worker {handle.spec.worker_index} stalled mid-frame while "
                f"acknowledging frame {seq}: {error}"
            ) from error
        except (EOFError, OSError) as error:
            raise WorkerCrashError(
                f"worker {handle.spec.worker_index} transport closed: {error}"
            ) from error
        try:
            kind, meta, _arrays = wire.decode_frame(data)
        except wire.WireVersionError:
            raise  # version skew is fatal: a restart cannot fix the build
        except wire.WireError as error:
            # A corrupt frame means the stream itself can no longer be
            # trusted; tear the worker down and rebuild it.
            raise WorkerCrashError(
                f"worker {handle.spec.worker_index} sent a malformed frame: "
                f"{error}"
            ) from error
        if kind is FrameKind.ERROR:
            raise WorkerRemoteError(
                f"worker {handle.spec.worker_index} failed:\n{meta['traceback']}"
            )
        if kind is not FrameKind.ACK or meta.get("seq") != seq:
            raise WorkerRemoteError(
                f"worker {handle.spec.worker_index} sent unexpected "
                f"{kind.name} (seq {meta.get('seq')!r}, expected {seq})"
            )
        if meta.get("deferred_errors"):
            raise WorkerRemoteError(
                f"worker {handle.spec.worker_index} control-frame errors: "
                + "; ".join(meta["deferred_errors"])
            )
        handle.checkpoint = meta
        return meta

    # -- heartbeat ----------------------------------------------------------

    def check(self) -> int:
        """Liveness sweep: restart any dead worker; returns restarts made."""
        if not self._started or self._closed:
            return 0
        restarted = 0
        for handle in self._handles:
            if handle.dead or (
                handle.process is not None and not handle.process.is_alive()
            ):
                self._recover(handle)
                restarted += 1
        return restarted

    def ping(self, worker: int) -> dict[str, Any]:
        """End-to-end heartbeat probe (returns the worker's checkpoint meta)."""
        return self.request(worker, FrameKind.PING, {})

    def checkpoint(self, worker: int) -> Optional[dict[str, Any]]:
        """The worker's last acknowledged checkpoint (None before the first)."""
        return self._handles[worker].checkpoint

    def drain_ack_latencies(self) -> dict[int, list[float]]:
        """Ack round-trip seconds per worker slot since the last drain.

        Returns and clears the accumulated samples, so successive calls
        partition the samples without double counting.
        """
        drained = self._ack_latency
        self._ack_latency = {}
        return drained

    def crash_worker(self, worker: int) -> None:
        """Test hook: hard-kill a worker (SIGKILL), as a real crash would."""
        handle = self._handles[worker]
        if handle.process is not None and handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=5.0)

    # -- recovery -----------------------------------------------------------

    def _recover(self, handle: _Handle) -> None:
        # A successor can die too (repeatable crash, OOM while rebuilding
        # thousands of microVMs), so the whole rebuild — spawn, ledger
        # replay, restore, in-flight re-send — retries under the same
        # bounded restart budget instead of leaking raw pipe errors.
        while True:
            handle.restarts += 1
            self.restart_count += 1
            handle.healthy_acks = 0
            if handle.restarts > self.max_restarts:
                raise WorkerCrashError(
                    f"worker {handle.spec.worker_index} exceeded "
                    f"{self.max_restarts} restarts"
                )
            if handle.process is not None:
                # Wedged workers are still alive — the receive timeout, not
                # process death, routed us here — so the kill is load-
                # bearing, not merely defensive.
                if handle.process.is_alive():
                    handle.process.kill()
                handle.process.join(timeout=5.0)
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:
                    pass
            handle.dead = True
            try:
                # The spawn itself retries under the same budget: a TCP
                # successor can fail its accept/handshake (or an external
                # worker may take a while to be relaunched) just like a pipe
                # successor can die mid-replay.
                self._spawn(handle)
                handle.dead = False
                for frame in handle.ledger:
                    handle.conn.send_bytes(frame)
                self._restore(handle)
                for _seq, frame, _sent_at in handle.inflight:
                    handle.conn.send_bytes(frame)
                return
            except (OSError, BrokenPipeError, EOFError, WorkerCrashError):
                continue  # the successor died mid-recovery: rebuild again

    def _restore(self, handle: _Handle) -> None:
        """Ship the keyframe + diff replay of the checkpointed state.

        One ``RESTORE`` frame per manager: a worker owning several hosts may
        have acknowledged this epoch's slice for one host but not the other,
        so each manager is restored to *its own* last-acknowledged epoch and
        the re-sent in-flight slices advance exactly the managers that were
        behind — counting their transitions once, like the thread backend.
        """
        if handle.checkpoint is None or self._database is None:
            return
        # Snapshot the checkpoint: the restore acknowledgements below
        # overwrite handle.checkpoint with the successor's state, which is
        # only fully valid once *every* position has been restored.  If the
        # successor dies mid-restore, roll back so the retry recovers from
        # the original (complete) checkpoint, not a half-rebuilt one.
        checkpoint = handle.checkpoint
        # Machines whose out-of-protocol lifecycle change has not yet been
        # reconciled *by the worker* keep their ledger-rebuilt state so the
        # (re-sent) slice counts the reconcile exactly once.  Two sources:
        # the coordinator-side dirty sets (crash detected before the epoch's
        # slices were sharded) and the dirty_active maps of the still
        # unacknowledged in-flight slice frames (crash detected mid-epoch,
        # after the shadows already reconciled and cleared their dirty
        # sets).  Machine names are globally unique → one flat set.
        skip: set[str] = set()
        positions = list(checkpoint["counters"])
        if self._dirty_resolver is not None:
            for position in positions:
                skip |= self._dirty_resolver(position)
        for _seq, frame, _sent_at in handle.inflight:
            # allow_pickle: these are bytes this very process encoded.
            kind, frame_meta, _arrays = wire.decode_frame(frame, allow_pickle=True)
            if kind is FrameKind.APPLY_SLICE:
                skip |= set(frame_meta["dirty_active"])
        epochs = checkpoint.get("epochs", {})
        masks_cache: dict[int, dict] = {}
        try:
            for position in positions:
                epoch = int(epochs.get(position, 0))
                if epoch > 0:
                    if epoch not in masks_cache:
                        masks_cache[epoch] = self._database.activity_at_epoch(epoch)
                    active = masks_cache[epoch]
                    shells = sorted(active)
                    arrays = tuple(active[shell] for shell in shells)
                else:
                    # Nothing applied yet: restore counters/RNG only.
                    shells, arrays = [], ()
                handle.seq += 1
                meta = {
                    "seq": handle.seq,
                    "position": position,
                    "epoch": epoch,
                    "force_activity": epoch > 0,
                    "now_s": self._last_now_s,
                    "shells": shells,
                    "snapshot": checkpoint["counters"][position],
                    "skip": sorted(skip),
                }
                handle.conn.send_bytes(
                    wire.encode_frame(FrameKind.RESTORE, meta, arrays)
                )
                self._await_ack(handle, handle.seq)
        except BaseException:
            handle.checkpoint = checkpoint
            raise

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass
