"""The thread-vs-process fan-out seam behind the coordinator.

The coordinator's distribution policy (who receives which slice) is
expressed once, in :meth:`~repro.core.coordinator.Coordinator._shard`; *how*
the slices reach the managers is a backend concern:

* :class:`ThreadFanoutBackend` — the managers live in the coordinator
  process and slices are applied over a persistent thread pool (the PR 2/3
  behaviour, and the default).
* :class:`ProcessFanoutBackend` — the authoritative managers live in
  supervised worker processes (:mod:`repro.dist.worker`).  Slices travel as
  :mod:`repro.dist.wire` frames; the workers apply them, run the per-host
  usage-sampling sweeps outside the GIL, and stream samples, counters and
  dirty-machine reconciliation results back.

Shadow managers
---------------

In process mode the coordinator keeps the managers it was constructed with
as in-process **shadows**: they perform placement (reserved-memory balance),
dirty-machine tracking and the cheap O(transitions) slice bookkeeping, so
every parent-side query (``manager_for``, ``is_running_at``, fault
injection, the virtual network's running-check) stays a local call.  The
expensive per-host sweeps happen worker-side only; the shadows merely
consume the same RNG draws a sweep performs
(:meth:`~repro.core.machine_manager.MachineManager.advance_sample_stream`),
which keeps both streams in lockstep with a single-process run — machines
created after a sample seed identically everywhere, so even sub-second boot
jitter is backend-invariant.  Returned usage samples are recorded into the
shadow hosts' traces so observability (``resource_traces()``) is
backend-agnostic.  After every fan-out the backend verifies the workers'
counters and reconciliation results against the shadows and raises
:class:`WorkerDesyncError` on any divergence, which turns the
backend-equivalence guarantee (and the correctness of crash recovery by
keyframe + diff replay) into a runtime invariant.

Lifecycle operations arriving through :class:`MirroredManager` (the proxy
the coordinator hands out in process mode) are applied to the shadow and
forwarded to the owning worker as durable control frames, in program order
— which is what keeps the worker RNG streams in lockstep with what a
single-process run would have drawn.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.core.constellation import ConstellationState, MachineId
from repro.core.machine_manager import HostStateSlice, MachineManager
from repro.hosts.resources import UsageSample
from repro.dist import wire
from repro.dist.supervisor import WorkerSupervisor
from repro.dist.wire import FrameKind
from repro.dist.worker import HostSpec, WorkerSpec


class WorkerDesyncError(RuntimeError):
    """A worker's observable state diverged from its in-process shadow."""


class FanoutBackend:
    """Common surface of the fan-out backends (documentation base class)."""

    #: ``"threads"`` or ``"processes"``.
    parallelism: str

    @property
    def managers(self) -> list:
        """The manager objects the coordinator should hand out."""
        raise NotImplementedError

    def apply_slices(self, slices: list[HostStateSlice], now_s: float) -> None:
        """Apply one epoch's per-host slices (one per manager position)."""
        raise NotImplementedError

    def apply_full_state(self, state: ConstellationState, now_s: float) -> None:
        """Full-replay sweep (first epoch / non-incremental path)."""
        raise NotImplementedError

    def sample_all(
        self, now_s: float, setup_phase: bool = False, applying_update: bool = False
    ) -> list[UsageSample]:
        """One usage-sampling sweep across every host, in position order."""
        raise NotImplementedError

    def drain_transport_latencies(self) -> dict[int, list[float]]:
        """Transport ack round-trip seconds per worker slot since last drain.

        Empty for in-process backends (there is no transport to measure);
        the process backend reports the supervisor's acknowledgement
        latencies per worker.
        """
        return {}

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        raise NotImplementedError


class ThreadFanoutBackend(FanoutBackend):
    """In-process managers, slices fanned out over a persistent thread pool."""

    parallelism = "threads"

    def __init__(self, managers: list[MachineManager], concurrent: bool = True):
        self._managers = list(managers)
        self.concurrent = concurrent
        # Lazily created, persistent pool (one thread per manager); spawning
        # threads per epoch would tax the very path this pipeline optimises.
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False

    @property
    def managers(self) -> list[MachineManager]:
        return self._managers

    def _map(self, calls) -> list:
        """Run one callable per manager, over the pool when it pays off."""
        if self._closed:
            raise RuntimeError("the fan-out backend has been closed")
        if self.concurrent and len(self._managers) > 1:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=len(self._managers),
                    thread_name_prefix="celestial-fanout",
                )
            return [future.result() for future in
                    [self._pool.submit(call) for call in calls]]
        return [call() for call in calls]

    def apply_slices(self, slices: list[HostStateSlice], now_s: float) -> None:
        # Each manager only mutates its own host's machines, so the slices
        # can be applied in parallel; the per-manager counters and machine
        # transitions are deterministic regardless of completion order.
        self._map([
            (lambda m=manager, s=state_slice: m.apply_diff(s, now_s))
            for manager, state_slice in zip(self._managers, slices)
        ])

    def apply_full_state(self, state: ConstellationState, now_s: float) -> None:
        for manager in self._managers:
            manager.apply_state(state, now_s)

    def sample_all(
        self, now_s: float, setup_phase: bool = False, applying_update: bool = False
    ) -> list[UsageSample]:
        return self._map([
            (lambda m=manager: m.sample_usage(
                now_s, setup_phase=setup_phase, applying_update=applying_update
            ))
            for manager in self._managers
        ])

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class MirroredManager:
    """Coordinator-side proxy of a worker-owned manager.

    Lifecycle operations are applied to the in-process shadow (placement,
    dirty tracking, machine states) *and* forwarded to the owning worker as
    durable control frames; reads delegate to the shadow.  Usage sampling is
    worker-authoritative: the sample is drawn from the worker's RNG stream
    and recorded into the shadow host's trace.
    """

    def __init__(self, shadow: MachineManager, backend: "ProcessFanoutBackend", position: int):
        self._shadow = shadow
        self._backend = backend
        self.position = position

    def __getattr__(self, name):
        return getattr(self._shadow, name)

    @staticmethod
    def _identity(machine_id: MachineId) -> dict:
        return {
            "shell": machine_id.shell,
            "identifier": machine_id.identifier,
            "name": machine_id.name,
        }

    def create_machine(self, machine_id, compute, kernel=None, rootfs=None):
        machine = self._shadow.create_machine(machine_id, compute, kernel, rootfs)
        # kernel/rootfs are small frozen dataclasses: they ride the metadata
        # blob so the worker's authoritative copy (and every ledger replay)
        # is built from the same images as the shadow.
        self._backend.forward(
            self.position,
            FrameKind.CREATE_MACHINE,
            {
                **self._identity(machine_id),
                "compute": dataclasses.asdict(compute),
                "kernel": kernel,
                "rootfs": rootfs,
            },
        )
        return machine

    def boot(self, machine_id, now_s: float) -> float:
        finished = self._shadow.boot(machine_id, now_s)
        self._backend.forward(
            self.position, FrameKind.BOOT, {**self._identity(machine_id), "now_s": now_s}
        )
        return finished

    def boot_all(self, now_s: float) -> float:
        finished = self._shadow.boot_all(now_s)
        self._backend.forward(self.position, FrameKind.BOOT_ALL, {"now_s": now_s})
        return finished

    def stop_machine(self, machine_id, now_s: float) -> None:
        self._shadow.stop_machine(machine_id, now_s)
        self._backend.forward(
            self.position, FrameKind.STOP, {**self._identity(machine_id), "now_s": now_s}
        )

    def reboot_machine(self, machine_id, now_s: float) -> float:
        finished = self._shadow.reboot_machine(machine_id, now_s)
        self._backend.forward(
            self.position, FrameKind.REBOOT, {**self._identity(machine_id), "now_s": now_s}
        )
        return finished

    def set_cpu_quota(self, machine_id, quota_fraction: float) -> None:
        self._shadow.set_cpu_quota(machine_id, quota_fraction)
        self._backend.forward(
            self.position,
            FrameKind.SET_CPU_QUOTA,
            {**self._identity(machine_id), "quota_fraction": quota_fraction},
        )

    def set_busy_fraction(self, machine_id, fraction: float) -> None:
        self._shadow.set_busy_fraction(machine_id, fraction)
        self._backend.forward(
            self.position,
            FrameKind.SET_BUSY,
            {**self._identity(machine_id), "fraction": fraction},
        )

    def sample_usage(
        self, now_s: float, setup_phase: bool = False, applying_update: bool = False
    ) -> UsageSample:
        return self._backend.sample_one(
            self.position, now_s, setup_phase=setup_phase, applying_update=applying_update
        )

    def apply_state(self, state, now_s: float) -> None:
        raise NotImplementedError(
            "slice application is routed through the coordinator's fan-out "
            "backend in process mode"
        )

    apply_diff = apply_state


class ProcessFanoutBackend(FanoutBackend):
    """Supervised worker processes behind the coordinator's fan-out seam.

    ``transport`` selects how frames reach the workers: ``"pipe"`` (local
    duplex pipes, the default), ``"tcp"`` (length-prefixed frames over
    per-worker TCP connections), or a ready
    :class:`~repro.dist.transport.TransportFactory` instance — e.g. an
    external-mode :class:`~repro.dist.transport.TcpTransportFactory` whose
    workers are started by hand on other machines.
    """

    parallelism = "processes"

    def __init__(
        self,
        managers: list[MachineManager],
        database,
        worker_count: Optional[int] = None,
        mp_context=None,
        max_restarts: int = 3,
        ack_timeout_s: float = 120.0,
        restart_decay_acks: int = 64,
        transport="pipe",
    ):
        self._shadows = list(managers)
        self._database = database
        if worker_count is None:
            worker_count = len(self._shadows)
        worker_count = max(1, min(worker_count, len(self._shadows)))
        self.worker_count = worker_count
        # Hosts are partitioned round-robin over the workers; the worker
        # manager RNG streams start from the shadows' states *now*, before
        # any draw, so they replay exactly what a single-process run draws.
        self._worker_of = [
            position % worker_count for position in range(len(self._shadows))
        ]
        specs = [
            WorkerSpec(
                worker_index=index,
                hosts=tuple(
                    HostSpec(
                        position=position,
                        host_index=shadow.host.index,
                        cpu_cores=shadow.host.cpu_cores,
                        memory_mib=shadow.host.memory_mib,
                        allow_memory_overcommit=shadow.host.allow_memory_overcommit,
                        rng_state=shadow._rng.bit_generator.state,
                    )
                    for position, shadow in enumerate(self._shadows)
                    if position % worker_count == index
                ),
            )
            for index in range(worker_count)
        ]
        self.supervisor = WorkerSupervisor(
            specs,
            database=database,
            dirty_resolver=self._dirty_names,
            mp_context=mp_context,
            max_restarts=max_restarts,
            ack_timeout_s=ack_timeout_s,
            restart_decay_acks=restart_decay_acks,
            transport=transport,
        )
        self._proxies = [
            MirroredManager(shadow, self, position)
            for position, shadow in enumerate(self._shadows)
        ]
        self._closed = False

    # -- plumbing -----------------------------------------------------------

    @property
    def managers(self) -> list[MirroredManager]:
        return self._proxies

    @property
    def shadows(self) -> list[MachineManager]:
        """The in-process shadow managers (placement and bookkeeping)."""
        return self._shadows

    def _dirty_names(self, position: int) -> set[str]:
        return set(self._shadows[position]._dirty)

    def forward(self, position: int, kind: FrameKind, meta: dict) -> None:
        """Forward one durable control frame to the owning worker."""
        self.supervisor.post(
            self._worker_of[position], kind, {**meta, "position": position}
        )

    def _verify_counters(self, acks_by_worker: dict[int, dict]) -> None:
        """Check the workers' counter checkpoints against the shadows."""
        for ack in acks_by_worker.values():
            for position, snapshot in ack["counters"].items():
                shadow = self._shadows[position]
                observed = (
                    snapshot["suspension_count"],
                    snapshot["resume_count"],
                    snapshot["applied_diffs"],
                )
                expected = (
                    shadow.suspension_count,
                    shadow.resume_count,
                    shadow.applied_diffs,
                )
                if observed != expected:
                    raise WorkerDesyncError(
                        f"host {shadow.host.index}: worker counters "
                        f"(suspensions, resumes, diffs) = {observed} diverged "
                        f"from the shadow's {expected}"
                    )

    # -- FanoutBackend ------------------------------------------------------

    def apply_slices(self, slices: list[HostStateSlice], now_s: float) -> None:
        supervisor = self.supervisor
        supervisor.start()
        supervisor.check()  # heartbeat sweep: restart idle-crashed workers
        for position, state_slice in enumerate(slices):
            meta, arrays = wire.slice_payload(state_slice)
            supervisor.begin_request(
                self._worker_of[position],
                FrameKind.APPLY_SLICE,
                {**meta, "now_s": now_s, "position": position},
                arrays,
            )
        # The cheap O(transitions) bookkeeping runs on the shadows while the
        # workers chew on their sweeps in parallel.
        for shadow, state_slice in zip(self._shadows, slices):
            shadow.apply_diff(state_slice, now_s)
        last_acks: dict[int, dict] = {}
        reconciled: dict[int, dict] = {}
        for position in range(len(slices)):
            ack = supervisor.finish_request(self._worker_of[position])
            last_acks[self._worker_of[position]] = ack
            reconciled.update(ack.get("reconciled", {}))
        self._verify_counters(last_acks)
        for position, outcomes in reconciled.items():
            shadow = self._shadows[position]
            for name, state_value in outcomes.items():
                if shadow.host.machines[name].state.value != state_value:
                    raise WorkerDesyncError(
                        f"dirty machine {name!r} reconciled to {state_value!r} "
                        f"on the worker but "
                        f"{shadow.host.machines[name].state.value!r} on the shadow"
                    )

    def apply_full_state(self, state: ConstellationState, now_s: float) -> None:
        supervisor = self.supervisor
        supervisor.start()
        supervisor.check()
        meta, arrays = wire.activity_payload(
            state.active_satellites, state.time_s, self._epoch_hint(state)
        )
        for worker in range(self.worker_count):
            supervisor.begin_request(
                worker, FrameKind.APPLY_ACTIVITY, {**meta, "now_s": now_s}, arrays
            )
        for shadow in self._shadows:
            shadow.apply_state(state, now_s)
        acks = {
            worker: supervisor.finish_request(worker)
            for worker in range(self.worker_count)
        }
        self._verify_counters(acks)

    def _epoch_hint(self, state: ConstellationState) -> int:
        return self._database.epoch if self._database is not None else 0

    def sample_all(
        self, now_s: float, setup_phase: bool = False, applying_update: bool = False
    ) -> list[UsageSample]:
        supervisor = self.supervisor
        supervisor.start()
        meta = {
            "now_s": now_s,
            "setup_phase": setup_phase,
            "applying_update": applying_update,
            "positions": None,
        }
        for worker in range(self.worker_count):
            supervisor.begin_request(worker, FrameKind.SAMPLE_USAGE, meta)
        # While the workers sweep, the shadows consume the same RNG draws
        # (without sampling) so later machine creations seed identically on
        # both sides of the pipe — see MachineManager.advance_sample_stream.
        for shadow in self._shadows:
            shadow.advance_sample_stream(
                setup_phase=setup_phase, applying_update=applying_update
            )
        samples: dict[int, UsageSample] = {}
        for worker in range(self.worker_count):
            ack = supervisor.finish_request(worker)
            for position, fields in ack["samples"].items():
                samples[position] = UsageSample(**fields)
        ordered = [samples[position] for position in sorted(samples)]
        for position in sorted(samples):
            self._shadows[position].host.trace.record(samples[position])
        return ordered

    def sample_one(
        self,
        position: int,
        now_s: float,
        setup_phase: bool = False,
        applying_update: bool = False,
    ) -> UsageSample:
        """Sample a single host (used by :meth:`MirroredManager.sample_usage`)."""
        ack = self.supervisor.request(
            self._worker_of[position],
            FrameKind.SAMPLE_USAGE,
            {
                "now_s": now_s,
                "setup_phase": setup_phase,
                "applying_update": applying_update,
                "positions": [position],
            },
        )
        self._shadows[position].advance_sample_stream(
            setup_phase=setup_phase, applying_update=applying_update
        )
        sample = UsageSample(**ack["samples"][position])
        self._shadows[position].host.trace.record(sample)
        return sample

    # -- observability / fault injection -------------------------------------

    def worker_counters(self) -> dict[int, dict]:
        """Latest acknowledged per-position counters, straight from the workers."""
        counters: dict[int, dict] = {}
        for worker in range(self.worker_count):
            checkpoint = self.supervisor.checkpoint(worker)
            if checkpoint is not None:
                counters.update(checkpoint["counters"])
        return counters

    def drain_transport_latencies(self) -> dict[int, list[float]]:
        """Per-worker ack round-trip seconds, drained from the supervisor."""
        return self.supervisor.drain_ack_latencies()

    def crash_worker(self, worker: int) -> None:
        """Test hook: hard-kill one worker process."""
        self.supervisor.crash_worker(worker)

    @property
    def restart_count(self) -> int:
        """Number of worker restarts performed by the supervisor."""
        return self.supervisor.restart_count

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.supervisor.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass
