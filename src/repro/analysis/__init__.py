"""Measurement analysis: latency series, experiment repetition, cost model, reports."""

from repro.analysis.metrics import LatencySample, LatencySeries
from repro.analysis.experiments import RepetitionResult, median_repetition, run_repetitions
from repro.analysis.cost import (
    GCPPriceTable,
    celestial_experiment_cost,
    cost_comparison,
    per_satellite_vm_cost,
)
from repro.analysis.report import render_table
from repro.analysis.bundle import write_experiment_bundle
from repro.analysis.handover import HandoverAnalysis, HandoverEvent, analyze_handovers
from repro.analysis.traces import (
    experiment_summary_to_json,
    latency_series_from_csv,
    latency_series_to_csv,
    resource_trace_to_csv,
)

__all__ = [
    "GCPPriceTable",
    "HandoverAnalysis",
    "HandoverEvent",
    "LatencySample",
    "LatencySeries",
    "RepetitionResult",
    "analyze_handovers",
    "celestial_experiment_cost",
    "cost_comparison",
    "experiment_summary_to_json",
    "latency_series_from_csv",
    "latency_series_to_csv",
    "median_repetition",
    "per_satellite_vm_cost",
    "render_table",
    "resource_trace_to_csv",
    "run_repetitions",
    "write_experiment_bundle",
]
