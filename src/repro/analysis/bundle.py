"""Structured result bundles for declarative experiment runs.

One :class:`~repro.experiments.runner.ExperimentResult` becomes one output
directory: a ``result.json`` summary (spec, headline metrics, network
counters, per-series statistics) plus the CSV traces the spec's
``metrics.outputs`` requested — the §3.1 pattern of shipping measurements to
a central location for later analysis, applied to the runner.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path

from repro.analysis.traces import latency_series_to_csv, resource_trace_to_csv


def _json_value(value):
    """A JSON-safe rendering of one metrics/summary value."""
    if isinstance(value, float):
        return None if math.isnan(value) else value
    if isinstance(value, (int, str, bool)) or value is None:
        return value
    return str(value)


def write_experiment_bundle(result, output_dir: str | Path) -> list[Path]:
    """Write one experiment's result bundle; returns the files written.

    ``result.json`` is always emitted; ``latency-csv``, ``resource-traces``
    and ``fault-events`` are emitted when the spec's ``metrics.outputs``
    request them (``summary`` only affects what the CLI prints).
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    outputs = result.spec.metrics.outputs
    written: list[Path] = []

    summary = {
        "spec": result.spec.to_dict(),
        "title": result.title,
        "metrics": [[label, _json_value(value)] for label, value in result.metrics],
        "network": result.network_statistics,
        "path_engine": result.path_statistics,
        "series": {
            name: {
                "samples": len(series),
                "mean_ms": _json_value(series.mean()),
                "median_ms": _json_value(series.median()),
            }
            for name, series in result.series.items()
        },
        "fault_events": len(result.fault_events),
    }
    if getattr(result, "serve_statistics", None):
        summary["serve"] = result.serve_statistics
    result_path = output_dir / "result.json"
    result_path.write_text(json.dumps(summary, indent=2) + "\n")
    written.append(result_path)

    if "latency-csv" in outputs:
        for name, series in result.series.items():
            written.append(
                latency_series_to_csv(series, output_dir / f"latency_{name}.csv")
            )
    if "resource-traces" in outputs:
        for host_index, trace in result.resource_traces.items():
            written.append(
                resource_trace_to_csv(
                    trace, output_dir / f"resources_host{host_index}.csv"
                )
            )
    if "fault-events" in outputs:
        events_path = output_dir / "fault_events.json"
        events_path.write_text(
            json.dumps(
                [dataclasses.asdict(event) for event in result.fault_events],
                indent=2,
            )
            + "\n"
        )
        written.append(events_path)
    return written
