"""Plain-text table rendering for benchmark output.

The benchmark harness prints the rows and series the paper reports; this
module provides a dependency-free fixed-width table renderer for that output.
"""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render a fixed-width text table with optional title."""
    formatted_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in formatted_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
