"""Export measurement results to CSV and JSON.

Celestial experiments typically store their measurements in a central
location for later analysis (§3.1 notes emulated servers can reach the
Internet through the host for exactly this purpose).  These helpers write
latency series and host resource traces to plain CSV/JSON files so the
paper's figures can be re-plotted with any external tool.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping

from repro.analysis.metrics import LatencySeries
from repro.hosts.resources import ResourceTrace


def latency_series_to_csv(series: LatencySeries, path: str | Path) -> Path:
    """Write a latency series to CSV (time_s, latency_ms, source, destination)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s", "latency_ms", "source", "destination"])
        for sample in series.samples:
            writer.writerow([sample.time_s, sample.latency_ms, sample.source, sample.destination])
    return path


def latency_series_from_csv(path: str | Path, name: str = "") -> LatencySeries:
    """Read a latency series previously written by :func:`latency_series_to_csv`."""
    series = LatencySeries(name or Path(path).stem)
    with Path(path).open(newline="") as handle:
        for row in csv.DictReader(handle):
            series.add(
                float(row["time_s"]),
                float(row["latency_ms"]),
                row.get("source", ""),
                row.get("destination", ""),
            )
    return series


def resource_trace_to_csv(trace: ResourceTrace, path: str | Path) -> Path:
    """Write a host resource trace to CSV (one row per sample)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "time_s",
                "machine_manager_cpu_percent",
                "microvm_cpu_percent",
                "machine_manager_memory_percent",
                "microvm_memory_percent",
                "firecracker_processes",
            ]
        )
        for sample in trace.samples:
            writer.writerow(
                [
                    sample.time_s,
                    sample.machine_manager_cpu_percent,
                    sample.microvm_cpu_percent,
                    sample.machine_manager_memory_percent,
                    sample.microvm_memory_percent,
                    sample.firecracker_processes,
                ]
            )
    return path


def experiment_summary_to_json(
    series_by_name: Mapping[str, LatencySeries], path: str | Path, metadata: dict | None = None
) -> Path:
    """Write summary statistics of several latency series to a JSON file."""
    path = Path(path)
    summary = {
        "metadata": metadata or {},
        "series": {
            name: {
                "samples": len(series),
                "mean_ms": series.mean(),
                "median_ms": series.median(),
                "p80_ms": series.percentile(80) if len(series) else None,
                "p99_ms": series.percentile(99) if len(series) else None,
            }
            for name, series in series_by_name.items()
        },
    }
    path.write_text(json.dumps(summary, indent=2))
    return path
