"""Ground-station uplink handover analysis.

Ground equipment frequently needs to reconnect to new satellites as the
constellation moves (§1, §2.3); applications and platforms must plan for
these handovers.  This module quantifies them: given a constellation
calculation and a ground station, it tracks which satellite is the nearest
usable uplink over time and reports how often it changes and how long each
uplink lasts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.constellation import ConstellationCalculation


@dataclass(frozen=True)
class HandoverEvent:
    """One uplink change of a ground station."""

    time_s: float
    previous: tuple[int, int] | None
    current: tuple[int, int] | None


@dataclass
class HandoverAnalysis:
    """Uplink handover statistics of one ground station over an interval."""

    ground_station: str
    interval_s: float
    duration_s: float
    events: list[HandoverEvent]
    coverage_fraction: float

    @property
    def handover_count(self) -> int:
        """Number of uplink changes (excluding the initial acquisition)."""
        return max(0, len(self.events) - 1)

    @property
    def handover_rate_per_minute(self) -> float:
        """Handovers per minute of simulated time."""
        if self.duration_s <= 0:
            return 0.0
        return self.handover_count / self.duration_s * 60.0

    def mean_uplink_duration_s(self) -> float:
        """Mean time the ground station keeps one uplink satellite."""
        if self.handover_count == 0:
            return self.duration_s
        times = [event.time_s for event in self.events]
        durations = np.diff(times + [self.duration_s])
        return float(np.mean(durations)) if durations.size else self.duration_s


def analyze_handovers(
    calculation: ConstellationCalculation,
    ground_station: str,
    duration_s: float,
    interval_s: float = 10.0,
) -> HandoverAnalysis:
    """Track the nearest usable uplink of a ground station over time."""
    if duration_s <= 0 or interval_s <= 0:
        raise ValueError("duration and interval must be positive")
    events: list[HandoverEvent] = []
    current: tuple[int, int] | None = None
    covered_samples = 0
    sample_times = np.arange(0.0, duration_s + 1e-9, interval_s)
    for time_s in sample_times:
        state = calculation.state_at(float(time_s))
        uplinks = state.uplinks_of(ground_station)
        nearest = (uplinks[0].shell, uplinks[0].satellite) if uplinks else None
        if nearest is not None:
            covered_samples += 1
        if nearest != current:
            events.append(HandoverEvent(float(time_s), current, nearest))
            current = nearest
    return HandoverAnalysis(
        ground_station=ground_station,
        interval_s=interval_s,
        duration_s=duration_s,
        events=events,
        coverage_fraction=covered_samples / len(sample_times),
    )
