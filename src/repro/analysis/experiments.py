"""Experiment repetition helpers.

The paper repeats each experiment three times to validate reproducibility
(§4.1, Fig. 6) and reports the median run for the case study (§5.1).  These
helpers run a seeded experiment factory multiple times and select runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence


@dataclass
class RepetitionResult:
    """Results of one repetition of an experiment."""

    repetition: int
    seed: int
    result: Any


def run_repetitions(
    factory: Callable[[int], Any],
    repetitions: int = 3,
    seeds: Optional[Sequence[int]] = None,
) -> list[RepetitionResult]:
    """Run ``factory(seed)`` once per repetition and collect the results.

    With ``seeds`` omitted, repetition ``i`` uses seed ``i`` — calling this
    twice therefore produces identical outcomes, which is what makes the
    reproducibility comparison meaningful.
    """
    if repetitions <= 0:
        raise ValueError("at least one repetition is required")
    if seeds is not None and len(seeds) != repetitions:
        raise ValueError("number of seeds must match the number of repetitions")
    chosen_seeds = list(seeds) if seeds is not None else list(range(repetitions))
    return [
        RepetitionResult(repetition=index, seed=seed, result=factory(seed))
        for index, seed in enumerate(chosen_seeds)
    ]


def median_repetition(
    results: Sequence[RepetitionResult], key: Callable[[Any], float]
) -> RepetitionResult:
    """The repetition whose ``key(result)`` is the median across repetitions.

    The paper presents results "for the median runs" in §5.1.
    """
    if not results:
        raise ValueError("no repetition results given")
    ordered = sorted(results, key=lambda repetition: key(repetition.result))
    return ordered[len(ordered) // 2]
