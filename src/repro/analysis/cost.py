"""Cloud cost model for testbed experiments (paper §4.2 "Efficiency").

The paper reports that the three-host §4 experiment (plus coordinator) costs
$3.30 on Google Cloud Platform for a 15-minute slot, compared to at least
$539.66 when creating one f1-micro instance per satellite server (4,409
instances).  Absolute cloud prices change over time; the price table below
carries documented on-demand list prices so the *comparison* (Celestial is
orders of magnitude cheaper than one-VM-per-satellite) can be regenerated and
checked against the paper's numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GCPPriceTable:
    """On-demand hourly prices [USD/h] for the machine types the paper uses.

    Values approximate europe-west3 (Frankfurt) list prices around the
    paper's publication (March 2022); adjust as needed for other regions.
    """

    prices_per_hour: dict = field(
        default_factory=lambda: {
            "n2-highcpu-32": 1.53,
            "c2-standard-16": 1.11,
            "f1-micro": 0.0098,
            "e2-micro": 0.0105,
        }
    )
    #: Minimum billed duration per instance [minutes] (GCP bills per second
    #: with a one-minute minimum; other providers may round up further).
    minimum_billed_minutes: float = 1.0

    def hourly(self, machine_type: str) -> float:
        """Hourly price of one machine type."""
        if machine_type not in self.prices_per_hour:
            raise KeyError(f"unknown machine type: {machine_type!r}")
        return self.prices_per_hour[machine_type]

    def cost(self, machine_type: str, count: int, minutes: float) -> float:
        """Cost of running ``count`` instances for ``minutes``."""
        if count < 0 or minutes < 0:
            raise ValueError("count and minutes must be non-negative")
        billed_minutes = max(minutes, self.minimum_billed_minutes)
        return self.hourly(machine_type) * count * billed_minutes / 60.0


def celestial_experiment_cost(
    price_table: GCPPriceTable | None = None,
    host_count: int = 3,
    host_type: str = "n2-highcpu-32",
    coordinator_type: str = "c2-standard-16",
    minutes: float = 15.0,
) -> float:
    """Cost of a Celestial experiment: hosts plus one coordinator."""
    table = price_table or GCPPriceTable()
    return table.cost(host_type, host_count, minutes) + table.cost(coordinator_type, 1, minutes)


def per_satellite_vm_cost(
    price_table: GCPPriceTable | None = None,
    satellite_count: int = 4409,
    instance_type: str = "f1-micro",
    minutes: float = 15.0,
) -> float:
    """Cost of the naive alternative: one cloud VM per satellite server."""
    table = price_table or GCPPriceTable()
    return table.cost(instance_type, satellite_count, minutes)


def cost_comparison(minutes: float = 15.0, satellite_count: int = 4409) -> dict:
    """The §4.2 cost comparison as a dictionary of figures."""
    celestial = celestial_experiment_cost(minutes=minutes)
    naive = per_satellite_vm_cost(minutes=minutes, satellite_count=satellite_count)
    return {
        "minutes": minutes,
        "celestial_usd": round(celestial, 2),
        "per_satellite_vm_usd": round(naive, 2),
        "savings_factor": round(naive / celestial, 1),
        "paper_celestial_usd": 3.30,
        "paper_per_satellite_vm_usd": 539.66,
    }
