"""Latency measurement series and the statistics used in the paper's figures.

The paper reports cumulative distributions (Fig. 4), 1-second rolling medians
(Figs. 5-6) and per-location means (Fig. 11); this module implements those
aggregations over raw measurement samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np


@dataclass(frozen=True)
class LatencySample:
    """One end-to-end latency measurement."""

    time_s: float
    latency_ms: float
    source: str = ""
    destination: str = ""


class LatencySeries:
    """A time-ordered collection of latency samples with figure-ready statistics."""

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: list[LatencySample] = []

    def add(self, time_s: float, latency_ms: float, source: str = "", destination: str = "") -> None:
        """Record one measurement."""
        if latency_ms < 0:
            raise ValueError("latency must be non-negative")
        self._samples.append(LatencySample(time_s, latency_ms, source, destination))

    def extend(self, samples: Iterable[LatencySample]) -> None:
        """Add many samples at once."""
        for sample in samples:
            self.add(sample.time_s, sample.latency_ms, sample.source, sample.destination)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[LatencySample]:
        """All recorded samples in insertion order."""
        return list(self._samples)

    def times(self) -> np.ndarray:
        """Sample timestamps [s]."""
        return np.array([sample.time_s for sample in self._samples])

    def values(self) -> np.ndarray:
        """Sample latencies [ms]."""
        return np.array([sample.latency_ms for sample in self._samples])

    # -- statistics -----------------------------------------------------------

    def mean(self) -> float:
        """Mean latency [ms], clamped to the sample extremes.

        The pairwise summation in ``np.mean`` can round a hair outside the
        ``[min, max]`` interval the true mean is bounded by — or overflow to
        ``inf`` outright for samples near the float maximum; clamping keeps
        downstream percentile/extreme invariants exact either way.
        """
        if not self._samples:
            return float("nan")
        values = self.values()
        with np.errstate(over="ignore"):
            return float(np.clip(np.mean(values), values.min(), values.max()))

    def median(self) -> float:
        """Median latency [ms], clamped to the sample extremes.

        For even sample counts ``np.median`` averages the two middle order
        statistics, which can overflow to ``inf`` near the float maximum;
        clamping keeps the invariants exact, mirroring :meth:`mean`.
        """
        if not self._samples:
            return float("nan")
        values = self.values()
        with np.errstate(over="ignore"):
            return float(np.clip(np.median(values), values.min(), values.max()))

    def std(self) -> float:
        """Standard deviation of latency [ms]."""
        return float(np.std(self.values())) if self._samples else float("nan")

    def percentile(self, q: float) -> float:
        """Latency percentile ``q`` (0..100) [ms], clamped to the sample extremes.

        The linear interpolation between order statistics can round a hair
        outside ``[min, max]`` for extreme values; clamping keeps the
        percentile/extreme invariants exact, mirroring :meth:`mean`.
        """
        if not self._samples:
            return float("nan")
        values = self.values()
        return float(np.clip(np.percentile(values, q), values.min(), values.max()))

    def fraction_below(self, threshold_ms: float) -> float:
        """Fraction of samples at or below a latency threshold (CDF value)."""
        if not self._samples:
            return float("nan")
        return float(np.mean(self.values() <= threshold_ms))

    def cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Empirical CDF: sorted latencies and cumulative fractions (Fig. 4)."""
        values = np.sort(self.values())
        fractions = np.arange(1, len(values) + 1) / len(values)
        return values, fractions

    def rolling_median(self, window_s: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
        """Rolling median over a time window (Figs. 5-6): (window centres, medians).

        Each window's median is clamped to that window's sample extremes:
        for even sample counts the midpoint interpolation of the two middle
        values can round outside ``[min, max]`` at float extremes, mirroring
        the :meth:`mean` hazard.
        """
        if not self._samples:
            return np.array([]), np.array([])
        times = self.times()
        values = self.values()
        order = np.argsort(times)
        times, values = times[order], values[order]
        edges = np.arange(times[0], times[-1] + window_s, window_s)
        centres, medians = [], []
        for start in edges:
            mask = (times >= start) & (times < start + window_s)
            if np.any(mask):
                window = values[mask]
                centres.append(start + window_s / 2.0)
                medians.append(
                    float(np.clip(np.median(window), window.min(), window.max()))
                )
        return np.array(centres), np.array(medians)

    def filtered(self, source: Optional[str] = None, destination: Optional[str] = None) -> "LatencySeries":
        """New series restricted to samples matching source/destination."""
        series = LatencySeries(self.name)
        for sample in self._samples:
            if source is not None and sample.source != source:
                continue
            if destination is not None and sample.destination != destination:
                continue
            series.add(sample.time_s, sample.latency_ms, sample.source, sample.destination)
        return series

    def merged_with(self, other: "LatencySeries") -> "LatencySeries":
        """New series containing the samples of both series."""
        series = LatencySeries(self.name or other.name)
        series.extend(self._samples)
        series.extend(other.samples)
        return series
