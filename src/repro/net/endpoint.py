"""Socket-like endpoints used by applications running on emulated machines."""

from __future__ import annotations

from typing import Any

from repro.core.constellation import MachineId
from repro.net.packet import Message
from repro.net.network import VirtualNetwork
from repro.sim import Event, Simulation


class NetworkEndpoint:
    """The network interface of one emulated machine.

    Provides a minimal UDP-datagram-style API for application processes
    running inside the discrete-event simulation: :meth:`send` transmits a
    message to another machine and :meth:`receive` returns an event that
    triggers with the next incoming message.
    """

    def __init__(self, sim: Simulation, network: VirtualNetwork, machine: MachineId):
        self.sim = sim
        self.network = network
        self.machine = machine
        self._inbox = network.register_endpoint(machine)
        self.sent_count = 0
        self.received_count = 0

    def send(self, destination: MachineId, size_bytes: int, payload: Any = None) -> Message:
        """Send a datagram; returns the message that was put on the wire."""
        message = Message(
            source=self.machine,
            destination=destination,
            size_bytes=size_bytes,
            payload=payload,
            sent_at_s=self.sim.now,
        )
        self.network.send(message)
        self.sent_count += 1
        return message

    def receive(self) -> Event:
        """Event that triggers with the next received :class:`Message`."""
        event = self._inbox.get()
        event.callbacks.append(self._count_received)
        return event

    def _count_received(self, _event: Event) -> None:
        self.received_count += 1

    def pending(self) -> int:
        """Number of messages waiting in the inbox."""
        return len(self._inbox)
