"""Virtual data plane: messages exchanged between emulated machines.

Applications deployed on the testbed communicate through socket-like
endpoints.  Each message travels over the emulated network: the end-to-end
delay and bottleneck bandwidth installed by the Machine Managers for the
machine pair apply, and traffic to or from machines that are suspended,
stopped or failed is dropped — exactly the behaviour an application would
observe against tc/netem-shaped Firecracker microVMs.
"""

from repro.net.packet import Message
from repro.net.endpoint import NetworkEndpoint
from repro.net.network import PairRule, VirtualNetwork

__all__ = ["Message", "NetworkEndpoint", "PairRule", "VirtualNetwork"]
