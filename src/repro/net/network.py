"""The virtual network connecting all emulated machines.

Celestial's Machine Managers install, per pair of machines, an end-to-end
delay and bandwidth computed by the coordinator (§3.1).  ``VirtualNetwork``
reproduces the observable result: each directed machine pair owns an
:class:`~repro.netem.EmulatedLink` whose parameters are refreshed from the
latest constellation state whenever the coordinator publishes an update.
Links are materialised lazily — only pairs that actually exchange traffic
allocate state, which keeps Starlink-scale configurations tractable while
matching what applications can observe.

Under the differential update protocol the coordinator hands the network a
:class:`~repro.core.constellation.ConstellationDiff` per epoch
(:meth:`VirtualNetwork.apply_diff`) instead of a blanket
:meth:`VirtualNetwork.mark_updated`: an epoch whose diff is empty leaves
every materialised link's cached rule valid, while any edge change bumps
the rule epoch — end-to-end delays are shortest-path values, so a single
changed edge may affect any pair, and the per-pair refresh stays lazy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.core.constellation import MachineId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.constellation import ConstellationDiff
from repro.netem import EmulatedLink, NetemRule
from repro.net.packet import Message
from repro.sim import Simulation, Store


@dataclass(frozen=True)
class PairRule:
    """Network rule for one directed machine pair, as installed by a manager."""

    delay_ms: float
    bandwidth_kbps: Optional[float]
    reachable: bool


#: Signature of the rule provider (normally the constellation database).
RuleProvider = Callable[[MachineId, MachineId], PairRule]
#: Signature of the "is this machine able to send/receive" check.
RunningCheck = Callable[[MachineId], bool]


class VirtualNetwork:
    """Delivers messages between machine endpoints through emulated links."""

    def __init__(
        self,
        sim: Simulation,
        rule_provider: RuleProvider,
        running_check: RunningCheck,
        rng: Optional[np.random.Generator] = None,
        base_jitter_ms: float = 0.0,
    ):
        self.sim = sim
        self._rule_provider = rule_provider
        self._running_check = running_check
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._base_jitter_ms = base_jitter_ms
        self._links: dict[tuple[str, str], EmulatedLink] = {}
        self._link_epoch: dict[tuple[str, str], int] = {}
        self._epoch = 0
        self._loss_overrides: dict[tuple[str, str], float] = {}
        self._bandwidth_caps: dict[tuple[str, str], float] = {}
        self._endpoints: dict[str, "Store"] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # -- control plane -------------------------------------------------------

    def mark_updated(self) -> None:
        """Invalidate cached link rules after a constellation update."""
        self._epoch += 1

    def apply_diff(self, diff: "ConstellationDiff") -> None:
        """Consume one epoch's constellation diff instead of a full re-mark.

        When nothing changed between the epochs, all cached per-pair rules
        remain valid and no invalidation happens.  Otherwise the rule epoch
        is bumped: path delays are global functions of the edge set, so any
        edge change can affect any machine pair — but rules are still only
        re-derived lazily, the next time a pair actually carries traffic.
        Suspend/resume transitions need no invalidation at all because
        machine liveness is checked per message.
        """
        if diff.topology.is_empty:
            return
        self._epoch += 1

    def set_loss_override(
        self, source: MachineId, destination: MachineId, probability: float
    ) -> None:
        """Force a loss probability on one directed pair (fault injection)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")
        self._loss_overrides[(source.name, destination.name)] = probability
        self._links.pop((source.name, destination.name), None)

    def clear_loss_override(self, source: MachineId, destination: MachineId) -> None:
        """Remove a previously-set loss override."""
        self._loss_overrides.pop((source.name, destination.name), None)
        self._links.pop((source.name, destination.name), None)

    def set_bandwidth_cap(
        self, source: MachineId, destination: MachineId, bandwidth_kbps: float
    ) -> None:
        """Cap one directed pair's bandwidth (fault injection).

        The effective bandwidth is the minimum of the cap and whatever the
        constellation rule provides, so the cap degrades a link without
        ever improving it; it survives epoch updates until cleared.
        """
        if bandwidth_kbps <= 0:
            raise ValueError("bandwidth cap must be positive")
        self._bandwidth_caps[(source.name, destination.name)] = bandwidth_kbps
        self._links.pop((source.name, destination.name), None)

    def clear_bandwidth_cap(self, source: MachineId, destination: MachineId) -> None:
        """Remove a previously-set bandwidth cap."""
        self._bandwidth_caps.pop((source.name, destination.name), None)
        self._links.pop((source.name, destination.name), None)

    def _effective_bandwidth(
        self, key: tuple[str, str], rule: PairRule
    ) -> Optional[float]:
        cap = self._bandwidth_caps.get(key)
        if cap is None:
            return rule.bandwidth_kbps
        if rule.bandwidth_kbps is None:
            return cap
        return min(cap, rule.bandwidth_kbps)

    def _link_for(self, source: MachineId, destination: MachineId) -> EmulatedLink:
        key = (source.name, destination.name)
        rule = self._rule_provider(source, destination)
        if key not in self._links:
            loss = self._loss_overrides.get(key, 0.0)
            netem_rule = NetemRule(
                delay_ms=rule.delay_ms if rule.reachable else 0.0,
                jitter_ms=self._base_jitter_ms,
                distribution="normal" if self._base_jitter_ms > 0 else "none",
                loss_probability=loss,
            )
            link = EmulatedLink(
                netem_rule,
                bandwidth_kbps=self._effective_bandwidth(key, rule),
                rng=self._rng,
            )
            if not rule.reachable:
                link.block()
            self._links[key] = link
            self._link_epoch[key] = self._epoch
            return link
        link = self._links[key]
        if self._link_epoch[key] != self._epoch:
            if rule.reachable:
                link.update(rule.delay_ms, self._effective_bandwidth(key, rule))
            else:
                link.block()
            self._link_epoch[key] = self._epoch
        return link

    # -- endpoints -------------------------------------------------------------

    def register_endpoint(self, machine: MachineId) -> Store:
        """Create (or return) the inbox store for a machine."""
        if machine.name not in self._endpoints:
            self._endpoints[machine.name] = Store(self.sim)
        return self._endpoints[machine.name]

    def inbox(self, machine: MachineId) -> Store:
        """Inbox store of a machine (must have been registered)."""
        if machine.name not in self._endpoints:
            raise KeyError(f"machine {machine.name!r} has no registered endpoint")
        return self._endpoints[machine.name]

    # -- data plane ---------------------------------------------------------------

    def send(self, message: Message) -> bool:
        """Send a message; returns True if at least one copy was put in flight.

        Delivery happens asynchronously: the message appears in the
        destination inbox after the emulated network delay.  Messages from or
        to machines that are not running are dropped, as are messages to
        machines without a registered endpoint.
        """
        self.messages_sent += 1
        source, destination = message.source, message.destination
        if not self._running_check(source) or not self._running_check(destination):
            self.messages_dropped += 1
            return False
        if destination.name not in self._endpoints:
            self.messages_dropped += 1
            return False
        link = self._link_for(source, destination)
        deliveries = link.transmit(message.size_bytes, self.sim.now)
        if not deliveries:
            self.messages_dropped += 1
            return False
        for delivery in deliveries:
            self._schedule_delivery(message, delivery)
        return True

    def _schedule_delivery(self, message: Message, delivery) -> None:
        inbox = self._endpoints[message.destination.name]
        delay = max(0.0, delivery.arrival_time_s - self.sim.now)

        def deliver():
            yield self.sim.timeout(delay)
            if not self._running_check(message.destination):
                self.messages_dropped += 1
                return
            delivered = Message(
                source=message.source,
                destination=message.destination,
                size_bytes=message.size_bytes,
                payload=message.payload,
                sent_at_s=message.sent_at_s,
                message_id=message.message_id,
                corrupted=delivery.corrupted,
                duplicate=delivery.duplicate,
            )
            inbox.put(delivered)
            self.messages_delivered += 1

        self.sim.process(deliver())
