"""Messages exchanged between emulated machines."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.core.constellation import MachineId

_sequence = itertools.count()


@dataclass(frozen=True)
class Message:
    """One application-level message (datagram) on the virtual network."""

    source: MachineId
    destination: MachineId
    size_bytes: int
    payload: Any = None
    sent_at_s: float = 0.0
    message_id: int = field(default_factory=lambda: next(_sequence))
    corrupted: bool = False
    duplicate: bool = False

    def __post_init__(self):
        if self.size_bytes <= 0:
            raise ValueError("message size must be positive")

    def latency_ms(self, received_at_s: float) -> float:
        """End-to-end latency [ms] given the receive timestamp."""
        return (received_at_s - self.sent_at_s) * 1000.0
