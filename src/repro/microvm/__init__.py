"""Firecracker-style microVM substrate.

Celestial emulates every satellite and ground-station server with a
Firecracker microVM: sub-second boot, suspend/resume, configurable kernels
and root filesystems, cgroup-based CPU isolation and memory reserved through
a virtio device regardless of suspension state (§3.2, §4.2).  This package
models the lifecycle and resource behaviour of those microVMs so that host
resource traces (Figs. 7-8) and bounding-box suspension effects can be
reproduced without a hypervisor.
"""

from repro.microvm.kernel import KernelImage
from repro.microvm.rootfs import OverlayStore, RootFilesystemImage
from repro.microvm.cgroups import CPUQuota
from repro.microvm.machine import (
    MachineResources,
    MachineState,
    MicroVM,
    MicroVMError,
)

__all__ = [
    "CPUQuota",
    "KernelImage",
    "MachineResources",
    "MachineState",
    "MicroVM",
    "MicroVMError",
    "OverlayStore",
    "RootFilesystemImage",
]
