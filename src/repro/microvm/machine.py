"""The microVM machine model: resources, lifecycle and resource footprint.

A Firecracker microVM boots in well under a second, can be suspended and
resumed, and keeps its virtio memory device allocated on the host even while
suspended (§3.2, §4.2 "Efficiency").  Celestial additionally reboots or
terminates machines through its fault-injection API to model radiation-induced
failures (§3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.microvm.cgroups import CPUQuota
from repro.microvm.kernel import KernelImage
from repro.microvm.rootfs import RootFilesystemImage


class MicroVMError(RuntimeError):
    """Raised for illegal microVM state transitions."""


class MachineState(enum.Enum):
    """Lifecycle states of an emulated microVM."""

    CREATED = "created"
    BOOTING = "booting"
    RUNNING = "running"
    SUSPENDED = "suspended"
    STOPPED = "stopped"
    FAILED = "failed"


@dataclass(frozen=True)
class MachineResources:
    """Resources allocated to a microVM."""

    vcpu_count: int
    memory_mib: int
    disk_mib: int = 512

    def __post_init__(self):
        if self.vcpu_count <= 0:
            raise ValueError("vcpu count must be positive")
        if self.memory_mib <= 0:
            raise ValueError("memory must be positive")
        if self.disk_mib <= 0:
            raise ValueError("disk must be positive")


@dataclass
class _Transition:
    time_s: float
    state: MachineState


#: Firecracker boot time: ~125 ms plus configuration overhead (sub-second).
DEFAULT_BOOT_TIME_S = 0.35
BOOT_TIME_JITTER_S = 0.15


class MicroVM:
    """One emulated machine (satellite server or ground-station server)."""

    def __init__(
        self,
        name: str,
        resources: MachineResources,
        kernel: Optional[KernelImage] = None,
        rootfs: Optional[RootFilesystemImage] = None,
        rng: Optional[np.random.Generator] = None,
        active_cpu_fraction: float = 0.05,
    ):
        self.name = name
        self.resources = resources
        self.kernel = kernel if kernel is not None else KernelImage()
        self.rootfs = rootfs if rootfs is not None else RootFilesystemImage()
        self.cpu_quota = CPUQuota(vcpu_count=resources.vcpu_count)
        self.state = MachineState.CREATED
        self.active_cpu_fraction = active_cpu_fraction
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.transitions: list[_Transition] = [_Transition(0.0, MachineState.CREATED)]
        self.boot_count = 0
        self._boot_finished_at_s: Optional[float] = None

    # -- state machine ----------------------------------------------------

    def _set_state(self, state: MachineState, now_s: float) -> None:
        self.state = state
        self.transitions.append(_Transition(now_s, state))

    def sample_boot_time_s(self) -> float:
        """Sub-second boot duration for this machine."""
        return DEFAULT_BOOT_TIME_S + float(self._rng.random()) * BOOT_TIME_JITTER_S

    def boot(self, now_s: float) -> float:
        """Start booting; returns the time at which the machine is running."""
        if self.state not in (MachineState.CREATED, MachineState.STOPPED, MachineState.FAILED):
            raise MicroVMError(f"cannot boot machine in state {self.state.value}")
        self._set_state(MachineState.BOOTING, now_s)
        boot_time = self.sample_boot_time_s()
        self._boot_finished_at_s = now_s + boot_time
        self._set_state(MachineState.RUNNING, self._boot_finished_at_s)
        self.boot_count += 1
        return self._boot_finished_at_s

    def suspend(self, now_s: float) -> None:
        """Suspend the machine (bounding-box exit); memory stays allocated."""
        if self.state is not MachineState.RUNNING:
            raise MicroVMError(f"cannot suspend machine in state {self.state.value}")
        self._set_state(MachineState.SUSPENDED, now_s)

    def resume(self, now_s: float) -> None:
        """Resume a suspended machine (bounding-box re-entry)."""
        if self.state is not MachineState.SUSPENDED:
            raise MicroVMError(f"cannot resume machine in state {self.state.value}")
        self._set_state(MachineState.RUNNING, now_s)

    def stop(self, now_s: float) -> None:
        """Shut the machine down (fault injection: full shutdown)."""
        if self.state in (MachineState.STOPPED, MachineState.CREATED):
            raise MicroVMError(f"cannot stop machine in state {self.state.value}")
        self._set_state(MachineState.STOPPED, now_s)

    def fail(self, now_s: float) -> None:
        """Mark the machine as failed (e.g. radiation-induced single event upset)."""
        self._set_state(MachineState.FAILED, now_s)

    def reboot(self, now_s: float) -> float:
        """Stop and boot again; returns the time the machine is running again."""
        if self.state not in (MachineState.STOPPED, MachineState.FAILED):
            self._set_state(MachineState.STOPPED, now_s)
        return self.boot(now_s)

    # -- properties & resource footprint -----------------------------------

    @property
    def is_running(self) -> bool:
        """Whether the machine is currently running (not suspended/stopped)."""
        return self.state is MachineState.RUNNING

    @property
    def is_booted(self) -> bool:
        """Whether the machine has been booted at least once and not stopped."""
        return self.state in (MachineState.RUNNING, MachineState.SUSPENDED)

    def memory_footprint_mib(self) -> float:
        """Host memory blocked by this machine.

        The virtio memory device keeps the full allocation reserved as soon
        as the machine has booted, even while suspended (§4.2).
        """
        if self.state in (MachineState.BOOTING, MachineState.RUNNING, MachineState.SUSPENDED):
            return float(self.resources.memory_mib)
        return 0.0

    def cpu_cores_in_use(self, busy_fraction: Optional[float] = None) -> float:
        """Host cores currently consumed by this machine.

        ``busy_fraction`` expresses how busy the workload keeps its allocated
        vCPUs (1.0 = all allocated vCPUs fully busy); when omitted the
        machine's idle/active baseline is used.
        """
        if self.state is MachineState.BOOTING:
            return float(self.resources.vcpu_count)
        if self.state is not MachineState.RUNNING:
            return 0.0
        fraction = self.active_cpu_fraction if busy_fraction is None else busy_fraction
        fraction = min(max(fraction, 0.0), 1.0)
        return self.resources.vcpu_count * fraction * self.cpu_quota.quota_fraction

    def state_at(self, time_s: float) -> MachineState:
        """Machine state at an arbitrary past time (from the transition log)."""
        state = MachineState.CREATED
        for transition in self.transitions:
            if transition.time_s <= time_s:
                state = transition.state
            else:
                break
        return state
