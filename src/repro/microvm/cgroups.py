"""cgroup-style CPU quotas for microVMs.

Celestial isolates microVMs in dedicated cgroups to control the CPU cycles a
server process may use, making the emulation of severely constrained
satellite servers possible; quotas can be changed at runtime through the
API (§3.1).  The observable effect for applications is that compute-bound
work takes proportionally longer under a smaller quota, which is what
:meth:`CPUQuota.scaled_duration` models.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CPUQuota:
    """CPU allocation of one microVM in fractions of host cores."""

    vcpu_count: int
    quota_fraction: float = 1.0

    def __post_init__(self):
        if self.vcpu_count <= 0:
            raise ValueError("vcpu count must be positive")
        self._validate_fraction(self.quota_fraction)

    @staticmethod
    def _validate_fraction(fraction: float) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("quota fraction must be in (0, 1]")

    @property
    def effective_cores(self) -> float:
        """Host cores' worth of compute available to the machine."""
        return self.vcpu_count * self.quota_fraction

    def set_quota(self, quota_fraction: float) -> None:
        """Change the quota at runtime (Celestial's fault-injection API)."""
        self._validate_fraction(quota_fraction)
        self.quota_fraction = quota_fraction

    def scaled_duration(self, nominal_seconds: float, parallelism: int = 1) -> float:
        """Wall-clock duration of a compute task under this quota.

        ``nominal_seconds`` is the single-core duration on an unconstrained
        host core; ``parallelism`` is how many cores the task can use.
        """
        if nominal_seconds < 0:
            raise ValueError("duration must be non-negative")
        usable = min(max(1, parallelism), self.vcpu_count) * self.quota_fraction
        return nominal_seconds / usable
