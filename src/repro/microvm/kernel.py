"""Guest kernel images for microVMs.

Firecracker boots an uncompressed Linux kernel supplied by the user, giving
them control over kernel features (§3.2).  The kernel model only carries the
metadata relevant for the emulation: identity, size and boot arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class KernelImage:
    """An immutable guest kernel image."""

    name: str = "vmlinux-5.12"
    version: str = "5.12"
    size_mib: float = 24.0
    boot_args: tuple[str, ...] = field(
        default_factory=lambda: (
            "console=ttyS0",
            "noapic",
            "reboot=k",
            "panic=1",
            "pci=off",
        )
    )

    def __post_init__(self):
        if self.size_mib <= 0:
            raise ValueError("kernel size must be positive")

    @property
    def command_line(self) -> str:
        """Kernel command line passed to the microVM."""
        return " ".join(self.boot_args)

    def with_args(self, *extra_args: str) -> "KernelImage":
        """A copy of the kernel with additional boot arguments."""
        return KernelImage(
            name=self.name,
            version=self.version,
            size_mib=self.size_mib,
            boot_args=self.boot_args + tuple(extra_args),
        )
