"""Root filesystem images and the de-duplicating overlay store.

All satellite servers in Celestial are identical, so hosts keep a single
immutable base image and give each microVM a copy-on-write overlay, saving
storage and improving performance (§3.3).  ``OverlayStore`` tracks the
storage accounting of that scheme.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RootFilesystemImage:
    """An immutable root filesystem image shared by many microVMs."""

    name: str = "rootfs.img"
    size_mib: float = 350.0

    def __post_init__(self):
        if self.size_mib <= 0:
            raise ValueError("root filesystem size must be positive")


class OverlayStore:
    """Tracks base images and per-machine overlays on one host."""

    def __init__(self):
        self._base_images: dict[str, RootFilesystemImage] = {}
        self._overlays: dict[str, tuple[str, float]] = {}

    def register_base(self, image: RootFilesystemImage) -> None:
        """Register a base image (idempotent; stored only once)."""
        self._base_images[image.name] = image

    def create_overlay(
        self, machine_name: str, base_image: RootFilesystemImage, overlay_mib: float = 4.0
    ) -> None:
        """Create a copy-on-write overlay for a machine on top of a base image."""
        if overlay_mib < 0:
            raise ValueError("overlay size must be non-negative")
        if machine_name in self._overlays:
            raise ValueError(f"machine {machine_name!r} already has an overlay")
        self.register_base(base_image)
        self._overlays[machine_name] = (base_image.name, overlay_mib)

    def grow_overlay(self, machine_name: str, additional_mib: float) -> None:
        """Grow a machine's overlay as it writes data."""
        if machine_name not in self._overlays:
            raise KeyError(f"unknown machine: {machine_name}")
        base, size = self._overlays[machine_name]
        self._overlays[machine_name] = (base, size + max(0.0, additional_mib))

    def remove_overlay(self, machine_name: str) -> None:
        """Drop a machine's overlay (e.g. after the machine is destroyed)."""
        self._overlays.pop(machine_name, None)

    @property
    def machine_count(self) -> int:
        """Number of machines with an overlay."""
        return len(self._overlays)

    def deduplicated_storage_mib(self) -> float:
        """Total storage with base-image de-duplication (Celestial's scheme)."""
        base_total = sum(image.size_mib for image in self._base_images.values())
        overlay_total = sum(size for _, size in self._overlays.values())
        return base_total + overlay_total

    def naive_storage_mib(self) -> float:
        """Storage a naive copy-per-machine scheme would need (for comparison)."""
        total = 0.0
        for base_name, overlay_mib in self._overlays.values():
            total += self._base_images[base_name].size_mib + overlay_mib
        return total

    def savings_mib(self) -> float:
        """Storage saved by de-duplication."""
        return self.naive_storage_mib() - self.deduplicated_storage_mib()
