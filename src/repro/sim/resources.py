"""Shared resources for simulation processes: FIFO stores and counted resources."""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.sim.engine import Event, Simulation, SimulationError


class Store:
    """An unbounded (or bounded) FIFO queue usable from simulation processes.

    ``put`` is immediate unless the store is full; ``get`` returns an event
    that triggers with the next item as soon as one is available.
    """

    def __init__(self, sim: Simulation, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._items: deque = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list:
        """Snapshot of the queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> Event:
        """Queue ``item``; the returned event triggers once it is accepted."""
        event = Event(self.sim)
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.append((event, item))
        else:
            self._items.append(item)
            event.succeed(item)
            self._dispatch()
        return event

    def get(self) -> Event:
        """Request an item; the returned event triggers with the item."""
        event = Event(self.sim)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        while self._getters and self._items:
            getter = self._getters.popleft()
            item = self._items.popleft()
            getter.succeed(item)
            while self._putters and (
                self.capacity is None or len(self._items) < self.capacity
            ):
                put_event, pending = self._putters.popleft()
                self._items.append(pending)
                put_event.succeed(pending)


class Resource:
    """A counted resource with FIFO request queueing (like a semaphore)."""

    def __init__(self, sim: Simulation, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently-held units."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free units."""
        return self.capacity - self._in_use

    def request(self) -> Event:
        """Request one unit; the event triggers once the unit is granted."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one previously-granted unit."""
        if self._in_use <= 0:
            raise SimulationError("release without a matching request")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed()
        else:
            self._in_use -= 1
