"""Discrete-event simulation engine used by the Celestial testbed substrate.

The real Celestial testbed runs on wall-clock time on cloud hosts.  This
reproduction replaces wall-clock execution with a deterministic discrete-event
simulation so that experiments are repeatable and run offline.  The engine is
deliberately small (SimPy-like): generator-based processes, an event queue,
timeouts, stores and resources.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulation,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Resource, Store
from repro.sim.clock import Clock, DriftingClock, PTPClock
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Clock",
    "DriftingClock",
    "Event",
    "Interrupt",
    "PTPClock",
    "Process",
    "RandomStreams",
    "Resource",
    "Simulation",
    "SimulationError",
    "Store",
    "Timeout",
]
