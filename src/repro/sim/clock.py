"""Simulated clocks.

Celestial's evaluation schedules latency-measuring clients on the same host
with a shared PTP clock to minimise clock drift (§4.1, §5.1).  This module
models both perfectly-synchronised (PTP) clocks and clocks with constant
drift and offset, so experiments can quantify the impact of imperfect
synchronisation.
"""

from __future__ import annotations

from repro.sim.engine import Simulation


class Clock:
    """A perfect clock that reads simulation time directly."""

    def __init__(self, sim: Simulation):
        self.sim = sim

    def now(self) -> float:
        """Current clock reading in seconds."""
        return self.sim.now


class DriftingClock(Clock):
    """A clock with a constant offset and a constant drift rate.

    ``drift_ppm`` is the frequency error in parts per million: a clock with
    ``drift_ppm=50`` gains 50 microseconds per simulated second.
    """

    def __init__(self, sim: Simulation, offset: float = 0.0, drift_ppm: float = 0.0):
        super().__init__(sim)
        self.offset = offset
        self.drift_ppm = drift_ppm

    def now(self) -> float:
        return self.sim.now * (1.0 + self.drift_ppm * 1e-6) + self.offset


class PTPClock(DriftingClock):
    """A shared PTP-synchronised clock: zero offset and zero drift.

    Modelled as a perfect clock because Celestial's clients share a hardware
    clock on the same host, making residual error negligible compared to the
    measured millisecond-scale latencies.
    """

    def __init__(self, sim: Simulation):
        super().__init__(sim, offset=0.0, drift_ppm=0.0)
