"""Core discrete-event simulation engine.

The engine follows the familiar process-based simulation model: a
:class:`Simulation` owns a priority queue of scheduled events and the current
simulated time.  A :class:`Process` wraps a Python generator; every value the
generator yields must be an :class:`Event`, and the process resumes when that
event is triggered.  The engine is deterministic: events scheduled for the
same time are processed in scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for illegal simulation operations (e.g. negative delays)."""


class Interrupt(Exception):
    """Thrown into a process when it is interrupted by another process."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A condition that may be triggered once, resuming waiting processes."""

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self.triggered = False
        self.processed = False
        self.ok: Optional[bool] = None
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self.triggered:
            raise SimulationError("event has already been triggered")
        self.triggered = True
        self.ok = True
        self.value = value
        self.sim._schedule(self, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self.triggered:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self.triggered = True
        self.ok = False
        self.value = exception
        self.sim._schedule(self, 0.0)
        return self


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    def __init__(self, sim: "Simulation", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self.triggered = True
        self.ok = True
        self.value = value
        sim._schedule(self, delay)


class Process(Event):
    """An event that wraps a running generator-based process.

    The process triggers (as an event) when its generator returns; the return
    value of the generator becomes the event value.
    """

    def __init__(self, sim: "Simulation", generator: Generator):
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        #: Incremented whenever the wait target is superseded (interrupt).
        #: Every wait registration carries the epoch at registration time, so
        #: a stale resume is dropped even when it can no longer be
        #: deregistered (already queued, or already snapshotted by ``step``).
        self._wait_epoch = 0
        self._wait_callback: Optional[Callable[[Event], None]] = None
        init = Event(sim)
        init.succeed()
        init.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        """Whether the process generator has not yet finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process, raising :class:`Interrupt` inside it.

        The event the process was waiting on no longer resumes it: its
        resume callback is deregistered, and the wait epoch is bumped so
        that a resume that can no longer be deregistered (already queued as
        a proxy, or already snapshotted by a running ``step``) is dropped
        instead of resuming the generator at the wrong simulated instant.
        """
        if self.triggered:
            return
        if self._waiting_on is not None:
            try:
                self._waiting_on.callbacks.remove(self._wait_callback)
            except ValueError:
                pass
            self._waiting_on = None
            self._wait_callback = None
        self._wait_epoch += 1
        interrupt_event = Event(self.sim)
        interrupt_event.triggered = True
        interrupt_event.ok = False
        interrupt_event.value = Interrupt(cause)
        interrupt_event._delivers_interrupt = True
        interrupt_event.callbacks.append(self._resume)
        self.sim._schedule(interrupt_event, 0.0)

    def _resume_guarded(self, event: Event, epoch: int) -> None:
        # A proxy resume scheduled before an interrupt superseded the wait
        # must not resume the generator at the wrong instant.
        if epoch != self._wait_epoch:
            return
        self._resume(event)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        if getattr(event, "_delivers_interrupt", False):
            # An interrupt may be popped after the process has re-waited on a
            # different event (e.g. it was scheduled before the process first
            # ran, or a second interrupt in the same timestep): it must still
            # be delivered.  Detach from whatever the process waits on now so
            # the stale wait cannot resume it a second time, and invalidate
            # any resume that is already in flight.
            if self._waiting_on is not None:
                try:
                    self._waiting_on.callbacks.remove(self._wait_callback)
                except ValueError:
                    pass
            self._wait_epoch += 1
        elif self._waiting_on is not None and event is not self._waiting_on:
            # Superseded: the process has since been pointed at another event.
            return
        self._waiting_on = None
        self._wait_callback = None
        self.sim._active_process = self
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.sim._active_process = None
            if not self.triggered:
                self.succeed(stop.value)
            return
        except Interrupt:
            self.sim._active_process = None
            if not self.triggered:
                self.succeed(None)
            return
        self.sim._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}, which is not an Event"
            )
        epoch = self._wait_epoch
        callback = lambda event, _epoch=epoch: self._resume_guarded(event, _epoch)
        if target.processed:
            # The event already fired and its callbacks ran; resume through a
            # fresh immediate event so queue ordering stays deterministic.
            # The proxy sits in the queue and cannot be deregistered, so the
            # epoch carried by the callback is what invalidates it if an
            # interrupt supersedes the wait first.
            resume = Event(self.sim)
            resume.triggered = True
            resume.ok = target.ok
            resume.value = target.value
            resume.callbacks.append(callback)
            self.sim._schedule(resume, 0.0)
        else:
            # The epoch guard also covers the case where the wait target is
            # being processed right now: step() has already snapshotted its
            # callback list, so deregistration alone could not stop a resume
            # that an interrupt (fired from an earlier callback of the same
            # event) has superseded.
            self._waiting_on = target
            self._wait_callback = callback
            target.callbacks.append(callback)


class _Condition(Event):
    """Base for composite events over a set of child events."""

    def __init__(self, sim: "Simulation", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._child_done(event)
            else:
                event.callbacks.append(self._child_done)

    def _child_done(self, event: Event) -> None:
        raise NotImplementedError

    def _values(self) -> dict:
        return {
            index: event.value
            for index, event in enumerate(self.events)
            if event.processed
        }


class AllOf(_Condition):
    """Triggers when all child events have triggered."""

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok is False:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._values())


class AnyOf(_Condition):
    """Triggers when at least one child event has triggered."""

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok is False:
            self.fail(event.value)
            return
        self.succeed(self._values())


class Simulation:
    """Deterministic discrete-event simulation loop."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self._processed_events = 0

    # -- scheduling -------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past: {delay}")
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, 0, self._sequence, event))

    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Register a generator as a simulation process and start it."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event triggering once every given event has triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event triggering once any given event has triggered."""
        return AnyOf(self, events)

    # -- execution --------------------------------------------------------

    @property
    def processed_events(self) -> int:
        """Number of events processed so far (useful for tests/metrics)."""
        return self._processed_events

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process exactly one event from the queue."""
        if not self._queue:
            raise SimulationError("no more events to process")
        time, _, _, event = heapq.heappop(self._queue)
        if time < self.now - 1e-12:
            raise SimulationError("event scheduled in the past")
        self.now = max(self.now, time)
        self._processed_events += 1
        event.processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue is empty or simulated time reaches ``until``."""
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until {until}, already at {self.now}"
            )
        while self._queue:
            if until is not None and self.peek() > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = until
