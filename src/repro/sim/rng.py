"""Seeded, named random-number streams for reproducible experiments.

Each subsystem (netem jitter, processing delay, boot times, ...) draws from
its own named stream so that adding randomness to one component does not
perturb the sequence observed by another.  This is what makes the
reproducibility experiment (Fig. 6) meaningful: repeated runs with the same
seed produce identical traces, different seeds produce statistically similar
ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomStreams:
    """A family of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the named stream."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a new stream family, e.g. one per repetition of a run."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "little"))
