"""External factors on ground-to-satellite links: rain fade and dish overheating.

The paper lists adverse weather as a factor future testbeds should emulate
(§6.5): rain refracts radio waves and degrades Ku/Ka-band links
(Safaai-Jazi et al.), and Starlink dishes enter thermal shutdown above 122 °F.
This module provides simple, configurable models of both effects that map to
netem parameters (loss probability, bandwidth reduction, outage) so they can
be applied to ground-station uplinks via the fault-injection API.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RainFadeModel:
    """Empirical rain-fade model for Ku/Ka-band ground links.

    Attenuation grows with rain rate and carrier frequency; this model uses
    the common power-law form ``A = k * R^alpha`` (dB) with ITU-style
    coefficients and maps attenuation to a packet-loss probability and a
    usable-bandwidth fraction via the configured link margin.
    """

    frequency_ghz: float = 20.0
    k_coefficient: float = 0.075
    alpha_exponent: float = 1.1
    link_margin_db: float = 6.0

    def __post_init__(self):
        if self.frequency_ghz <= 0 or self.k_coefficient <= 0 or self.alpha_exponent <= 0:
            raise ValueError("model coefficients must be positive")
        if self.link_margin_db <= 0:
            raise ValueError("link margin must be positive")

    def attenuation_db(self, rain_rate_mm_h: float) -> float:
        """Specific attenuation [dB] at a given rain rate [mm/h]."""
        if rain_rate_mm_h < 0:
            raise ValueError("rain rate must be non-negative")
        frequency_scale = self.frequency_ghz / 20.0
        return self.k_coefficient * frequency_scale * rain_rate_mm_h**self.alpha_exponent

    def loss_probability(self, rain_rate_mm_h: float) -> float:
        """Packet-loss probability once attenuation eats into the link margin."""
        attenuation = self.attenuation_db(rain_rate_mm_h)
        if attenuation <= self.link_margin_db:
            return 0.0
        excess = attenuation - self.link_margin_db
        return float(min(1.0, 1.0 - np.exp(-excess / 3.0)))

    def bandwidth_fraction(self, rain_rate_mm_h: float) -> float:
        """Fraction of the clear-sky bandwidth still usable under rain."""
        attenuation = self.attenuation_db(rain_rate_mm_h)
        return float(max(0.0, 1.0 - attenuation / (2.0 * self.link_margin_db)))

    def is_outage(self, rain_rate_mm_h: float) -> bool:
        """Whether the link is effectively unusable (loss close to one)."""
        return self.loss_probability(rain_rate_mm_h) >= 0.95


@dataclass
class ThermalShutdownModel:
    """Starlink-dish style thermal shutdown: outage above a temperature limit.

    "Starlink dishes go into thermal shutdown once they hit 122° Fahrenheit"
    (§6.5).  The model tracks the ambient temperature of a dish and reports
    outage intervals; a cool-down hysteresis avoids rapid flapping.
    """

    shutdown_celsius: float = 50.0
    resume_celsius: float = 45.0
    _shut_down: bool = False

    def __post_init__(self):
        if self.resume_celsius >= self.shutdown_celsius:
            raise ValueError("resume temperature must be below the shutdown temperature")

    @property
    def is_shut_down(self) -> bool:
        """Whether the dish is currently in thermal shutdown."""
        return self._shut_down

    def update(self, temperature_celsius: float) -> bool:
        """Feed a temperature sample; returns True while the dish is down."""
        if self._shut_down:
            if temperature_celsius <= self.resume_celsius:
                self._shut_down = False
        elif temperature_celsius >= self.shutdown_celsius:
            self._shut_down = True
        return self._shut_down
