"""Network emulation substrate: netem-like qdiscs, token-bucket rate limiting.

The real Celestial shapes traffic between microVMs with Linux ``tc``,
``tc-netem`` (delay, jitter, loss, duplication, corruption, reordering) and
bandwidth limits (§3.1).  This package reproduces those mechanisms as pure
models: given a packet and a send time they decide when (and whether, and in
what state) the packet arrives.  The models are deliberately a superset of
what the paper's experiments use — packet loss, duplication, corruption and
reordering are the "advanced tc-netem features" the paper lists as future
extensions (§6.5) and are exercised by the fault-injection tests.
"""

from repro.netem.qdisc import DeliveredPacket, NetemQdisc, NetemRule
from repro.netem.tbf import TokenBucketFilter
from repro.netem.link import EmulatedLink, UNREACHABLE_DELAY_MS
from repro.netem.wireguard import WireGuardOverlay
from repro.netem.weather import RainFadeModel, ThermalShutdownModel

__all__ = [
    "DeliveredPacket",
    "EmulatedLink",
    "NetemQdisc",
    "NetemRule",
    "RainFadeModel",
    "ThermalShutdownModel",
    "TokenBucketFilter",
    "UNREACHABLE_DELAY_MS",
    "WireGuardOverlay",
]
