"""WireGuard host-overlay model.

Celestial connects its hosts with a WireGuard overlay network so that
microVMs on different hosts can route to each other (§3.3).  Traffic between
machines on different hosts incurs the physical inter-host latency, which the
coordinator subtracts from the emulated delay so the end-to-end value matches
the simulation (§3.1: "any latency between hosts is taken into account, yet
this only works if this latency is low enough").
"""

from __future__ import annotations


class WireGuardOverlay:
    """Pairwise latency model of the host overlay network."""

    def __init__(self, host_count: int, inter_host_latency_ms: float = 0.2):
        if host_count <= 0:
            raise ValueError("at least one host is required")
        if inter_host_latency_ms < 0:
            raise ValueError("latency must be non-negative")
        self.host_count = host_count
        self.inter_host_latency_ms = inter_host_latency_ms
        self._custom: dict[tuple[int, int], float] = {}

    def _key(self, host_a: int, host_b: int) -> tuple[int, int]:
        for host in (host_a, host_b):
            if not 0 <= host < self.host_count:
                raise IndexError(f"host {host} out of range")
        return (min(host_a, host_b), max(host_a, host_b))

    def set_latency(self, host_a: int, host_b: int, latency_ms: float) -> None:
        """Override the measured latency between a specific pair of hosts."""
        if latency_ms < 0:
            raise ValueError("latency must be non-negative")
        self._custom[self._key(host_a, host_b)] = latency_ms

    def latency_ms(self, host_a: int, host_b: int) -> float:
        """Physical latency between two hosts (0 for the same host)."""
        if host_a == host_b:
            self._key(host_a, host_b)
            return 0.0
        return self._custom.get(self._key(host_a, host_b), self.inter_host_latency_ms)

    def compensated_delay_ms(self, target_delay_ms: float, host_a: int, host_b: int) -> float:
        """Netem delay to install so the observed end-to-end delay matches.

        If the physical latency already exceeds the target, the emulated
        delay cannot be reduced below the physical value; the method then
        returns zero and callers may want to warn the user (the paper notes
        this requires hosts in the same data centre).
        """
        return max(0.0, target_delay_ms - self.latency_ms(host_a, host_b))

    def can_emulate(self, target_delay_ms: float, host_a: int, host_b: int) -> bool:
        """Whether the target delay is achievable given physical host latency."""
        return target_delay_ms >= self.latency_ms(host_a, host_b)
