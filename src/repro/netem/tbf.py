"""Token-bucket filter (tbf) bandwidth shaping model.

Celestial constrains the bandwidth of ISLs and ground links (e.g. 10 Gb/s
ISLs in §4.1, 88 kb/s Iridium sensor links in §5.1).  The token bucket model
mirrors the Linux ``tbf`` qdisc: traffic may burst up to the bucket size and
is otherwise paced at the configured rate; packets that would overflow the
bounded queue are dropped.
"""

from __future__ import annotations


class TokenBucketFilter:
    """A token-bucket shaper operating on packet sizes and timestamps."""

    def __init__(
        self,
        rate_kbps: float,
        burst_bytes: int = 32 * 1024,
        queue_limit_bytes: int = 1024 * 1024,
    ):
        if rate_kbps <= 0:
            raise ValueError("rate must be positive")
        if burst_bytes <= 0 or queue_limit_bytes <= 0:
            raise ValueError("burst and queue limit must be positive")
        self.rate_kbps = rate_kbps
        self.burst_bytes = burst_bytes
        self.queue_limit_bytes = queue_limit_bytes
        self._tokens = float(burst_bytes)
        self._last_update_s = 0.0
        self._queue_backlog_bytes = 0.0
        self._backlog_clears_at_s = 0.0

    @property
    def rate_bytes_per_s(self) -> float:
        """Shaping rate in bytes per second."""
        return self.rate_kbps * 1000.0 / 8.0

    def set_rate(self, rate_kbps: float) -> None:
        """Update the shaping rate at runtime."""
        if rate_kbps <= 0:
            raise ValueError("rate must be positive")
        self.rate_kbps = rate_kbps

    def _refill(self, now_s: float) -> None:
        elapsed = max(0.0, now_s - self._last_update_s)
        self._tokens = min(
            float(self.burst_bytes), self._tokens + elapsed * self.rate_bytes_per_s
        )
        if now_s >= self._backlog_clears_at_s:
            self._queue_backlog_bytes = 0.0
        else:
            self._queue_backlog_bytes = (
                (self._backlog_clears_at_s - now_s) * self.rate_bytes_per_s
            )
        self._last_update_s = now_s

    def enqueue(self, size_bytes: int, now_s: float) -> float | None:
        """Offer a packet to the shaper.

        Returns the departure time in seconds, or ``None`` if the packet is
        dropped because the queue limit is exceeded.
        """
        if size_bytes <= 0:
            raise ValueError("packet size must be positive")
        self._refill(now_s)
        if self._tokens >= size_bytes and self._queue_backlog_bytes == 0.0:
            self._tokens -= size_bytes
            return now_s
        if self._queue_backlog_bytes + size_bytes > self.queue_limit_bytes:
            return None
        self._queue_backlog_bytes += size_bytes
        departure = max(now_s, self._backlog_clears_at_s) + size_bytes / self.rate_bytes_per_s
        self._backlog_clears_at_s = departure
        return departure

    @property
    def backlog_bytes(self) -> float:
        """Bytes currently waiting in the shaping queue."""
        return self._queue_backlog_bytes
