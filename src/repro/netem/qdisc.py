"""A tc-netem style queueing discipline model.

Supports the emulation features listed in the paper: fixed delay with
optional jitter and delay distribution, packet loss, duplication, corruption
and reordering (§3.1, §6.5).  The model is applied per packet: the qdisc
decides the arrival time(s) and state of each transmitted packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

import numpy as np


@dataclass(frozen=True)
class NetemRule:
    """Parameters of a netem qdisc, mirroring the tc-netem knobs."""

    delay_ms: float = 0.0
    jitter_ms: float = 0.0
    distribution: Literal["none", "uniform", "normal", "pareto"] = "none"
    loss_probability: float = 0.0
    duplicate_probability: float = 0.0
    corrupt_probability: float = 0.0
    reorder_probability: float = 0.0
    rate_kbps: float | None = None

    def __post_init__(self):
        if self.delay_ms < 0 or self.jitter_ms < 0:
            raise ValueError("delay and jitter must be non-negative")
        for name in (
            "loss_probability",
            "duplicate_probability",
            "corrupt_probability",
            "reorder_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1]")
        if self.rate_kbps is not None and self.rate_kbps <= 0:
            raise ValueError("rate must be positive when given")

    def with_delay(self, delay_ms: float) -> "NetemRule":
        """Copy of the rule with a different base delay."""
        return replace(self, delay_ms=delay_ms)

    @property
    def blocks_traffic(self) -> bool:
        """Whether the rule drops all traffic (used for unreachable pairs)."""
        return self.loss_probability >= 1.0


@dataclass(frozen=True)
class DeliveredPacket:
    """Outcome of pushing one packet through a qdisc."""

    arrival_time_s: float
    corrupted: bool = False
    duplicate: bool = False
    reordered: bool = False


class NetemQdisc:
    """Applies a :class:`NetemRule` to individual packets.

    The qdisc is stateless except for the serialization horizon used by the
    optional rate limit, which mirrors netem's internal packet pacing.
    """

    def __init__(self, rule: NetemRule, rng: np.random.Generator | None = None):
        self.rule = rule
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._busy_until_s = 0.0

    def update_rule(self, rule: NetemRule) -> None:
        """Replace the active rule (as the machine manager does every epoch)."""
        self.rule = rule

    def _sample_delay_ms(self) -> float:
        rule = self.rule
        if rule.jitter_ms <= 0.0 or rule.distribution == "none":
            return rule.delay_ms
        if rule.distribution == "uniform":
            offset = self._rng.uniform(-rule.jitter_ms, rule.jitter_ms)
        elif rule.distribution == "normal":
            offset = self._rng.normal(0.0, rule.jitter_ms)
        elif rule.distribution == "pareto":
            offset = (self._rng.pareto(2.0) - 1.0) * rule.jitter_ms
        else:
            raise ValueError(f"unknown delay distribution: {rule.distribution!r}")
        return max(0.0, rule.delay_ms + offset)

    def transmit(self, size_bytes: int, now_s: float) -> list[DeliveredPacket]:
        """Send one packet at ``now_s``; returns zero, one or two deliveries."""
        rule = self.rule
        if rule.loss_probability > 0.0 and self._rng.random() < rule.loss_probability:
            return []

        serialization_s = 0.0
        if rule.rate_kbps is not None:
            serialization_s = size_bytes * 8.0 / (rule.rate_kbps * 1000.0)
            start = max(now_s, self._busy_until_s)
            self._busy_until_s = start + serialization_s
            serialization_s = self._busy_until_s - now_s

        reordered = (
            rule.reorder_probability > 0.0
            and self._rng.random() < rule.reorder_probability
        )
        delay_s = 0.0 if reordered else self._sample_delay_ms() / 1000.0
        corrupted = (
            rule.corrupt_probability > 0.0
            and self._rng.random() < rule.corrupt_probability
        )
        deliveries = [
            DeliveredPacket(
                arrival_time_s=now_s + serialization_s + delay_s,
                corrupted=corrupted,
                reordered=reordered,
            )
        ]
        if (
            rule.duplicate_probability > 0.0
            and self._rng.random() < rule.duplicate_probability
        ):
            deliveries.append(
                DeliveredPacket(
                    arrival_time_s=now_s + serialization_s + self._sample_delay_ms() / 1000.0,
                    corrupted=False,
                    duplicate=True,
                )
            )
        return deliveries
