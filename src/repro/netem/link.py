"""An emulated point-to-point link: bandwidth shaping followed by netem.

Celestial's Machine Managers install, per pair of microVMs, an end-to-end
delay (from the coordinator's shortest-path computation) and a bandwidth
limit (the minimum along the path).  ``EmulatedLink`` models exactly that
pipeline for one machine pair: a token bucket for the bandwidth limit feeding
into a netem qdisc for delay/jitter/loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netem.qdisc import DeliveredPacket, NetemQdisc, NetemRule
from repro.netem.tbf import TokenBucketFilter

#: Delay value used to mark a machine pair as unreachable (tc uses a blackhole
#: rule; we use an "infinite" delay plus 100% loss).
UNREACHABLE_DELAY_MS = float("inf")


@dataclass
class LinkState:
    """Snapshot of the parameters currently installed on a link."""

    delay_ms: float
    bandwidth_kbps: float | None
    blocked: bool


class EmulatedLink:
    """One direction of traffic between a pair of emulated machines."""

    def __init__(
        self,
        rule: NetemRule,
        bandwidth_kbps: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        self._qdisc = NetemQdisc(rule, rng=rng)
        self._shaper = (
            TokenBucketFilter(bandwidth_kbps) if bandwidth_kbps is not None else None
        )
        self._blocked = rule.blocks_traffic or rule.delay_ms == UNREACHABLE_DELAY_MS
        self.packets_sent = 0
        self.packets_dropped = 0
        self.bytes_sent = 0

    # -- control plane ----------------------------------------------------

    def update(self, delay_ms: float, bandwidth_kbps: float | None = None) -> None:
        """Install new parameters, as the machine manager does each epoch."""
        if delay_ms == UNREACHABLE_DELAY_MS or not np.isfinite(delay_ms):
            self.block()
            return
        self._blocked = False
        self._qdisc.update_rule(self._qdisc.rule.with_delay(delay_ms))
        if bandwidth_kbps is not None:
            if self._shaper is None:
                self._shaper = TokenBucketFilter(bandwidth_kbps)
            else:
                self._shaper.set_rate(bandwidth_kbps)

    def block(self) -> None:
        """Make the link drop all traffic (unreachable pair or suspended VM)."""
        self._blocked = True

    def unblock(self) -> None:
        """Allow traffic again after a block."""
        self._blocked = False

    @property
    def state(self) -> LinkState:
        """Currently-installed link parameters."""
        return LinkState(
            delay_ms=self._qdisc.rule.delay_ms,
            bandwidth_kbps=self._shaper.rate_kbps if self._shaper else None,
            blocked=self._blocked,
        )

    # -- data plane --------------------------------------------------------

    def transmit(self, size_bytes: int, now_s: float) -> list[DeliveredPacket]:
        """Send a packet over the link; returns the resulting deliveries."""
        self.packets_sent += 1
        self.bytes_sent += size_bytes
        if self._blocked:
            self.packets_dropped += 1
            return []
        departure_s = now_s
        if self._shaper is not None:
            departure = self._shaper.enqueue(size_bytes, now_s)
            if departure is None:
                self.packets_dropped += 1
                return []
            departure_s = departure
        deliveries = self._qdisc.transmit(size_bytes, departure_s)
        if not deliveries:
            self.packets_dropped += 1
        return deliveries
