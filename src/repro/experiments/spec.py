"""Typed, declarative experiment specifications.

An :class:`ExperimentSpec` captures everything one emulation run needs —
which scenario builds the :class:`~repro.core.config.Configuration`, which
fault program runs against it, which application workload drives traffic,
how the run executes (duration, fan-out backend, transport, seed) and which
analysis outputs to emit — as one frozen value that round-trips through
TOML and JSON byte-stably.  This extends the paper's single-configuration
principle (§3.1) from the testbed to the *experiment*: parameter sweeps and
ablations become data files interpreted by one runner
(:class:`~repro.experiments.runner.ExperimentRunner`), in the spirit of the
RAFDA line of work that keeps application logic policy-free and pushes
placement/workload/fault policy into declarative configuration.

Example (``experiment.toml``)::

    name = "dart-smoke"

    [scenario]
    name = "pacific-dart"
    [scenario.params]
    buoy_count = 4
    sink_count = 8
    duration_s = 30.0

    [[fault_program]]
    kind = "operator-degradation"
    target = "iridium"

    [workload]
    app = "dart"
    [workload.params]
    deployment = "central"

    [runtime]
    parallelism = "processes"
    workers = 2
    transport = "tcp"

    [metrics]
    outputs = ["summary", "latency-csv"]
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional

from repro.core.config import ConfigurationError


class ExperimentSpecError(ConfigurationError):
    """Raised when an experiment specification is inconsistent."""


#: Application workloads the runner knows how to execute.
KNOWN_WORKLOADS = ("meetup", "dart", "handover", "none")
#: Analysis outputs a spec may request in ``metrics.outputs``.
KNOWN_METRIC_OUTPUTS = ("summary", "latency-csv", "resource-traces", "fault-events")


def _frozen_params(params: Mapping[str, Any] | None) -> dict[str, Any]:
    return dict(params) if params else {}


@dataclass(frozen=True)
class ScenarioSpec:
    """Which configuration to build: a registered scenario or a config file."""

    name: str = ""
    path: Optional[str] = None
    params: dict[str, Any] = field(default_factory=dict)
    overrides: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if bool(self.name) == (self.path is not None):
            raise ExperimentSpecError(
                "scenario must set exactly one of 'name' (registry) or "
                "'path' (configuration file)"
            )
        if self.path is not None and self.params:
            raise ExperimentSpecError(
                "scenario params apply to registry factories; a configuration "
                "file takes overrides only"
            )


@dataclass(frozen=True)
class WorkloadSpec:
    """The application workload driving traffic through the testbed."""

    app: str = "none"
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.app not in KNOWN_WORKLOADS:
            raise ExperimentSpecError(
                f"unknown workload app {self.app!r} "
                f"(known: {', '.join(KNOWN_WORKLOADS)})"
            )


@dataclass(frozen=True)
class FaultOp:
    """One declarative fault-injection operation of the fault program."""

    kind: str
    at_s: float = 0.0
    target: str = ""
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not self.kind:
            raise ExperimentSpecError("fault op kind must not be empty")
        if self.at_s < 0:
            raise ExperimentSpecError("fault op time must be non-negative")


@dataclass(frozen=True)
class RuntimeSpec:
    """How the run executes; ``None`` fields defer to the configuration."""

    duration_s: Optional[float] = None
    parallelism: str = "threads"
    workers: Optional[int] = None
    transport: str = "pipe"
    seed: Optional[int] = None

    def __post_init__(self):
        if self.parallelism not in ("threads", "processes"):
            raise ExperimentSpecError(
                f"unknown parallelism {self.parallelism!r} "
                "(expected 'threads' or 'processes')"
            )
        if self.transport not in ("pipe", "tcp"):
            raise ExperimentSpecError(
                f"unknown transport {self.transport!r} (expected 'pipe' or 'tcp')"
            )
        if self.duration_s is not None and self.duration_s <= 0:
            raise ExperimentSpecError("runtime duration must be positive")


@dataclass(frozen=True)
class ServeSpec:
    """The streaming serving tier attached to a run (``[serve]`` table).

    When present, the runner starts a
    :class:`~repro.serve.gateway.GatewayServer` on the testbed's
    constellation database for the duration of the run: every published
    epoch is encoded once through the shared codec and fanned out to all
    subscribed clients, and path queries are answered from the warm
    routing tables.  ``all_pairs=True`` widens the path sources so queries
    between arbitrary machines hit warm tables instead of cold solves.
    """

    host: str = "127.0.0.1"
    port: int = 0
    queue_limit: int = 64
    ack_timeout_s: float = 5.0
    auth_secret: str = ""
    all_pairs: bool = False

    def __post_init__(self):
        if self.queue_limit <= 0:
            raise ExperimentSpecError("serve queue limit must be positive")
        if self.ack_timeout_s <= 0:
            raise ExperimentSpecError("serve ack timeout must be positive")
        if not 0 <= self.port <= 65535:
            raise ExperimentSpecError("serve port must be within [0, 65535]")


@dataclass(frozen=True)
class MetricsSpec:
    """Which analysis outputs the runner should emit."""

    outputs: tuple[str, ...] = ("summary",)

    def __post_init__(self):
        unknown = [name for name in self.outputs if name not in KNOWN_METRIC_OUTPUTS]
        if unknown:
            raise ExperimentSpecError(
                f"unknown metrics outputs {unknown!r} "
                f"(known: {', '.join(KNOWN_METRIC_OUTPUTS)})"
            )


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, declarative description of one experiment."""

    name: str
    scenario: ScenarioSpec
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    fault_program: tuple[FaultOp, ...] = ()
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)
    metrics: MetricsSpec = field(default_factory=MetricsSpec)
    serve: Optional[ServeSpec] = None

    def __post_init__(self):
        if not self.name:
            raise ExperimentSpecError("experiment name must not be empty")

    # -- convenience ---------------------------------------------------------

    def with_runtime(self, **changes: Any) -> "ExperimentSpec":
        """A copy with runtime fields replaced (CLI override hook)."""
        return replace(self, runtime=replace(self.runtime, **changes))

    def with_serve(self, address: str = "") -> "ExperimentSpec":
        """A copy with the serving tier attached (CLI ``--serve`` hook).

        ``address`` is ``"host:port"``, ``"host"``, ``":port"`` or empty
        (bind 127.0.0.1 on an ephemeral port); other serve fields keep the
        spec's existing ``[serve]`` values, if any.
        """
        base = self.serve if self.serve is not None else ServeSpec()
        host, port = base.host, base.port
        if address:
            head, _, tail = address.rpartition(":")
            if head:
                host, port = head, int(tail)
            elif address.startswith(":"):
                port = int(tail)
            else:
                host = tail
        return replace(self, serve=replace(base, host=host, port=port))

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dictionary form; ``None``/empty fields are omitted so the
        dictionary (and its TOML/JSON renderings) round-trip byte-stably."""
        data: dict[str, Any] = {"name": self.name}
        scenario: dict[str, Any] = {}
        if self.scenario.name:
            scenario["name"] = self.scenario.name
        if self.scenario.path is not None:
            scenario["path"] = self.scenario.path
        if self.scenario.params:
            scenario["params"] = _sorted_dict(self.scenario.params)
        if self.scenario.overrides:
            scenario["overrides"] = _sorted_dict(self.scenario.overrides)
        data["scenario"] = scenario
        workload: dict[str, Any] = {"app": self.workload.app}
        if self.workload.params:
            workload["params"] = _sorted_dict(self.workload.params)
        data["workload"] = workload
        if self.fault_program:
            ops = []
            for op in self.fault_program:
                entry: dict[str, Any] = {"kind": op.kind, "at_s": float(op.at_s)}
                if op.target:
                    entry["target"] = op.target
                if op.params:
                    entry["params"] = _sorted_dict(op.params)
                ops.append(entry)
            data["fault_program"] = ops
        runtime: dict[str, Any] = {}
        if self.runtime.duration_s is not None:
            runtime["duration_s"] = float(self.runtime.duration_s)
        runtime["parallelism"] = self.runtime.parallelism
        if self.runtime.workers is not None:
            runtime["workers"] = int(self.runtime.workers)
        runtime["transport"] = self.runtime.transport
        if self.runtime.seed is not None:
            runtime["seed"] = int(self.runtime.seed)
        data["runtime"] = runtime
        data["metrics"] = {"outputs": list(self.metrics.outputs)}
        if self.serve is not None:
            # Only non-default fields are emitted (an all-default serving
            # tier renders as a bare ``[serve]`` table), keeping the
            # TOML/JSON round-trip byte-stable.
            serve: dict[str, Any] = {}
            defaults = ServeSpec()
            if self.serve.host != defaults.host:
                serve["host"] = self.serve.host
            if self.serve.port != defaults.port:
                serve["port"] = int(self.serve.port)
            if self.serve.queue_limit != defaults.queue_limit:
                serve["queue_limit"] = int(self.serve.queue_limit)
            if self.serve.ack_timeout_s != defaults.ack_timeout_s:
                serve["ack_timeout_s"] = float(self.serve.ack_timeout_s)
            if self.serve.auth_secret:
                serve["auth_secret"] = self.serve.auth_secret
            if self.serve.all_pairs:
                serve["all_pairs"] = True
            data["serve"] = serve
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Build a spec from its plain-dictionary form."""
        try:
            scenario_data = data.get("scenario", {})
            scenario = ScenarioSpec(
                name=scenario_data.get("name", ""),
                path=scenario_data.get("path"),
                params=_frozen_params(scenario_data.get("params")),
                overrides=_frozen_params(scenario_data.get("overrides")),
            )
            workload_data = data.get("workload", {})
            workload = WorkloadSpec(
                app=workload_data.get("app", "none"),
                params=_frozen_params(workload_data.get("params")),
            )
            fault_program = tuple(
                FaultOp(
                    kind=op["kind"],
                    at_s=float(op.get("at_s", 0.0)),
                    target=op.get("target", ""),
                    params=_frozen_params(op.get("params")),
                )
                for op in data.get("fault_program", [])
            )
            runtime_data = data.get("runtime", {})
            runtime = RuntimeSpec(
                duration_s=runtime_data.get("duration_s"),
                parallelism=runtime_data.get("parallelism", "threads"),
                workers=runtime_data.get("workers"),
                transport=runtime_data.get("transport", "pipe"),
                seed=runtime_data.get("seed"),
            )
            metrics_data = data.get("metrics", {})
            metrics = MetricsSpec(outputs=tuple(metrics_data.get("outputs", ("summary",))))
            serve: Optional[ServeSpec] = None
            if "serve" in data:
                serve_data = data["serve"]
                serve = ServeSpec(
                    host=serve_data.get("host", "127.0.0.1"),
                    port=int(serve_data.get("port", 0)),
                    queue_limit=int(serve_data.get("queue_limit", 64)),
                    ack_timeout_s=float(serve_data.get("ack_timeout_s", 5.0)),
                    auth_secret=serve_data.get("auth_secret", ""),
                    all_pairs=bool(serve_data.get("all_pairs", False)),
                )
            return cls(
                name=data["name"],
                scenario=scenario,
                workload=workload,
                fault_program=fault_program,
                runtime=runtime,
                metrics=metrics,
                serve=serve,
            )
        except (KeyError, TypeError) as error:
            raise ExperimentSpecError(f"invalid experiment spec: {error}") from error

    def to_json(self) -> str:
        """Deterministic JSON rendering of the spec."""
        return json.dumps(self.to_dict(), indent=2) + "\n"

    def to_toml(self) -> str:
        """Deterministic TOML rendering of the spec.

        The standard library reads TOML (:mod:`tomllib`) but does not write
        it, so the fixed spec shape is emitted directly; the output parses
        back to :meth:`to_dict` exactly, making TOML round-trips byte-stable.
        """
        data = self.to_dict()
        lines: list[str] = [f"name = {_toml_value(data['name'])}", ""]
        _emit_table(lines, "scenario", data["scenario"])
        _emit_table(lines, "workload", data["workload"])
        for op in data.get("fault_program", []):
            lines.append("[[fault_program]]")
            _emit_pairs(lines, op, skip=("params",))
            if "params" in op:
                lines.append("")
                lines.append("[fault_program.params]")
                _emit_pairs(lines, op["params"])
            lines.append("")
        _emit_table(lines, "runtime", data["runtime"])
        _emit_table(lines, "metrics", data["metrics"])
        if "serve" in data:
            _emit_table(lines, "serve", data["serve"])
        while lines and lines[-1] == "":
            lines.pop()
        return "\n".join(lines) + "\n"

    @classmethod
    def from_toml_text(cls, text: str) -> "ExperimentSpec":
        """Parse a spec from TOML source text."""
        import tomllib

        return cls.from_dict(tomllib.loads(text))

    @classmethod
    def from_path(cls, path) -> "ExperimentSpec":
        """Load a spec from a ``.toml`` or ``.json`` file (by extension)."""
        path_str = str(path)
        if path_str.endswith(".toml"):
            with open(path) as handle:
                return cls.from_toml_text(handle.read())
        if path_str.endswith(".json"):
            with open(path) as handle:
                return cls.from_dict(json.load(handle))
        raise ExperimentSpecError(
            f"unsupported experiment spec suffix: {path_str!r} "
            "(expected .toml or .json)"
        )


# -- TOML emission helpers ---------------------------------------------------


def _sorted_dict(params: Mapping[str, Any]) -> dict[str, Any]:
    return {key: params[key] for key in sorted(params)}


def _toml_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        # repr() is the shortest round-trip form and always carries a '.'
        # or exponent, so tomllib reads the value back as a float.
        return repr(value)
    if isinstance(value, str):
        # JSON string escaping is a subset of TOML basic-string escaping
        # for the characters configurations use.
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    raise ExperimentSpecError(f"cannot render {type(value).__name__} as TOML")


def _emit_pairs(lines: list[str], table: Mapping[str, Any], skip: tuple[str, ...] = ()) -> None:
    for key, value in table.items():
        if key in skip or isinstance(value, Mapping):
            continue
        lines.append(f"{key} = {_toml_value(value)}")


def _emit_table(lines: list[str], name: str, table: Mapping[str, Any]) -> None:
    lines.append(f"[{name}]")
    _emit_pairs(lines, table)
    for key, value in table.items():
        if isinstance(value, Mapping):
            lines.append("")
            lines.append(f"[{name}.{key}]")
            _emit_pairs(lines, value)
    lines.append("")
