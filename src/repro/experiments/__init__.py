"""Declarative experiments: scenario registry, typed specs, one runner.

This package extends the paper's single-configuration principle (§3.1) from
the testbed to the experiment.  Three pieces:

* :mod:`repro.experiments.registry` — a ``@scenario("name")`` decorator
  registry over the scenario modules, so configurations are discoverable by
  name (``get``, ``list_scenarios``) instead of by import.
* :mod:`repro.experiments.spec` — :class:`ExperimentSpec`, a frozen
  dataclass composing scenario, fault program, workload, runtime and metrics
  selection, with byte-stable TOML/JSON round-trips.
* :mod:`repro.experiments.runner` — :class:`ExperimentRunner`, the one code
  path that builds the testbed from a spec, schedules the fault program,
  drives the workload and writes the result bundle.

Parameter sweeps and ablations thus become data (a directory of TOML
files driven by ``repro-celestial run``), not new Python modules.
"""

from repro.experiments.registry import (
    ScenarioEntry,
    UnknownScenarioError,
    build,
    entries,
    entry,
    get,
    list_scenarios,
    scenario,
    unregister,
)
from repro.experiments.spec import (
    ExperimentSpec,
    ExperimentSpecError,
    FaultOp,
    MetricsSpec,
    RuntimeSpec,
    ScenarioSpec,
    ServeSpec,
    WorkloadSpec,
)
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentRunner,
    build_configuration,
    schedule_fault_program,
)

__all__ = [
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "ExperimentSpecError",
    "FaultOp",
    "MetricsSpec",
    "RuntimeSpec",
    "ScenarioEntry",
    "ScenarioSpec",
    "ServeSpec",
    "UnknownScenarioError",
    "WorkloadSpec",
    "build",
    "build_configuration",
    "entries",
    "entry",
    "get",
    "list_scenarios",
    "scenario",
    "schedule_fault_program",
    "unregister",
]
