"""The scenario registry: named, discoverable configuration factories.

The paper's §3.1 design principle is that a whole emulation run is driven
from one configuration; the registry makes the *scenarios* that produce
those configurations first-class data too.  Each scenario module registers
its constructor under a stable name::

    @scenario("west-africa-meetup")
    def west_africa_configuration(...) -> Configuration: ...

and callers discover it by name (``repro.scenarios.get("west-africa-meetup")``,
``list_scenarios()``) instead of importing the module — which is what lets
an :class:`~repro.experiments.spec.ExperimentSpec` reference a scenario as
a string in a TOML file.

The registry itself has no dependencies on the scenario modules; importing
:mod:`repro.scenarios` triggers the registrations (``get`` does this lazily,
so a spec file can be resolved without any prior import).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.config import Configuration


class UnknownScenarioError(KeyError):
    """A scenario name that is not (or no longer) registered."""


@dataclass(frozen=True)
class ScenarioEntry:
    """One registered scenario factory."""

    name: str
    factory: Callable[..., Configuration]
    description: str
    module: str


_REGISTRY: dict[str, ScenarioEntry] = {}


def scenario(
    name: str, description: Optional[str] = None
) -> Callable[[Callable[..., Configuration]], Callable[..., Configuration]]:
    """Decorator registering a configuration factory under ``name``.

    The factory keeps its signature and remains directly callable; the
    description defaults to the first line of its docstring.
    """
    if not name:
        raise ValueError("scenario name must not be empty")

    def _register(factory: Callable[..., Configuration]) -> Callable[..., Configuration]:
        if name in _REGISTRY:
            raise ValueError(
                f"scenario {name!r} is already registered "
                f"(by {_REGISTRY[name].module})"
            )
        doc = (factory.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = ScenarioEntry(
            name=name,
            factory=factory,
            description=description or (doc[0] if doc else ""),
            module=factory.__module__,
        )
        return factory

    return _register


def _ensure_registrations() -> None:
    # The scenario modules register themselves on import; anyone resolving
    # names through the registry gets them loaded on demand.
    import repro.scenarios  # noqa: F401


def get(name: str) -> Callable[..., Configuration]:
    """The registered factory of a scenario, by name."""
    return entry(name).factory


def entry(name: str) -> ScenarioEntry:
    """The full registry entry of a scenario, by name."""
    _ensure_registrations()
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise UnknownScenarioError(
            f"unknown scenario {name!r} (registered: {known})"
        )
    return _REGISTRY[name]


def list_scenarios() -> list[str]:
    """Sorted names of every registered scenario."""
    _ensure_registrations()
    return sorted(_REGISTRY)


def entries() -> list[ScenarioEntry]:
    """Every registry entry, sorted by name."""
    _ensure_registrations()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def build(name: str, **params: Any) -> Configuration:
    """Build a scenario's configuration, type-checking the result."""
    config = get(name)(**params)
    if not isinstance(config, Configuration):
        raise TypeError(
            f"scenario {name!r} returned {type(config).__name__}, "
            "expected Configuration"
        )
    return config


def unregister(name: str) -> None:
    """Remove a registration (primarily for tests registering temporaries)."""
    _REGISTRY.pop(name, None)
