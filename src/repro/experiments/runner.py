"""One runner for every declarative experiment.

:class:`ExperimentRunner` interprets an
:class:`~repro.experiments.spec.ExperimentSpec`: it builds the
:class:`~repro.core.config.Configuration` (registry scenario or config
file, plus overrides), constructs the :class:`~repro.core.testbed.Celestial`
testbed with the requested fan-out backend, schedules the declarative fault
program, runs the application workload and collects metrics — optionally
writing a structured result bundle (JSON summary + CSV traces) through
:func:`repro.analysis.bundle.write_experiment_bundle`.

The CLI experiment subcommands (``meetup``, ``dart``, ``handover``) are thin
spec-builders over this runner, and ``repro-celestial run experiment.toml``
executes any spec directly — so a parameter sweep is a directory of TOML
files, not a Python module.

Workload identity: the named RNG streams of :class:`~repro.sim.RandomStreams`
are keyed by ``(seed, name)`` and independent of creation order, so a run
driven through a spec draws exactly the same random sequences as the same
experiment wired by hand — spec-driven runs reproduce bespoke runs
byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

import dataclasses

from repro.analysis.metrics import LatencySeries
from repro.core.config import Configuration, ConfigurationError, HostConfig
from repro.core.constellation import MachineId
from repro.core.testbed import Celestial
from repro.experiments import registry
from repro.experiments.spec import ExperimentSpec, ExperimentSpecError, FaultOp

#: Configuration fields a scenario override may replace directly.
_OVERRIDABLE_FIELDS = ("duration_s", "update_interval_s", "seed")


@dataclass
class ExperimentResult:
    """Everything one experiment run produced."""

    spec: ExperimentSpec
    config: Configuration
    title: str
    #: ``[label, value]`` rows, ready for :func:`repro.analysis.render_table`.
    metrics: list[list[Any]]
    #: Named latency series for CSV export.
    series: dict[str, LatencySeries] = field(default_factory=dict)
    #: The workload's native results object (``MeetupResults`` etc.).
    raw: Any = None
    #: Fault-injector event log of the run.
    fault_events: list = field(default_factory=list)
    #: Stateful fault interpreters (e.g. ``OperatorDegradation`` instances).
    fault_interpreters: list = field(default_factory=list)
    #: Per-host resource traces (empty for testbed-less workloads).
    resource_traces: dict[int, Any] = field(default_factory=dict)
    #: Data-plane counters of the virtual network.
    network_statistics: dict[str, int] = field(default_factory=dict)
    #: Path-engine solver/kernel counters and per-update repair regimes
    #: (``{"totals": {...}, "regimes": {...}}``) — which path-repair
    #: regime the run's epochs took.
    path_statistics: dict = field(default_factory=dict)
    #: Streaming-gateway counters when the spec attached a serving tier
    #: (``[serve]``): published epochs, encode count, per-client delivery.
    serve_statistics: dict = field(default_factory=dict)
    #: Files written by the result bundle (empty without an output dir).
    output_paths: list[Path] = field(default_factory=list)


# -- configuration building ---------------------------------------------------


def build_configuration(spec: ExperimentSpec) -> Configuration:
    """The testbed configuration of a spec: scenario + overrides + runtime."""
    if spec.scenario.name:
        config = registry.build(spec.scenario.name, **spec.scenario.params)
    else:
        config = Configuration.from_path(spec.scenario.path)
    changes: dict[str, Any] = {}
    for key, value in spec.scenario.overrides.items():
        if key in _OVERRIDABLE_FIELDS:
            changes[key] = value
        elif key == "hosts":
            merged = {**dataclasses.asdict(config.hosts), **value}
            changes["hosts"] = HostConfig(**merged)
        else:
            raise ExperimentSpecError(
                f"unknown scenario override {key!r} "
                f"(supported: {', '.join(_OVERRIDABLE_FIELDS)}, hosts)"
            )
    # Runtime duration/seed win over both the scenario and its overrides.
    if spec.runtime.duration_s is not None:
        changes["duration_s"] = spec.runtime.duration_s
    if spec.runtime.seed is not None:
        changes["seed"] = spec.runtime.seed
    return dataclasses.replace(config, **changes) if changes else config


# -- fault program -------------------------------------------------------------


def _resolve_machine(testbed: Celestial, target: str) -> MachineId:
    """A machine target: a ground-station name or ``"<shell>/<identifier>"``.

    The shell part may be a shell index or a shell name; satellite targets
    are created immediately (outside bounding-box logic) so the op can reach
    them.
    """
    if "/" in target:
        shell_part, identifier = target.split("/", 1)
        if shell_part.isdigit():
            shell_index = int(shell_part)
        else:
            names = [shell.name for shell in testbed.config.shells]
            if shell_part not in names:
                raise ConfigurationError(
                    f"fault target {target!r}: no shell named {shell_part!r}"
                )
            shell_index = names.index(shell_part)
        machine = testbed.satellite(shell_index, int(identifier))
        testbed.ensure_machine(machine)
        return machine
    return testbed.ground_station(target)


def _outage_stations(testbed: Celestial, config: Configuration, op: FaultOp) -> list[MachineId]:
    """The ground stations a ``ground-outage`` op takes down.

    Stations are selected either by comma-separated names in the op's
    target, or — when the target is empty — by a geographic region given
    as ``lat_min``/``lat_max``/``lon_min``/``lon_max`` params (a regional
    blackout: every configured station inside the box goes dark).
    """
    if op.target:
        names = [name.strip() for name in op.target.split(",") if name.strip()]
    else:
        bounds = ("lat_min", "lat_max", "lon_min", "lon_max")
        missing = [key for key in bounds if key not in op.params]
        if missing:
            raise ExperimentSpecError(
                "ground-outage needs station names in 'target' or a region "
                f"(missing params: {', '.join(missing)})"
            )
        from repro.core.bounding_box import BoundingBox

        box = BoundingBox(*(float(op.params[key]) for key in bounds))
        names = [
            gst.name
            for gst in config.ground_stations
            if box.contains(gst.station.latitude_deg, gst.station.longitude_deg)
        ]
    if not names:
        raise ExperimentSpecError("ground-outage selects no ground stations")
    return [testbed.ground_station(name) for name in names]


def _schedule_ground_outage(testbed: Celestial, config: Configuration, op: FaultOp) -> None:
    """Arm a ``ground-outage`` op: terminate a set of stations at once.

    The op expands to one ``terminate`` per selected station (and, when
    ``duration_s`` is given, one ``reboot`` per station at recovery time),
    routed through :meth:`FaultInjector.apply_op` — so the injector event
    log is identical to a run hand-wiring the same terminates and reboots.
    """
    injector = testbed.fault_injector
    stations = _outage_stations(testbed, config, op)
    duration_s = op.params.get("duration_s")

    def _down(now_s: float) -> None:
        for machine in stations:
            injector.apply_op("terminate", now_s, machine=machine)

    if op.at_s > 0:

        def _deferred():
            yield testbed.sim.timeout(op.at_s)
            _down(testbed.sim.now)

        testbed.sim.process(_deferred())
    else:
        _down(testbed.sim.now)
    if duration_s is not None:

        def _recovery():
            yield testbed.sim.timeout(op.at_s + float(duration_s))
            for machine in stations:
                injector.apply_op("reboot", testbed.sim.now, machine=machine)

        testbed.sim.process(_recovery())


def _schedule_op(testbed: Celestial, config: Configuration, op: FaultOp) -> Optional[object]:
    """Arm one fault op; returns its stateful interpreter, if any."""
    if op.kind == "ground-outage":
        _schedule_ground_outage(testbed, config, op)
        return None
    if op.kind == "operator-degradation":
        # Late import: repro.scenarios imports the registry from this package.
        from repro.scenarios.degraded import (
            DEFAULT_VICTIM_SHELL,
            OperatorDegradation,
            victim_shell_index,
        )

        shell_name = op.target or DEFAULT_VICTIM_SHELL
        degradation = OperatorDegradation(
            testbed,
            victim_shell_index(config, shell_name),
            **op.params,
        )
        if op.at_s > 0:

            def _delayed():
                yield testbed.sim.timeout(op.at_s)
                yield from degradation.process()

            testbed.sim.process(_delayed())
        else:
            testbed.sim.process(degradation.process())
        return degradation

    injector = testbed.fault_injector
    kwargs: dict[str, Any] = dict(op.params)
    if "->" in op.target:
        source_name, destination_name = op.target.split("->", 1)
        kwargs["source"] = _resolve_machine(testbed, source_name)
        kwargs["destination"] = _resolve_machine(testbed, destination_name)
    elif op.target:
        kwargs["machine"] = _resolve_machine(testbed, op.target)
    if op.at_s > 0:

        def _deferred():
            yield testbed.sim.timeout(op.at_s)
            injector.apply_op(op.kind, testbed.sim.now, **kwargs)

        testbed.sim.process(_deferred())
    else:
        injector.apply_op(op.kind, testbed.sim.now, **kwargs)
    return None


def schedule_fault_program(
    testbed: Celestial, config: Configuration, program: tuple[FaultOp, ...]
) -> list[object]:
    """Arm every op of a fault program; returns the stateful interpreters.

    The testbed must be started: immediate ops (``at_s == 0``) are applied
    on the spot, timed ops and progressive cascades are registered as
    simulation processes — exactly the sequence a user hand-wiring the
    fault-injection API would produce.
    """
    interpreters = []
    for op in program:
        interpreter = _schedule_op(testbed, config, op)
        if interpreter is not None:
            interpreters.append(interpreter)
    return interpreters


# -- workloads -----------------------------------------------------------------


def _run_meetup(testbed: Celestial, config: Configuration, params: dict[str, Any]):
    from repro.apps import MeetupExperiment, VideoStreamParams

    mode = params.get("mode", "satellite")
    stream_kwargs = {
        key: params[key]
        for key in ("bitrate_kbps", "packet_interval_s")
        if key in params
    }
    experiment = MeetupExperiment(
        testbed,
        mode=mode,
        stream=VideoStreamParams(**stream_kwargs),
        tracking_interval_s=params.get("tracking_interval_s", 5.0),
    )
    results = experiment.run()
    return (
        f"Meetup experiment ({mode} bridge, {config.duration_s:.0f}s)",
        results.summary_metrics(),
        {"meetup": results.all_measurements()},
        results,
    )


def _run_dart(testbed: Celestial, config: Configuration, params: dict[str, Any]):
    from repro.apps import DartExperiment

    deployment = params.get("deployment", "central")
    experiment = DartExperiment(
        testbed,
        deployment=deployment,
        group_count=params.get("group_count", 20),
        reading_interval_s=params.get("reading_interval_s", 1.0),
    )
    results = experiment.run()
    return (
        f"DART experiment ({deployment} deployment, {config.duration_s:.0f}s)",
        results.summary_metrics(),
        {"dart": results.all_latencies(), "processing": results.processing_ms},
        results,
    )


def _run_none(testbed: Celestial, config: Configuration, params: dict[str, Any]):
    testbed.run()
    statistics = testbed.network_statistics()
    metrics = [
        ["booted machines", testbed.booted_machines()],
        ["messages sent", statistics["sent"]],
        ["messages delivered", statistics["delivered"]],
        ["messages dropped", statistics["dropped"]],
    ]
    return (
        f"Emulation run ({config.duration_s:.0f}s, no workload)",
        metrics,
        {},
        None,
    )


_TESTBED_WORKLOADS = {
    "meetup": _run_meetup,
    "dart": _run_dart,
    "none": _run_none,
}


def _run_handover(spec: ExperimentSpec, config: Configuration) -> ExperimentResult:
    """The testbed-less analysis workload (pure constellation calculation)."""
    from repro.analysis.handover import analyze_handovers
    from repro.core.constellation import ConstellationCalculation

    params = spec.workload.params
    if "station" not in params:
        raise ExperimentSpecError("the handover workload requires params.station")
    station = params["station"]
    duration_s = params.get("duration_s", config.duration_s)
    interval_s = params.get("interval_s", 10.0)
    calculation = ConstellationCalculation(config)
    analysis = analyze_handovers(calculation, station, duration_s, interval_s)
    metrics = [
        ["handovers", analysis.handover_count],
        ["handovers per minute", analysis.handover_rate_per_minute],
        ["mean uplink duration [s]", analysis.mean_uplink_duration_s()],
        ["coverage fraction", analysis.coverage_fraction],
    ]
    return ExperimentResult(
        spec=spec,
        config=config,
        title=f"Uplink handovers of {station} over {duration_s:.0f}s",
        metrics=metrics,
        raw=analysis,
        path_statistics={
            # Same shape as Celestial.path_engine_statistics(): the full
            # counter snapshot (including the epoch-batched advance_all
            # attribution) plus the extra-table cache summary; no
            # coordinator runs here, so there are no per-update regimes.
            "totals": calculation.path_engine.stats.snapshot(),
            "regimes": {},
            "cache": {
                "hits": calculation.path_engine.stats.cache_hits,
                "misses": calculation.path_engine.stats.cache_misses,
                "evictions": calculation.path_engine.stats.cache_evictions,
            },
            "cache_parameters": calculation.cache_parameters(),
        },
    )


# -- the runner ----------------------------------------------------------------


class ExperimentRunner:
    """Executes one :class:`ExperimentSpec` end to end."""

    def __init__(self, spec: ExperimentSpec, output_dir: Optional[str | Path] = None):
        self.spec = spec
        self.output_dir = Path(output_dir) if output_dir is not None else None

    def run(self) -> ExperimentResult:
        """Build, fault-inject, drive and measure; returns the result."""
        spec = self.spec
        config = build_configuration(spec)
        if spec.workload.app == "handover":
            if spec.fault_program:
                raise ExperimentSpecError(
                    "the handover workload is a pure calculation; "
                    "it cannot host a fault program"
                )
            result = _run_handover(spec, config)
        else:
            result = self._run_on_testbed(spec, config)
        if self.output_dir is not None:
            from repro.analysis.bundle import write_experiment_bundle

            result.output_paths = write_experiment_bundle(result, self.output_dir)
        return result

    def _run_on_testbed(
        self, spec: ExperimentSpec, config: Configuration
    ) -> ExperimentResult:
        serve = spec.serve
        testbed = Celestial(
            config,
            path_sources="all" if (serve is not None and serve.all_pairs) else "ground_stations",
            parallelism=spec.runtime.parallelism,
            worker_count=spec.runtime.workers,
            transport=spec.runtime.transport,
        )
        gateway = None
        try:
            interpreters: list[object] = []
            if spec.fault_program or serve is not None:
                # Arm faults (and the serving tier) before the workload
                # starts its processes — the order a user hand-wiring the
                # fault API and gateway would use.
                testbed.start()
            if spec.fault_program:
                interpreters = schedule_fault_program(
                    testbed, config, spec.fault_program
                )
            if serve is not None:
                from repro.serve.gateway import GatewayServer

                gateway = GatewayServer(
                    testbed.database,
                    host=serve.host,
                    port=serve.port,
                    queue_limit=serve.queue_limit,
                    ack_timeout_s=serve.ack_timeout_s,
                    auth_secret=serve.auth_secret,
                ).start()
            workload = _TESTBED_WORKLOADS[spec.workload.app]
            title, metrics, series, raw = workload(testbed, config, spec.workload.params)
            return ExperimentResult(
                spec=spec,
                config=config,
                title=title,
                metrics=metrics,
                series=series,
                raw=raw,
                fault_events=list(testbed.fault_injector.events),
                fault_interpreters=interpreters,
                resource_traces=testbed.resource_traces(),
                network_statistics=testbed.network_statistics(),
                path_statistics=testbed.path_engine_statistics(),
                serve_statistics=gateway.statistics() if gateway is not None else {},
            )
        finally:
            if gateway is not None:
                gateway.stop()
            testbed.close()
