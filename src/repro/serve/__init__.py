"""The streaming serving tier: one state-distribution path for all consumers.

Celestial's constellation state historically reached its consumers over
three disjoint encodings — binary worker frames, ad-hoc info-API JSON and
analysis result dumps.  This package unifies them behind a single seam:

* :mod:`repro.serve.codec` — the shared :class:`EpochUpdate` codec.  Each
  epoch's keyframe/diff is encoded exactly once into the versioned
  :mod:`repro.dist.wire` frame format; the info API's ``/diffs`` JSON and
  the analysis bundle render *views* of the same encoded bytes.
* :mod:`repro.serve.gateway` — the asyncio :class:`StreamGateway`, fanning
  the shared bytes out to thousands of subscribers with bounded per-client
  queues, backpressure and slow-client keyframe resync, and answering
  path-latency queries from the warm path-table set.
* :mod:`repro.serve.client` — the blocking :class:`SubscriptionClient`
  used by tests, examples and external consumers.
"""

from repro.serve.codec import (
    CodecError,
    EpochReplica,
    EpochSnapshot,
    EpochUpdate,
    EpochUpdateCodec,
)

__all__ = [
    "CodecError",
    "EpochReplica",
    "EpochSnapshot",
    "EpochUpdate",
    "EpochUpdateCodec",
    "StreamGateway",
    "GatewayServer",
    "SubscriptionClient",
]


def __getattr__(name):
    # Gateway/client import asyncio + transport machinery; load lazily so
    # the codec stays importable from the database without dragging them in.
    if name in ("StreamGateway", "GatewayServer"):
        from repro.serve import gateway

        return getattr(gateway, name)
    if name == "SubscriptionClient":
        from repro.serve import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
