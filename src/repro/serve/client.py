"""Blocking subscriber client of the streaming gateway.

:class:`SubscriptionClient` dials a :class:`~repro.serve.gateway
.StreamGateway`, performs the SUBSCRIBE (and, when a shared secret is
configured, CHALLENGE/AUTH) handshake over a plain
:class:`~repro.dist.transport.SocketTransport`, and exposes the epoch
stream as decoded :class:`~repro.serve.codec.EpochUpdate` values.  An
internal :class:`~repro.serve.codec.EpochReplica` applies every received
keyframe/diff, so ``client.replica.snapshot()`` is the client's
bit-exact reconstruction of the streamed state projection.

``RESULT`` frames answering :meth:`query` calls are interleaved with the
stream by the gateway; the client buffers whichever frame kind it is not
currently waiting for, so queries and updates can be consumed in any
order.
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Optional

from repro.dist import wire
from repro.dist.transport import SocketTransport, answer_challenge
from repro.dist.wire import FrameKind
from repro.serve.codec import EpochReplica, EpochUpdate


class SubscriptionError(ConnectionError):
    """The gateway rejected or dropped the subscription."""


class SubscriptionClient:
    """One blocking gateway subscription (dial → subscribe → stream)."""

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str = "",
        scope: Optional[dict] = None,
        auth_secret: str = "",
        timeout_s: float = 30.0,
    ):
        self.timeout_s = timeout_s
        self.replica = EpochReplica()
        self._updates: deque[EpochUpdate] = deque()
        self._results: deque[dict] = deque()
        sock = socket.create_connection((host, port), timeout=timeout_s)
        self.transport = SocketTransport(sock)
        try:
            subscribe_meta: dict = {"client": client_id}
            if scope is not None:
                subscribe_meta["scope"] = scope
            self.transport.send_bytes(
                wire.encode_frame(FrameKind.SUBSCRIBE, subscribe_meta)
            )
            kind, meta, _arrays, _data = self._recv()
            if kind is FrameKind.CHALLENGE:
                answer_challenge(
                    self.transport, meta, auth_secret, client_id or ""
                )
                kind, meta, _arrays, _data = self._recv()
            if kind is FrameKind.ERROR:
                raise SubscriptionError(
                    str(meta.get("error", "the gateway rejected the subscription"))
                )
            if kind is not FrameKind.SUBSCRIBE_ACK:
                raise SubscriptionError(
                    f"expected SUBSCRIBE_ACK, got {kind.name}"
                )
            self.client_id = meta["client"]
            self.server_epoch = meta["epoch"]
            self.keyframe_epochs = list(meta["keyframe_epochs"])
        except BaseException:
            self.transport.close()
            raise

    # -- receiving -----------------------------------------------------------

    def _recv(self):
        try:
            data = self.transport.recv_bytes(self.timeout_s)
        except EOFError as error:
            raise SubscriptionError("the gateway closed the stream") from error
        kind, meta, arrays = wire.decode_frame(data)
        return kind, meta, arrays, data

    def _pump(self, want_update: bool):
        """Read frames, buffering the kind the caller is not waiting for."""
        while True:
            kind, meta, _arrays, data = self._recv()
            if kind in (FrameKind.KEYFRAME, FrameKind.DIFF):
                # The update keeps the received bytes verbatim — the client
                # never re-encodes what the gateway fanned out.
                update = EpochUpdate(kind, meta["epoch"], data)
                if want_update:
                    return update
                self._updates.append(update)
            elif kind is FrameKind.RESULT:
                if not want_update:
                    return meta
                self._results.append(meta)
            else:
                raise SubscriptionError(f"unexpected {kind.name} frame")

    def recv_update(self, apply: bool = True) -> EpochUpdate:
        """The next keyframe/diff update from the stream.

        With ``apply=True`` (default) the update is applied to the
        client's replica; a keyframe received after an eviction resets
        the replica to the keyframe's epoch, exactly as the gateway's
        resync protocol intends.
        """
        update = self._updates.popleft() if self._updates else self._pump(True)
        if apply:
            self.replica.apply(update)
        return update

    def sync_to_epoch(self, epoch: int, apply: bool = True) -> list[EpochUpdate]:
        """Consume stream updates until the replica reaches ``epoch``."""
        received = []
        while not received or received[-1].epoch < epoch:
            received.append(self.recv_update(apply=apply))
        return received

    # -- querying ------------------------------------------------------------

    def query(self, source: str, destination: str) -> dict:
        """Path latency ``source → destination`` now, from the warm tables.

        Targets are machine names: ``<id>.<shell>`` (or the DNS form
        ``<id>.<shell>.celestial``) for satellites, the station name for
        ground stations.
        """
        self.transport.send_bytes(
            wire.encode_frame(
                FrameKind.QUERY, {"source": source, "destination": destination}
            )
        )
        return self._results.popleft() if self._results else self._pump(False)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "SubscriptionClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
