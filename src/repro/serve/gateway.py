"""The async subscription gateway of the streaming serving tier.

:class:`StreamGateway` serves the constellation's epoch stream to many
concurrent subscribers over the same length-prefixed wire frames the
worker transport speaks (:mod:`repro.dist.transport`), so a subscriber is
just a :class:`~repro.dist.transport.SocketTransport` plus the shared
:mod:`repro.serve.codec`.  The design follows the paper's separation of
the constellation computation from its consumers (§3.2) and the ROADMAP's
"serving tier" direction:

* **Single encode, shared fan-out.**  Each published epoch is encoded
  exactly once by the database's :class:`EpochUpdateCodec`; every client
  queue holds references to the same ``bytes`` object.  Fan-out cost is
  queue handling, not serialization.
* **Bounded queues, backpressure, keyframe resync.**  Every client has a
  bounded send queue.  A client that cannot drain its queue within the
  configured ``ack_timeout_s`` — the same discipline the worker
  supervisor applies to unacknowledged epochs — or whose queue overflows
  is *evicted to a keyframe*: its queued epoch backlog is flushed
  (pending query replies are preserved) and replaced with the current
  epoch's keyframe, from which the diff stream resumes.
* **No pre-auth deserialisation hazards.**  Every frame a client can
  send — including the very first SUBSCRIBE — is decoded with the wire
  module's safe metadata codec; pickled metadata blobs are refused
  outright (:func:`repro.dist.wire.decode_frame`'s default), so a dialer
  gets no code-execution surface before (or after) authenticating.
* **Scoped subscriptions.**  A subscription may scope itself to a
  geodetic bounding box (server-side filtering through
  :meth:`~repro.core.bounding_box.BoundingBox.contains_ecef` against the
  satellites a diff touches) or to a ground station's view; out-of-scope
  diffs are summarised by a lightweight skip marker so scoped clients
  keep an unbroken epoch chain without receiving unrelated payloads.
* **Warm-table queries.**  ``QUERY`` frames ("path latency src→dst now")
  are answered from the current state's path tables — warm ``all_pairs``
  tables when the calculation serves them — with per-client cache
  hit/miss attribution surfaced in :meth:`StreamGateway.statistics`.

The asyncio core runs inside :class:`GatewayServer`, a thread-hosted
facade that plugs into :meth:`ConstellationDatabase.add_listener` so the
coordinator's ``set_state`` publications reach subscribers without the
coordinator ever blocking on a slow client.
"""

from __future__ import annotations

import asyncio
import hmac
import os
import threading
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.bounding_box import BoundingBox
from repro.dist import wire
from repro.dist.transport import _LENGTH_PREFIX, MAX_FRAME_BYTES, auth_digest
from repro.dist.wire import FrameKind
from repro.serve.codec import changed_nodes, encode_skip_update


class GatewayError(RuntimeError):
    """Raised when the gateway cannot serve a subscription or query."""


def _machine_from_token(token: str):
    """Resolve a query target name to a :class:`MachineId`.

    Satellites are addressed as ``<id>.<shell>`` (the ``.celestial``
    suffix of the DNS scheme is accepted and stripped); anything else is
    a ground-station name, validated against the state at query time.
    """
    from repro.core.constellation import MachineId, satellite_name

    name = token[: -len(".celestial")] if token.endswith(".celestial") else token
    parts = name.split(".")
    if len(parts) == 2 and parts[0].isdigit() and parts[1].isdigit():
        identifier, shell = int(parts[0]), int(parts[1])
        return MachineId(shell, identifier, satellite_name(shell, identifier))
    return MachineId(MachineId.GROUND_SHELL, 0, token)


@dataclass
class _Subscription:
    """Server-side bookkeeping of one connected subscriber.

    Queue items are ``(framed_bytes, is_result)`` pairs — the flag lets an
    eviction flush the epoch backlog while preserving RESULT frames that
    answer QUERYs the client is blocked on — plus the ``None`` shutdown
    sentinel.
    """

    client_id: str
    queue: asyncio.Queue
    scope: Optional[dict] = None
    bbox: Optional[BoundingBox] = None
    ground_station: Optional[str] = None
    last_epoch: int = 0
    delivered: int = 0
    skipped: int = 0
    evictions: int = 0
    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    closed: bool = False

    def statistics(self) -> dict:
        return {
            "delivered": self.delivered,
            "skipped": self.skipped,
            "evictions": self.evictions,
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


def _scope_of(meta: dict) -> tuple[Optional[dict], Optional[BoundingBox], Optional[str]]:
    """Parse a SUBSCRIBE frame's scope into its filter objects."""
    scope = meta.get("scope")
    if not scope:
        return None, None, None
    kind = scope.get("kind")
    if kind == "bbox":
        bbox = BoundingBox(
            lat_min=float(scope["lat_min"]),
            lat_max=float(scope["lat_max"]),
            lon_min=float(scope["lon_min"]),
            lon_max=float(scope["lon_max"]),
        )
        return scope, bbox, None
    if kind == "gst":
        return scope, None, str(scope["name"])
    raise GatewayError(f"unknown subscription scope kind {kind!r}")


class StreamGateway:
    """The asyncio serving core: subscriptions, fan-out, queries.

    All methods execute on the owning event loop; :class:`GatewayServer`
    provides the thread-safe outside interface.
    """

    def __init__(
        self,
        database,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 64,
        ack_timeout_s: float = 5.0,
        auth_secret: str = "",
    ):
        if queue_limit <= 0:
            raise ValueError("queue limit must be positive")
        self.database = database
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        self.ack_timeout_s = ack_timeout_s
        self.auth_secret = auth_secret
        self._server: Optional[asyncio.AbstractServer] = None
        self._client_tasks: set[asyncio.Task] = set()
        self._client_writers: set[asyncio.StreamWriter] = set()
        self._subscriptions: dict[str, _Subscription] = {}
        self._counter = 0
        self.published_epochs = 0
        self.rejected_subscriptions = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (resolves the ephemeral port)."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener and disconnect every subscriber."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for subscription in list(self._subscriptions.values()):
            self._close_subscription(subscription)
        for writer in list(self._client_writers):
            writer.close()
        # Let the per-client handlers run their shutdown sequence to
        # completion; cancelling them instead makes asyncio's stream
        # connection callback re-raise the CancelledError into the loop's
        # exception handler.
        if self._client_tasks:
            await asyncio.wait(
                list(self._client_tasks), timeout=self.ack_timeout_s
            )

    # -- framing over asyncio streams --------------------------------------

    @staticmethod
    async def _read_frame(reader: asyncio.StreamReader) -> bytes:
        prefix = await reader.readexactly(_LENGTH_PREFIX.size)
        (length,) = _LENGTH_PREFIX.unpack(prefix)
        if length > MAX_FRAME_BYTES:
            raise GatewayError(f"frame length {length} exceeds the limit")
        return await reader.readexactly(length)

    @staticmethod
    def _frame_bytes(data: bytes) -> bytes:
        return _LENGTH_PREFIX.pack(len(data)) + data

    # -- publication (called from the database listener) --------------------

    def publish(self, epoch: int, state, diff) -> None:
        """Fan one published epoch out to every subscription.

        The keyframe/diff is encoded at most once (codec cache); clients
        whose bounded queue overflows are evicted to the current keyframe.
        Runs on the event loop via ``call_soon_threadsafe`` from the
        database's listener hook.
        """
        codec = self.database.codec
        self.published_epochs += 1
        if diff is None:
            update = codec.keyframe_update(epoch, state=state)
            touched = None
        else:
            update = codec.diff_update(epoch, diff=diff)
            meta, arrays = update.decoded()
            touched = changed_nodes(meta, arrays)
        payload = self._frame_bytes(update.data)
        skip_payload: Optional[bytes] = None
        for subscription in self._subscriptions.values():
            if subscription.closed:
                continue
            if diff is not None and not self._in_scope(
                subscription, state, diff, touched
            ):
                # Out of scope: deliver an empty skip-marker diff instead,
                # so the scoped client's epoch chain keeps advancing
                # (encoded at most once per epoch, shared by all skips).
                if skip_payload is None:
                    skip_payload = self._frame_bytes(encode_skip_update(diff, epoch))
                subscription.skipped += 1
                self._enqueue(subscription, skip_payload, epoch, state)
                continue
            self._enqueue(subscription, payload, epoch, state)

    def _enqueue(self, subscription: _Subscription, payload: bytes, epoch: int, state) -> None:
        if epoch <= subscription.last_epoch:
            # The subscription was seeded (or resynced) at this epoch or a
            # later one while this publication was still queued behind it
            # on the loop — delivering it would duplicate an epoch the
            # client already holds and break its diff chain.
            return
        subscription.last_epoch = epoch
        try:
            subscription.queue.put_nowait((payload, False))
        except asyncio.QueueFull:
            # Slow client: drop its backlog and resynchronise it from the
            # current epoch's keyframe (the codec caches the encoding, so
            # concurrent evictions share one keyframe encode).
            self._evict(subscription, epoch=epoch, state=state)

    @staticmethod
    def _close_subscription(subscription: _Subscription) -> None:
        """Mark a subscription closed and wake its writer loop.

        The sentinel put is best-effort: on a full queue the writer is
        already awake and checks ``closed`` after every dequeue, so a
        dropped sentinel cannot strand it.
        """
        subscription.closed = True
        try:
            subscription.queue.put_nowait(None)
        except asyncio.QueueFull:
            pass

    def _evict(
        self, subscription: _Subscription, epoch: Optional[int] = None, state=None
    ) -> bool:
        """Drop a subscription's epoch backlog and resync it from a keyframe.

        Queued RESULT frames survive the flush — they answer QUERYs whose
        clients are blocked waiting on the reply, and resyncing the epoch
        stream does not invalidate them.  Without ``epoch``/``state`` the
        current database state is used (taken under the database lock).
        Returns ``False`` when a shutdown sentinel was drained, i.e. the
        subscription is closing and the caller's loop should exit.
        """
        preserved = []
        closing = subscription.closed
        while not subscription.queue.empty():
            item = subscription.queue.get_nowait()
            if item is None:
                closing = True
            elif item[1]:
                preserved.append(item)
        database = self.database
        if epoch is None or state is None:
            with database.lock:
                keyframe = database.codec.keyframe_update(
                    database.epoch, state=database.state
                )
        else:
            keyframe = database.codec.keyframe_update(epoch, state=state)
        items = [(self._frame_bytes(keyframe.data), False), *preserved]
        if closing:
            items.append(None)
        for item in items:
            try:
                subscription.queue.put_nowait(item)
            except asyncio.QueueFull:
                # Only reachable when the queue was brim-full of preserved
                # replies; the overflow replies are dropped with the backlog.
                break
        subscription.last_epoch = max(subscription.last_epoch, keyframe.epoch)
        subscription.evictions += 1
        return not closing

    def _in_scope(self, subscription: _Subscription, state, diff, touched) -> bool:
        """Whether a diff intersects the subscription's scope.

        Scoping is a *delivery* policy: a scoped client is only told about
        epochs whose changes it can observe.  Satellite activity flips and
        changed-link endpoints are tested against the scope; diffs that
        touch nothing (pure time advance) pass, so every subscriber's
        clock keeps moving.
        """
        if subscription.bbox is not None:
            index = state.node_index
            satellites = (
                touched[touched < index.satellite_count]
                if touched is not None and touched.size
                else np.empty(0, dtype=np.int64)
            )
            flipped = [
                index.shell_offset(shell) + ids
                for shell, ids in (*diff.activated.items(), *diff.deactivated.items())
                if ids.size
            ]
            candidates = np.unique(
                np.concatenate([satellites, *flipped])
                if flipped
                else satellites
            )
            if not candidates.size:
                return True
            positions = np.vstack(
                [
                    state.satellite_positions_ecef[shell][identifier]
                    for shell, identifier in (
                        index.describe(int(node))[1:] for node in candidates
                    )
                ]
            )
            return bool(np.any(subscription.bbox.contains_ecef(positions)))
        if subscription.ground_station is not None:
            try:
                gst_node = state.node_index.ground_station(
                    subscription.ground_station
                )
            except KeyError:
                return True
            return touched is None or bool(np.any(touched == gst_node))
        return True

    # -- per-client protocol -------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        subscription: Optional[_Subscription] = None
        writer_task: Optional[asyncio.Task] = None
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        self._client_writers.add(writer)
        try:
            data = await asyncio.wait_for(
                self._read_frame(reader), timeout=self.ack_timeout_s
            )
            kind, meta, _arrays = wire.decode_frame(data)
            if kind is not FrameKind.SUBSCRIBE:
                raise GatewayError(
                    f"expected a SUBSCRIBE frame first, got {kind.name}"
                )
            subscription = await self._subscribe(reader, writer, meta)
            if subscription is None:
                return
            writer_task = asyncio.ensure_future(
                self._writer_loop(subscription, writer)
            )
            await self._reader_loop(subscription, reader, writer)
        except (
            GatewayError,
            wire.WireError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionError,
            OSError,
        ):
            pass
        finally:
            if subscription is not None:
                self._close_subscription(subscription)
                # Pop only our own registry entry: after a (rejected)
                # duplicate-id race the key may point at another live
                # subscription whose stream must not be torn down.
                if self._subscriptions.get(subscription.client_id) is subscription:
                    del self._subscriptions[subscription.client_id]
            if writer_task is not None:
                try:
                    await writer_task
                except Exception:
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._client_writers.discard(writer)
            if task is not None:
                self._client_tasks.discard(task)

    async def _subscribe(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        meta: dict,
    ) -> Optional[_Subscription]:
        """Authenticate (if configured) and register one subscription."""
        self._counter += 1
        client_id = str(meta.get("client") or f"client-{self._counter}")
        if self.auth_secret:
            # Same challenge/response the worker handshake uses, with the
            # client id as the identity bound into the digest.
            nonce = os.urandom(32)
            writer.write(
                self._frame_bytes(
                    wire.encode_frame(FrameKind.CHALLENGE, {"nonce": nonce})
                )
            )
            await writer.drain()
            data = await asyncio.wait_for(
                self._read_frame(reader), timeout=self.ack_timeout_s
            )
            kind, auth_meta, _arrays = wire.decode_frame(data)
            digest = auth_meta.get("digest") if kind is FrameKind.AUTH else None
            if not (
                isinstance(digest, bytes)
                and hmac.compare_digest(
                    digest, auth_digest(self.auth_secret, nonce, client_id)
                )
            ):
                self.rejected_subscriptions += 1
                return None
        existing = self._subscriptions.get(client_id)
        if existing is not None and not existing.closed:
            # A second subscriber under the same id must not overwrite the
            # registry entry: the first client's stream would silently stop
            # when this connection's cleanup popped the shared key.
            self.rejected_subscriptions += 1
            writer.write(
                self._frame_bytes(
                    wire.encode_frame(
                        FrameKind.ERROR,
                        {"error": f"client id {client_id!r} is already subscribed"},
                    )
                )
            )
            await writer.drain()
            return None
        scope, bbox, ground_station = _scope_of(meta)
        subscription = _Subscription(
            client_id=client_id,
            queue=asyncio.Queue(self.queue_limit),
            scope=scope,
            bbox=bbox,
            ground_station=ground_station,
        )
        self._subscriptions[client_id] = subscription
        database = self.database
        # Take a consistent (epoch, state) pair under the database lock —
        # the coordinator thread may be mid-``set_state`` with its publish
        # callback still queued behind us on the loop.  Recording the seed
        # epoch lets ``_enqueue`` drop such already-covered publications.
        with database.lock:
            epoch = database.epoch
            keyframe_epochs = database.keyframe_epochs()
            seed = (
                database.codec.keyframe_update(epoch, state=database.state)
                if database.has_state
                else None
            )
        ack = wire.encode_frame(
            FrameKind.SUBSCRIBE_ACK,
            {
                "client": client_id,
                "epoch": epoch,
                "keyframe_epochs": keyframe_epochs,
            },
        )
        writer.write(self._frame_bytes(ack))
        # Seed the stream with the current epoch's keyframe so the client
        # has a base state to apply subsequent diffs onto.
        if seed is not None:
            subscription.queue.put_nowait((self._frame_bytes(seed.data), False))
            subscription.last_epoch = epoch
        await writer.drain()
        return subscription

    async def _writer_loop(
        self, subscription: _Subscription, writer: asyncio.StreamWriter
    ) -> None:
        """Drain the subscription queue into the socket, with backpressure.

        A client that cannot absorb a frame within ``ack_timeout_s`` (the
        supervisor's unacked-epoch discipline) is evicted: its backlog is
        dropped and a fresh keyframe queued, and the write retried.
        """
        while True:
            item = await subscription.queue.get()
            if item is None or subscription.closed:
                return
            payload, _is_result = item
            writer.write(payload)
            try:
                await asyncio.wait_for(writer.drain(), timeout=self.ack_timeout_s)
            except asyncio.TimeoutError:
                if subscription.closed:
                    return
                if not self._evict(subscription):
                    return
                continue
            subscription.delivered += 1

    async def _reader_loop(
        self,
        subscription: _Subscription,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve QUERY frames until the client disconnects."""
        while True:
            data = await self._read_frame(reader)
            kind, meta, _arrays = wire.decode_frame(data)
            if kind is not FrameKind.QUERY:
                raise GatewayError(f"unexpected {kind.name} frame mid-stream")
            result = self._answer_query(subscription, meta)
            payload = self._frame_bytes(wire.encode_frame(FrameKind.RESULT, result))
            try:
                subscription.queue.put_nowait((payload, True))
            except asyncio.QueueFull:
                # The backlog is epoch frames the client is not draining;
                # apply the eviction discipline (which preserves earlier
                # replies) rather than tearing the connection down, then
                # deliver this reply.
                self._evict(subscription)
                try:
                    subscription.queue.put_nowait((payload, True))
                except asyncio.QueueFull:
                    pass  # queue brim-full of replies: drop like the backlog

    def _answer_query(self, subscription: _Subscription, meta: dict) -> dict:
        """Answer one path-latency query from the warm state tables.

        The query goes through :meth:`ConstellationState.path`, which
        serves from the calculation's carried path tables — warm
        ``all_pairs`` tables when the testbed was started with them — and
        records hits/misses in the engine statistics; the delta is
        attributed to the querying client.
        """
        subscription.queries += 1
        database = self.database
        try:
            source = _machine_from_token(str(meta["source"]))
            destination = _machine_from_token(str(meta["destination"]))
            with database.lock:
                state = database.state
                engine = state._path_engine
                hits_before = engine.stats.cache_hits if engine else 0
                misses_before = engine.stats.cache_misses if engine else 0
                result = state.path(source, destination)
                if engine is not None:
                    subscription.cache_hits += engine.stats.cache_hits - hits_before
                    subscription.cache_misses += (
                        engine.stats.cache_misses - misses_before
                    )
            reachable = bool(result.reachable)
            return {
                "client": subscription.client_id,
                "source": source.name,
                "destination": destination.name,
                "epoch": database.epoch,
                "reachable": reachable,
                "delay_ms": float(result.delay_ms) if reachable else None,
                "rtt_ms": float(result.rtt_ms) if reachable else None,
            }
        except (KeyError, ValueError, RuntimeError) as error:
            return {
                "client": subscription.client_id,
                "error": str(error),
            }

    # -- statistics ----------------------------------------------------------

    def statistics(self) -> dict:
        """Aggregate and per-client serving statistics."""
        clients = {
            client_id: subscription.statistics()
            for client_id, subscription in sorted(self._subscriptions.items())
        }
        return {
            "published_epochs": self.published_epochs,
            "encode_count": self.database.codec.encode_count,
            "subscriptions": len(self._subscriptions),
            "rejected_subscriptions": self.rejected_subscriptions,
            "delivered": sum(c["delivered"] for c in clients.values()),
            "evictions": sum(c["evictions"] for c in clients.values()),
            "queries": sum(c["queries"] for c in clients.values()),
            "cache_hits": sum(c["cache_hits"] for c in clients.values()),
            "cache_misses": sum(c["cache_misses"] for c in clients.values()),
            "clients": clients,
        }


class GatewayServer:
    """Thread-hosted facade running a :class:`StreamGateway` event loop.

    Owns the loop thread, registers itself as a database epoch listener
    and bridges publications onto the loop with ``call_soon_threadsafe``,
    so the coordinator's epoch path never blocks on subscriber I/O.
    """

    def __init__(
        self,
        database,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 64,
        ack_timeout_s: float = 5.0,
        auth_secret: str = "",
    ):
        self.gateway = StreamGateway(
            database,
            host=host,
            port=port,
            queue_limit=queue_limit,
            ack_timeout_s=ack_timeout_s,
            auth_secret=auth_secret,
        )
        self.database = database
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stopped = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` subscribers dial."""
        return (self.gateway.host, self.gateway.port)

    def start(self) -> "GatewayServer":
        """Start the loop thread, bind the listener, hook the database."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop, name="celestial-gateway", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise GatewayError("the gateway event loop did not start")
        self.database.add_listener(self._on_epoch)
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        loop.run_until_complete(self.gateway.start())
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.gateway.stop())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def stop(self) -> None:
        """Unhook from the database and stop the loop thread (idempotent)."""
        if self._stopped or self._loop is None:
            return
        self._stopped = True
        self.database.remove_listener(self._on_epoch)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._thread = None

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- bridging ------------------------------------------------------------

    def _on_epoch(self, epoch: int, state, diff) -> None:
        if self._loop is not None and not self._stopped:
            self._loop.call_soon_threadsafe(
                self.gateway.publish, epoch, state, diff
            )

    def statistics(self) -> dict:
        """Serving statistics snapshot (thread-safe)."""
        if self._loop is None:
            return self.gateway.statistics()
        future = asyncio.run_coroutine_threadsafe(
            self._statistics_async(), self._loop
        )
        return future.result(timeout=10.0)

    async def _statistics_async(self) -> dict:
        return self.gateway.statistics()
