"""The shared epoch-update codec of the serving tier.

Before this module the repository held *three* disjoint encodings of the
same per-epoch constellation change set: the binary
:mod:`repro.dist.wire` frames the coordinator ships to workers, the ad-hoc
JSON the info API rendered for ``/diffs/<epoch>``, and the result dumps of
the analysis bundle.  The codec collapses them into one unit of
distribution — the :class:`EpochUpdate` — encoded **exactly once** per
epoch into the existing versioned wire-frame format (``KEYFRAME`` /
``DIFF`` frame kinds) and rendered as *views* everywhere else:

* the streaming gateway (:mod:`repro.serve.gateway`) fans the shared
  encoded bytes out to every subscriber,
* the info API's ``/diffs/<epoch>`` JSON is :func:`diff_json_record` over
  the decoded frame (byte-for-byte the wire format PR 3 introduced),
* the analysis bundle's ``epoch_stream.json`` reuses the same JSON view.

What travels is the network-observable projection of a
:class:`~repro.core.constellation.ConstellationState` — the
:class:`EpochSnapshot`: simulation clock, the undirected link set with
per-link delay/bandwidth/type, and the per-shell bounding-box activity
masks.  Satellite positions are *not* streamed (they change every epoch
and would make every diff as large as a keyframe); consumers that need
geometry query the info API.  A subscriber that applies its keyframe+diff
stream through an :class:`EpochReplica` reconstructs the snapshot
bit-for-bit at every epoch: array payloads travel as raw buffers, so
float bit patterns survive the round trip unchanged.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.dist import wire
from repro.dist.wire import FrameKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.constellation import ConstellationDiff, ConstellationState
    from repro.core.database import ConstellationDatabase


class CodecError(ValueError):
    """Raised when an epoch-update frame does not decode to a valid update."""


# -- the streamed projection ---------------------------------------------------


@dataclass(frozen=True)
class EpochSnapshot:
    """The streamed, canonically ordered projection of one epoch's state.

    Links are normalised to ``node_a < node_b`` and sorted by the flat
    edge key ``node_a * node_count + node_b``, so the snapshot of a
    server-side state and of a client-side replica are comparable
    independently of graph insertion order.  ``active`` maps shell index
    to the boolean bounding-box activity mask.
    """

    epoch: int
    time_s: float
    node_count: int
    node_a: np.ndarray
    node_b: np.ndarray
    delay_ms: np.ndarray
    bandwidth_kbps: np.ndarray
    link_type: np.ndarray
    active: dict[int, np.ndarray]

    @classmethod
    def from_state(cls, state: "ConstellationState", epoch: int) -> "EpochSnapshot":
        """The canonical projection of a server-side state."""
        graph = state.graph
        node_count = len(graph.index)
        a, b = graph.node_a, graph.node_b
        low, high = np.minimum(a, b), np.maximum(a, b)
        order = np.argsort(low * np.int64(node_count) + high, kind="stable")
        return cls(
            epoch=epoch,
            time_s=state.time_s,
            node_count=node_count,
            node_a=np.ascontiguousarray(low[order]),
            node_b=np.ascontiguousarray(high[order]),
            delay_ms=np.ascontiguousarray(graph.delays_ms[order]),
            bandwidth_kbps=np.ascontiguousarray(graph.bandwidths_kbps[order]),
            link_type=np.ascontiguousarray(graph.link_type_codes[order]),
            active={
                shell: np.ascontiguousarray(mask)
                for shell, mask in sorted(state.active_satellites.items())
            },
        )

    def same_bits(self, other: "EpochSnapshot") -> bool:
        """Bitwise equality of the projections (exact float bit patterns)."""
        if (
            self.epoch != other.epoch
            or self.time_s != other.time_s
            or self.node_count != other.node_count
            or sorted(self.active) != sorted(other.active)
        ):
            return False
        pairs = [
            (self.node_a, other.node_a),
            (self.node_b, other.node_b),
            (self.delay_ms, other.delay_ms),
            (self.bandwidth_kbps, other.bandwidth_kbps),
            (self.link_type, other.link_type),
            *((self.active[s], other.active[s]) for s in sorted(self.active)),
        ]
        return all(
            mine.dtype == theirs.dtype
            and mine.shape == theirs.shape
            and mine.tobytes() == theirs.tobytes()
            for mine, theirs in pairs
        )


# -- encoded updates -----------------------------------------------------------


@dataclass(frozen=True)
class EpochUpdate:
    """One epoch's encoded distribution unit (a KEYFRAME or DIFF frame).

    ``data`` is the shared wire-frame encoding — every consumer (gateway
    fan-out, JSON views, bundle renderings) works from these same bytes.
    """

    kind: FrameKind
    epoch: int
    data: bytes
    _decoded: list = field(default_factory=list, repr=False, compare=False)

    def decoded(self) -> tuple[dict[str, Any], list[np.ndarray]]:
        """The decoded ``(meta, arrays)`` payload (cached)."""
        if not self._decoded:
            kind, meta, arrays = wire.decode_frame(self.data)
            if kind is not self.kind:
                raise CodecError(f"frame kind {kind.name} != update kind {self.kind.name}")
            self._decoded.append((meta, arrays))
        return self._decoded[0]

    def json_record(self) -> dict:
        """The JSON view of this update (the ``/diffs`` wire format)."""
        meta, arrays = self.decoded()
        if self.kind is FrameKind.DIFF:
            return diff_json_record(meta, arrays)
        return keyframe_json_record(meta, arrays)


# Fixed array layout of a DIFF frame, ahead of the per-shell id arrays.
_DIFF_FIELDS = (
    "added_endpoints",
    "added_delay_ms",
    "added_bandwidth_kbps",
    "added_type",
    "removed_endpoints",
    "delay_changed_endpoints",
    "delay_changed_ms",
    "bandwidth_changed_endpoints",
    "bandwidth_changed_kbps",
)


def encode_keyframe_update(state: "ConstellationState", epoch: int) -> bytes:
    """Encode one epoch's full-state KEYFRAME frame from its snapshot."""
    snapshot = EpochSnapshot.from_state(state, epoch)
    shells = sorted(snapshot.active)
    meta = {
        "epoch": epoch,
        "time_s": snapshot.time_s,
        "node_count": snapshot.node_count,
        "shells": shells,
    }
    arrays = (
        snapshot.node_a,
        snapshot.node_b,
        snapshot.delay_ms,
        snapshot.bandwidth_kbps,
        snapshot.link_type,
        *(snapshot.active[shell] for shell in shells),
    )
    return wire.encode_frame(FrameKind.KEYFRAME, meta, arrays)


def encode_diff_update(diff: "ConstellationDiff", epoch: int) -> bytes:
    """Encode one epoch's DIFF frame from the constellation diff."""
    topology = diff.topology
    shells = sorted(diff.activated)
    meta = {
        "epoch": epoch,
        "time_s": diff.time_s,
        "previous_time_s": diff.previous_time_s,
        "summary": diff.summary(),
        "shells": shells,
    }
    arrays = (
        topology.added_endpoints(),
        topology.current.delays_ms[topology.links_added],
        topology.current.bandwidths_kbps[topology.links_added],
        topology.current.link_type_codes[topology.links_added],
        topology.removed_endpoints(),
        topology.delay_changed_endpoints(),
        topology.delay_changed_values_ms(),
        topology.bandwidth_changed_endpoints(),
        topology.bandwidth_changed_values_kbps(),
        *(diff.activated[shell] for shell in shells),
        *(diff.deactivated.get(shell, np.empty(0, dtype=np.int64)) for shell in shells),
    )
    return wire.encode_frame(FrameKind.DIFF, meta, arrays)


def encode_skip_update(diff: "ConstellationDiff", epoch: int) -> bytes:
    """Encode the out-of-scope marker of one epoch: an *empty* DIFF frame.

    Scoped subscribers are not sent changes outside their scope, but their
    epoch chain must keep advancing; this frame carries the epoch and
    clock of the real diff with every change array empty, so an
    :class:`EpochReplica` applies it like any other diff.  ``skip: True``
    in the meta lets clients tell filtered epochs from genuinely quiet
    ones.
    """
    meta = {
        "epoch": epoch,
        "time_s": diff.time_s,
        "previous_time_s": diff.previous_time_s,
        "summary": {},
        "shells": [],
        "skip": True,
    }
    endpoints = np.empty((0, 2), dtype=np.int64)
    arrays = (
        endpoints,
        np.empty(0, dtype=np.float64),
        np.empty(0, dtype=np.float64),
        np.empty(0, dtype=np.int8),
        endpoints,
        endpoints,
        np.empty(0, dtype=np.float64),
        endpoints,
        np.empty(0, dtype=np.float64),
    )
    return wire.encode_frame(FrameKind.DIFF, meta, arrays)


def _diff_arrays(meta: dict, arrays: list[np.ndarray]) -> dict[str, Any]:
    """Name the fixed and per-shell arrays of a decoded DIFF frame."""
    fixed = dict(zip(_DIFF_FIELDS, arrays))
    shells = meta["shells"]
    cursor = len(_DIFF_FIELDS)
    fixed["activated"] = dict(zip(shells, arrays[cursor : cursor + len(shells)]))
    cursor += len(shells)
    fixed["deactivated"] = dict(zip(shells, arrays[cursor : cursor + len(shells)]))
    return fixed


def diff_json_record(meta: dict, arrays: list[np.ndarray]) -> dict:
    """The ``/diffs/<epoch>`` JSON record of one decoded DIFF frame.

    This *is* the wire format the info API has served since PR 3 — per
    epoch one record with the change counters and flat ``[node_a, node_b,
    ...]`` rows: ``links_added`` carries ``[a, b, delay_ms,
    bandwidth_kbps]``, ``links_removed`` ``[a, b]``, ``delay_changed``
    ``[a, b, delay_ms]``, ``bandwidth_changed`` ``[a, b,
    bandwidth_kbps]`` — plus the per-shell ``activated``/``deactivated``
    satellite ids.  Rendered from the decoded frame so the JSON and the
    fan-out bytes can never disagree.
    """
    named = _diff_arrays(meta, arrays)

    def _rows(endpoints: np.ndarray, *values: np.ndarray) -> list:
        # Zip integer endpoint pairs with float value columns so the JSON
        # keeps node ids integral (column_stack would upcast everything).
        columns = [value.tolist() for value in values]
        return [
            [a, b, *row_values]
            for (a, b), *row_values in zip(endpoints.tolist(), *columns)
        ]

    return {
        "epoch": meta["epoch"],
        "time_s": meta["time_s"],
        "previous_time_s": meta["previous_time_s"],
        "summary": meta["summary"],
        "links_added": _rows(
            named["added_endpoints"],
            named["added_delay_ms"],
            named["added_bandwidth_kbps"],
        ),
        "links_removed": named["removed_endpoints"].tolist(),
        "delay_changed": _rows(
            named["delay_changed_endpoints"], named["delay_changed_ms"]
        ),
        "bandwidth_changed": _rows(
            named["bandwidth_changed_endpoints"], named["bandwidth_changed_kbps"]
        ),
        "activated": {
            str(shell): ids.tolist() for shell, ids in named["activated"].items()
        },
        "deactivated": {
            str(shell): ids.tolist() for shell, ids in named["deactivated"].items()
        },
    }


def keyframe_json_record(meta: dict, arrays: list[np.ndarray]) -> dict:
    """Compact JSON summary of a decoded KEYFRAME frame (counters, not rows)."""
    shells = meta["shells"]
    masks = arrays[5 : 5 + len(shells)]
    return {
        "epoch": meta["epoch"],
        "time_s": meta["time_s"],
        "node_count": meta["node_count"],
        "links": int(arrays[0].shape[0]),
        "active": {
            str(shell): int(np.count_nonzero(mask))
            for shell, mask in zip(shells, masks)
        },
    }


def changed_nodes(meta: dict, arrays: list[np.ndarray]) -> np.ndarray:
    """Flat node indices a decoded DIFF frame touches (for scope filtering)."""
    named = _diff_arrays(meta, arrays)
    endpoint_sets = [
        named["added_endpoints"],
        named["removed_endpoints"],
        named["delay_changed_endpoints"],
        named["bandwidth_changed_endpoints"],
    ]
    parts = [points.reshape(-1) for points in endpoint_sets if points.size]
    return (
        np.unique(np.concatenate(parts).astype(np.int64, copy=False))
        if parts
        else np.empty(0, dtype=np.int64)
    )


# -- client-side replica -------------------------------------------------------


class EpochReplica:
    """A subscriber's reconstruction of the streamed state projection.

    Applies KEYFRAME and DIFF updates in stream order; a DIFF whose epoch
    does not chain onto the replica's epoch raises :class:`CodecError`
    (the subscriber must resynchronise from a keyframe, which the gateway
    provides after a slow-client eviction).  Values are kept exactly as
    decoded, so :meth:`snapshot` is bit-identical to the server's
    :meth:`EpochSnapshot.from_state` at the same epoch.
    """

    def __init__(self):
        self.epoch: Optional[int] = None
        self.time_s: Optional[float] = None
        self.node_count = 0
        self._links: dict[tuple[int, int], tuple[float, float, int]] = {}
        self.active: dict[int, np.ndarray] = {}
        self.applied_keyframes = 0
        self.applied_diffs = 0

    @staticmethod
    def _key(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def apply(self, update: EpochUpdate) -> None:
        """Apply one decoded update (keyframe resync or chained diff)."""
        meta, arrays = update.decoded()
        if update.kind is FrameKind.KEYFRAME:
            self._apply_keyframe(meta, arrays)
        elif update.kind is FrameKind.DIFF:
            self._apply_diff(meta, arrays)
        else:
            raise CodecError(f"cannot apply a {update.kind.name} frame to a replica")

    def _apply_keyframe(self, meta: dict, arrays: list[np.ndarray]) -> None:
        node_a, node_b, delays, bandwidths, types = arrays[:5]
        self._links = {
            self._key(a, b): (delay, bandwidth, kind)
            for a, b, delay, bandwidth, kind in zip(
                node_a.tolist(),
                node_b.tolist(),
                delays.tolist(),
                bandwidths.tolist(),
                types.tolist(),
            )
        }
        shells = meta["shells"]
        self.active = {
            shell: np.array(mask, dtype=bool)
            for shell, mask in zip(shells, arrays[5 : 5 + len(shells)])
        }
        self.epoch = meta["epoch"]
        self.time_s = meta["time_s"]
        self.node_count = meta["node_count"]
        self.applied_keyframes += 1

    def _apply_diff(self, meta: dict, arrays: list[np.ndarray]) -> None:
        if self.epoch is None:
            raise CodecError("a replica must start from a KEYFRAME")
        if meta["epoch"] != self.epoch + 1:
            raise CodecError(
                f"diff for epoch {meta['epoch']} does not chain onto "
                f"replica epoch {self.epoch}; resynchronise from a keyframe"
            )
        named = _diff_arrays(meta, arrays)
        for (a, b), delay, bandwidth, kind in zip(
            named["added_endpoints"].tolist(),
            named["added_delay_ms"].tolist(),
            named["added_bandwidth_kbps"].tolist(),
            named["added_type"].tolist(),
        ):
            self._links[self._key(a, b)] = (delay, bandwidth, kind)
        for a, b in named["removed_endpoints"].tolist():
            self._links.pop(self._key(a, b), None)
        for (a, b), delay in zip(
            named["delay_changed_endpoints"].tolist(),
            named["delay_changed_ms"].tolist(),
        ):
            key = self._key(a, b)
            _, bandwidth, kind = self._links[key]
            self._links[key] = (delay, bandwidth, kind)
        for (a, b), bandwidth in zip(
            named["bandwidth_changed_endpoints"].tolist(),
            named["bandwidth_changed_kbps"].tolist(),
        ):
            key = self._key(a, b)
            delay, _, kind = self._links[key]
            self._links[key] = (delay, bandwidth, kind)
        for shell, ids in named["activated"].items():
            self.active[shell][ids] = True
        for shell, ids in named["deactivated"].items():
            self.active[shell][ids] = False
        self.epoch = meta["epoch"]
        self.time_s = meta["time_s"]
        self.applied_diffs += 1

    def snapshot(self) -> EpochSnapshot:
        """The canonical projection of the replica (compare with the server's)."""
        if self.epoch is None:
            raise CodecError("the replica has not applied any update yet")
        keys = sorted(self._links)
        node_a = np.array([k[0] for k in keys], dtype=np.int64)
        node_b = np.array([k[1] for k in keys], dtype=np.int64)
        values = [self._links[k] for k in keys]
        return EpochSnapshot(
            epoch=self.epoch,
            time_s=self.time_s,
            node_count=self.node_count,
            node_a=node_a,
            node_b=node_b,
            delay_ms=np.array([v[0] for v in values], dtype=np.float64),
            bandwidth_kbps=np.array([v[1] for v in values], dtype=np.float64),
            link_type=np.array([v[2] for v in values], dtype=np.int8),
            active={shell: mask.copy() for shell, mask in sorted(self.active.items())},
        )


# -- the codec -----------------------------------------------------------------


class EpochUpdateCodec:
    """Encodes each epoch's keyframe/diff exactly once, pruned with history.

    Owned by the :class:`~repro.core.database.ConstellationDatabase`:
    updates are sourced from ``keyframe_state``/``diffs_between`` (or the
    state/diff the caller passes at publish time), encoded on first use
    and cached by epoch.  ``encode_count`` counts actual frame encodings —
    the single-encode guarantee the fan-out benchmark pins down.

    The codec is shared between the coordinator thread (publications,
    history pruning, info-API rendering) and the gateway's event-loop
    thread (fan-out, eviction resyncs), so an internal lock guards every
    cache mutation — the check-and-encode is atomic, keeping the
    exactly-once guarantee under concurrency.  ``prune`` additionally
    records a floor so a publish racing a prune cannot re-insert a pruned
    epoch that would then be cached forever.  Lock ordering: callers may
    hold the database lock when entering the codec (database → codec);
    the codec resolves any database lookups *before* taking its own lock,
    so the reverse order never occurs.
    """

    def __init__(self, database: "ConstellationDatabase"):
        self._database = database
        self._keyframes: dict[int, bytes] = {}
        self._diffs: dict[int, bytes] = {}
        self._lock = threading.Lock()
        self._oldest_keyframe = 0  # prune floor: see `prune`
        self.encode_count = 0

    def keyframe_update(
        self, epoch: Optional[int] = None, state: Optional["ConstellationState"] = None
    ) -> EpochUpdate:
        """The KEYFRAME update of an epoch (current epoch by default).

        ``state`` short-circuits the database lookup when the caller — the
        gateway's publish path — already holds the epoch's state; other
        epochs must be retained keyframes (``KeyError`` otherwise).
        """
        database = self._database
        if epoch is None:
            epoch = database.epoch
        with self._lock:
            data = self._keyframes.get(epoch)
        if data is None:
            if state is None:
                if epoch == database.epoch:
                    state = database.state
                else:
                    state = database.keyframe_state(epoch)
            with self._lock:
                data = self._keyframes.get(epoch)
                if data is None:
                    data = encode_keyframe_update(state, epoch)
                    self.encode_count += 1
                    if epoch >= self._oldest_keyframe:
                        self._keyframes[epoch] = data
        return EpochUpdate(FrameKind.KEYFRAME, epoch, data)

    def diff_update(
        self, epoch: int, diff: Optional["ConstellationDiff"] = None
    ) -> EpochUpdate:
        """The DIFF update advancing ``epoch - 1`` to ``epoch``."""
        with self._lock:
            data = self._diffs.get(epoch)
        if data is None:
            if diff is None:
                chain = self._database.diffs_between(epoch - 1, epoch)
                if not chain:
                    raise KeyError(f"no diff recorded for epoch {epoch}")
                diff = chain[0]
            with self._lock:
                data = self._diffs.get(epoch)
                if data is None:
                    data = encode_diff_update(diff, epoch)
                    self.encode_count += 1
                    if epoch > self._oldest_keyframe:
                        self._diffs[epoch] = data
        return EpochUpdate(FrameKind.DIFF, epoch, data)

    def prune(self, oldest_keyframe: int) -> None:
        """Drop cached frames the database's history pruning released.

        Mirrors ``ConstellationDatabase._prune_history``: keyframe bytes
        before the oldest retained keyframe and diff bytes at or before it
        are dropped, so the cache footprint tracks the retained window.
        The floor is remembered so concurrent encoders skip caching frames
        for already-pruned epochs (they still return the encoded update).
        """
        with self._lock:
            self._oldest_keyframe = max(self._oldest_keyframe, oldest_keyframe)
            floor = self._oldest_keyframe
            for epoch in [e for e in self._keyframes if e < floor]:
                del self._keyframes[epoch]
            for epoch in [e for e in self._diffs if e <= floor]:
                del self._diffs[epoch]
