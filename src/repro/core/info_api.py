"""The per-host HTTP information API.

Celestial hosts run an HTTP server that provides information on satellite
positions, network paths between satellites, constellation information and
more to the emulated satellite servers (§3.2).  Application developers can
use it instead of implementing their own model of satellite movement.

``InfoAPI`` implements the routing and JSON responses; ``HTTPInfoServer``
exposes the same API over a real local HTTP socket (standard library only)
for applications that expect to speak HTTP.

Diff-aware polling: ``/diffs/<epoch>`` serves the database's keyframe/diff
history as a compact JSON change stream ("what changed since epoch N"), so
emulated machines can follow the constellation incrementally instead of
re-reading the full ``/info`` state; when the rolling history has been
pruned past the requested epoch the route 404s with the retained keyframe
epochs to resynchronise from.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.core.constellation import ConstellationCalculation, MachineId
from repro.core.database import ConstellationDatabase
from repro.core.dns import CelestialDNS, DNSError


class InfoAPIError(KeyError):
    """Raised when an info API path does not resolve to a resource."""


class InfoAPI:
    """Routes REST-style paths to constellation database queries."""

    def __init__(
        self,
        database: ConstellationDatabase,
        calculation: ConstellationCalculation,
        dns: Optional[CelestialDNS] = None,
    ):
        self.database = database
        self.calculation = calculation
        self.dns = dns

    def _machine_from_name(self, name: str) -> MachineId:
        if name.endswith(".celestial"):
            name = name[: -len(".celestial")]
        parts = name.split(".")
        if len(parts) == 2 and parts[0].isdigit() and parts[1].isdigit():
            return self.calculation.satellite(int(parts[1]), int(parts[0]))
        candidate = parts[0] if parts[-1] == "gst" else parts[-1]
        for gst_name in self.calculation.config.ground_station_names:
            slug = gst_name.lower().replace(" ", "-").replace(",", "")
            if candidate in (gst_name, slug):
                return self.calculation.ground_station(gst_name)
        raise InfoAPIError(f"unknown machine name: {name!r}")

    def get(self, path: str) -> dict:
        """Resolve a GET request path to its JSON-serialisable response."""
        parts = [part for part in path.strip("/").split("/") if part]
        try:
            if parts == ["info"] or not parts:
                return self.database.constellation_info()
            if parts[0] == "shell" and len(parts) == 2:
                return self.database.shell_info(int(parts[1]))
            if parts[0] == "sat" and len(parts) == 3:
                return self.database.satellite_info(int(parts[1]), int(parts[2]))
            if parts[0] == "gst" and len(parts) >= 2:
                return self.database.ground_station_info("/".join(parts[1:]))
            if parts[0] == "self" and len(parts) >= 2:
                machine = self._machine_from_name("/".join(parts[1:]))
                if machine.is_ground_station:
                    return self.database.ground_station_info(machine.name)
                return self.database.satellite_info(machine.shell, machine.identifier)
            if parts[0] == "diffs" and len(parts) == 2:
                return self.database.diff_history_info(int(parts[1]))
            if parts[0] == "path" and len(parts) == 3:
                source = self._machine_from_name(parts[1])
                destination = self._machine_from_name(parts[2])
                return self.database.path_info(source, destination)
            if parts[0] == "dns" and len(parts) >= 2 and self.dns is not None:
                return self.dns.a_record("/".join(parts[1:]))
        except (KeyError, ValueError, IndexError, DNSError) as error:
            raise InfoAPIError(str(error)) from error
        raise InfoAPIError(f"unknown path: {path!r}")


class HTTPInfoServer:
    """Serves an :class:`InfoAPI` over HTTP on localhost (for real clients)."""

    def __init__(self, api: InfoAPI, host: str = "127.0.0.1", port: int = 0):
        self.api = api
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (stdlib naming)
                try:
                    payload = outer.api.get(self.path)
                    body = json.dumps(payload).encode()
                    self.send_response(200)
                except InfoAPIError as error:
                    body = json.dumps({"error": str(error)}).encode()
                    self.send_response(404)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *_args):
                pass

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        """Bound (host, port) of the server."""
        return self._server.server_address[:2]

    def start(self) -> None:
        """Start serving in a background thread."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the server and join its thread."""
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join(timeout=5.0)
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "HTTPInfoServer":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()
