"""Fault injection for emulated machines and links.

Through Celestial's API, users can change machine parameters at runtime and
even terminate and reboot machines to model faults, e.g. caused by radiation
(§3.1).  HPE's Spaceborne Computer experience shows single event upsets lead
to temporary performance degradation or full shutdowns (§2.3); the
:class:`RadiationModel` produces such events stochastically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.constellation import MachineId
from repro.core.machine_manager import MachineManager
from repro.net.network import VirtualNetwork
from repro.sim import Simulation


@dataclass(frozen=True)
class FaultEvent:
    """A record of one injected fault."""

    time_s: float
    machine: str
    kind: str
    detail: str = ""


@dataclass
class FaultInjector:
    """Runtime fault-injection API of the testbed."""

    manager_resolver: Callable[[MachineId], MachineManager]
    network: Optional[VirtualNetwork] = None
    events: list[FaultEvent] = field(default_factory=list)

    def _log(self, time_s: float, machine: str, kind: str, detail: str = "") -> None:
        self.events.append(FaultEvent(time_s, machine, kind, detail))

    def terminate(self, machine: MachineId, now_s: float) -> None:
        """Shut a machine down until it is explicitly rebooted."""
        self.manager_resolver(machine).stop_machine(machine, now_s)
        self._log(now_s, machine.name, "terminate")

    def reboot(self, machine: MachineId, now_s: float) -> float:
        """Reboot a machine; returns the time it is back up."""
        finished = self.manager_resolver(machine).reboot_machine(machine, now_s)
        self._log(now_s, machine.name, "reboot", f"up at {finished:.3f}s")
        return finished

    def degrade_cpu(self, machine: MachineId, quota_fraction: float, now_s: float) -> None:
        """Reduce a machine's CPU quota (temporary performance degradation)."""
        self.manager_resolver(machine).set_cpu_quota(machine, quota_fraction)
        self._log(now_s, machine.name, "degrade-cpu", f"quota={quota_fraction}")

    def restore_cpu(self, machine: MachineId, now_s: float) -> None:
        """Restore a machine's full CPU quota."""
        self.manager_resolver(machine).set_cpu_quota(machine, 1.0)
        self._log(now_s, machine.name, "restore-cpu")

    def inject_packet_loss(
        self, source: MachineId, destination: MachineId, probability: float, now_s: float
    ) -> None:
        """Add packet loss on a directed machine pair."""
        if self.network is None:
            raise RuntimeError("no virtual network attached to the fault injector")
        self.network.set_loss_override(source, destination, probability)
        self._log(now_s, f"{source.name}->{destination.name}", "packet-loss", f"p={probability}")

    def clear_packet_loss(self, source: MachineId, destination: MachineId, now_s: float) -> None:
        """Remove injected packet loss from a directed machine pair."""
        if self.network is None:
            raise RuntimeError("no virtual network attached to the fault injector")
        self.network.clear_loss_override(source, destination)
        self._log(now_s, f"{source.name}->{destination.name}", "packet-loss-cleared")


class RadiationModel:
    """Stochastic single-event-upset model for satellite servers.

    ``events_per_machine_hour`` is the expected number of upsets per machine
    per hour; each upset reboots the affected machine (temporary outage).
    """

    def __init__(self, events_per_machine_hour: float, rng: Optional[np.random.Generator] = None):
        if events_per_machine_hour < 0:
            raise ValueError("event rate must be non-negative")
        self.events_per_machine_hour = events_per_machine_hour
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.upsets: list[FaultEvent] = []

    def process(
        self,
        sim: Simulation,
        machines: list[MachineId],
        injector: FaultInjector,
    ):
        """Simulation process that keeps injecting upsets until the run ends."""
        if self.events_per_machine_hour == 0 or not machines:
            return
            yield  # pragma: no cover - makes this a generator
        rate_per_second = self.events_per_machine_hour * len(machines) / 3600.0
        while True:
            wait = float(self._rng.exponential(1.0 / rate_per_second))
            yield sim.timeout(wait)
            victim = machines[int(self._rng.integers(0, len(machines)))]
            manager = injector.manager_resolver(victim)
            if not manager.is_running_at(victim, sim.now):
                continue
            injector.reboot(victim, sim.now)
            self.upsets.append(FaultEvent(sim.now, victim.name, "single-event-upset"))
