"""Fault injection for emulated machines and links.

Through Celestial's API, users can change machine parameters at runtime and
even terminate and reboot machines to model faults, e.g. caused by radiation
(§3.1).  HPE's Spaceborne Computer experience shows single event upsets lead
to temporary performance degradation or full shutdowns (§2.3); the
:class:`RadiationModel` produces such events stochastically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.constellation import MachineId
from repro.core.machine_manager import MachineManager
from repro.net.network import VirtualNetwork
from repro.sim import Simulation


@dataclass(frozen=True)
class FaultEvent:
    """A record of one injected fault."""

    time_s: float
    machine: str
    kind: str
    detail: str = ""


@dataclass
class FaultInjector:
    """Runtime fault-injection API of the testbed."""

    manager_resolver: Callable[[MachineId], MachineManager]
    network: Optional[VirtualNetwork] = None
    events: list[FaultEvent] = field(default_factory=list)

    def _log(self, time_s: float, machine: str, kind: str, detail: str = "") -> None:
        self.events.append(FaultEvent(time_s, machine, kind, detail))

    def terminate(self, machine: MachineId, now_s: float) -> None:
        """Shut a machine down until it is explicitly rebooted."""
        self.manager_resolver(machine).stop_machine(machine, now_s)
        self._log(now_s, machine.name, "terminate")

    def reboot(self, machine: MachineId, now_s: float) -> float:
        """Reboot a machine; returns the time it is back up."""
        finished = self.manager_resolver(machine).reboot_machine(machine, now_s)
        self._log(now_s, machine.name, "reboot", f"up at {finished:.3f}s")
        return finished

    def degrade_cpu(self, machine: MachineId, quota_fraction: float, now_s: float) -> None:
        """Reduce a machine's CPU quota (temporary performance degradation)."""
        self.manager_resolver(machine).set_cpu_quota(machine, quota_fraction)
        self._log(now_s, machine.name, "degrade-cpu", f"quota={quota_fraction}")

    def restore_cpu(self, machine: MachineId, now_s: float) -> None:
        """Restore a machine's full CPU quota."""
        self.manager_resolver(machine).set_cpu_quota(machine, 1.0)
        self._log(now_s, machine.name, "restore-cpu")

    def inject_packet_loss(
        self, source: MachineId, destination: MachineId, probability: float, now_s: float
    ) -> None:
        """Add packet loss on a directed machine pair."""
        if self.network is None:
            raise RuntimeError("no virtual network attached to the fault injector")
        self.network.set_loss_override(source, destination, probability)
        self._log(now_s, f"{source.name}->{destination.name}", "packet-loss", f"p={probability}")

    def clear_packet_loss(self, source: MachineId, destination: MachineId, now_s: float) -> None:
        """Remove injected packet loss from a directed machine pair."""
        if self.network is None:
            raise RuntimeError("no virtual network attached to the fault injector")
        self.network.clear_loss_override(source, destination)
        self._log(now_s, f"{source.name}->{destination.name}", "packet-loss-cleared")

    def cap_bandwidth(
        self, source: MachineId, destination: MachineId, bandwidth_kbps: float, now_s: float
    ) -> None:
        """Cap the bandwidth of a directed machine pair (degraded link)."""
        if self.network is None:
            raise RuntimeError("no virtual network attached to the fault injector")
        self.network.set_bandwidth_cap(source, destination, bandwidth_kbps)
        self._log(
            now_s,
            f"{source.name}->{destination.name}",
            "bandwidth-cap",
            f"kbps={bandwidth_kbps}",
        )

    def clear_bandwidth_cap(
        self, source: MachineId, destination: MachineId, now_s: float
    ) -> None:
        """Remove an injected bandwidth cap from a directed machine pair."""
        if self.network is None:
            raise RuntimeError("no virtual network attached to the fault injector")
        self.network.clear_bandwidth_cap(source, destination)
        self._log(now_s, f"{source.name}->{destination.name}", "bandwidth-cap-cleared")

    #: Declarative op kinds understood by :meth:`apply_op`.
    OP_KINDS = (
        "terminate",
        "reboot",
        "degrade-cpu",
        "restore-cpu",
        "packet-loss",
        "clear-packet-loss",
        "bandwidth-cap",
        "clear-bandwidth-cap",
    )

    def apply_op(
        self,
        kind: str,
        now_s: float,
        machine: Optional[MachineId] = None,
        source: Optional[MachineId] = None,
        destination: Optional[MachineId] = None,
        **params,
    ) -> None:
        """Apply one declarative fault op by kind.

        This is the interpreter surface of a spec's fault program
        (:class:`~repro.experiments.spec.FaultOp`): machine-targeted kinds
        take ``machine``, link-targeted kinds take ``source``/``destination``,
        and kind-specific parameters (``quota_fraction``, ``probability``)
        arrive as keywords.  Each op routes through the corresponding typed
        method, so the event log is identical to hand-driven injection.
        """
        if kind == "terminate":
            self.terminate(machine, now_s)
        elif kind == "reboot":
            self.reboot(machine, now_s)
        elif kind == "degrade-cpu":
            self.degrade_cpu(machine, float(params["quota_fraction"]), now_s)
        elif kind == "restore-cpu":
            self.restore_cpu(machine, now_s)
        elif kind == "packet-loss":
            self.inject_packet_loss(
                source, destination, float(params.get("probability", 1.0)), now_s
            )
        elif kind == "clear-packet-loss":
            self.clear_packet_loss(source, destination, now_s)
        elif kind == "bandwidth-cap":
            self.cap_bandwidth(
                source, destination, float(params["bandwidth_kbps"]), now_s
            )
        elif kind == "clear-bandwidth-cap":
            self.clear_bandwidth_cap(source, destination, now_s)
        else:
            raise ValueError(
                f"unknown fault op kind {kind!r} (known: {', '.join(self.OP_KINDS)})"
            )


class RadiationModel:
    """Stochastic single-event-upset model for satellite servers.

    ``events_per_machine_hour`` is the expected number of upsets per machine
    per hour; each upset reboots the affected machine (temporary outage).
    """

    def __init__(self, events_per_machine_hour: float, rng: Optional[np.random.Generator] = None):
        if events_per_machine_hour < 0:
            raise ValueError("event rate must be non-negative")
        self.events_per_machine_hour = events_per_machine_hour
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.upsets: list[FaultEvent] = []

    def process(
        self,
        sim: Simulation,
        machines: list[MachineId],
        injector: FaultInjector,
    ):
        """Simulation process that keeps injecting upsets until the run ends."""
        if self.events_per_machine_hour == 0 or not machines:
            return
            yield  # pragma: no cover - makes this a generator
        rate_per_second = self.events_per_machine_hour * len(machines) / 3600.0
        while True:
            wait = float(self._rng.exponential(1.0 / rate_per_second))
            yield sim.timeout(wait)
            victim = machines[int(self._rng.integers(0, len(machines)))]
            manager = injector.manager_resolver(victim)
            if not manager.is_running_at(victim, sim.now):
                continue
            injector.reboot(victim, sim.now)
            self.upsets.append(FaultEvent(sim.now, victim.name, "single-event-upset"))
