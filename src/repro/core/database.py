"""Central constellation database on the coordinator.

The Constellation Calculation writes its results into a central database;
Celestial hosts serve this information to the emulated machines through the
HTTP info API (§3.2).  The database also acts as the rule provider for the
virtual network: the delay/bandwidth installed for a machine pair is derived
from the latest published state.

Diff history and keyframes
--------------------------

Under the differential update protocol the coordinator publishes, per
epoch, the new full state *plus* the
:class:`~repro.core.constellation.ConstellationDiff` against the previous
epoch.  The database keeps a rolling window of those diffs alongside
periodic full-state **keyframes**: every ``keyframe_interval``-th epoch
(and every epoch published without a diff) retains its complete state, and
the diff history is pruned so that it always spans back to the oldest
retained keyframe.  Consumers that fell behind can thus resynchronise from
the nearest keyframe at or before their epoch and replay
:meth:`diffs_since` forward, instead of re-reading the full constellation.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

import numpy as np

from repro.core.constellation import (
    ConstellationDiff,
    ConstellationState,
    MachineId,
    satellite_name,
)
from repro.net.network import PairRule

#: Signature of an epoch listener: ``(epoch, state, diff)`` per publication.
EpochListener = Callable[[int, ConstellationState, Optional[ConstellationDiff]], None]


class ConstellationDatabase:
    """Holds the most recent constellation state and answers queries about it.

    The database is the publication point of the state-distribution path:
    :meth:`set_state` epochs feed the shared
    :class:`~repro.serve.codec.EpochUpdateCodec` (``self.codec``), which
    encodes each epoch's keyframe/diff exactly once for every downstream
    consumer — the streaming gateway's fan-out, the info API's ``/diffs``
    JSON and the analysis bundle all render views of those same bytes.
    Reads and publications are serialised by an internal lock so info-API
    threads never observe a torn epoch; registered epoch listeners (the
    gateway) are notified after each publication, outside the lock.
    """

    def __init__(self, keyframe_interval: int = 10, retained_keyframes: int = 2):
        if keyframe_interval <= 0:
            raise ValueError("keyframe interval must be positive")
        if retained_keyframes <= 0:
            raise ValueError("at least one keyframe must be retained")
        self._state: Optional[ConstellationState] = None
        self.epoch = 0
        self.updated_at_s: Optional[float] = None
        self._rule_cache: dict[tuple[str, str], PairRule] = {}
        self.keyframe_interval = keyframe_interval
        self.retained_keyframes = retained_keyframes
        self._keyframes: dict[int, ConstellationState] = {}
        self._diffs: dict[int, ConstellationDiff] = {}
        self._lock = threading.RLock()
        self._listeners: list[EpochListener] = []
        # Imported here, not at module scope: repro.core imports the
        # database at package-import time, while the serving tier imports
        # repro.core — deferring to construction time breaks the cycle.
        from repro.serve.codec import EpochUpdateCodec

        self.codec = EpochUpdateCodec(self)

    # -- updates -----------------------------------------------------------

    def add_listener(self, listener: EpochListener) -> None:
        """Register a callable invoked after every published epoch."""
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: EpochListener) -> None:
        """Unregister a previously added epoch listener (idempotent)."""
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def set_state(
        self, state: ConstellationState, diff: Optional[ConstellationDiff] = None
    ) -> None:
        """Publish a new constellation state (called by the coordinator).

        ``diff`` is the change set between the previously published epoch
        and ``state``; epochs published without one (the first epoch, or a
        full resynchronisation) always become keyframes, because the diff
        chain towards them is broken.
        """
        with self._lock:
            self._state = state
            self.epoch += 1
            self.updated_at_s = state.time_s
            self._rule_cache.clear()
            if diff is not None:
                self._diffs[self.epoch] = diff
            if diff is None or (self.epoch - 1) % self.keyframe_interval == 0:
                self._keyframes[self.epoch] = state
                self._prune_history()
            epoch = self.epoch
            listeners = list(self._listeners)
        # Listeners run outside the lock: the gateway's publish hook hands
        # the epoch to its event loop and must never delay the coordinator
        # or deadlock against a listener that reads the database back.
        for listener in listeners:
            listener(epoch, state, diff)

    def _prune_history(self) -> None:
        keyframe_epochs = sorted(self._keyframes)
        for stale in keyframe_epochs[: -self.retained_keyframes]:
            del self._keyframes[stale]
        oldest_keyframe = min(self._keyframes)
        for epoch in [e for e in self._diffs if e <= oldest_keyframe]:
            del self._diffs[epoch]
        self.codec.prune(oldest_keyframe)

    # -- diff history ------------------------------------------------------

    @property
    def latest_diff(self) -> Optional[ConstellationDiff]:
        """The diff between the two most recent epochs (None after a keyframe reset)."""
        return self._diffs.get(self.epoch)

    def keyframe_epochs(self) -> list[int]:
        """Epoch numbers of the retained full-state keyframes (ascending)."""
        with self._lock:
            return sorted(self._keyframes)

    def keyframe_state(self, epoch: int) -> ConstellationState:
        """The retained full state of a keyframe epoch."""
        with self._lock:
            if epoch not in self._keyframes:
                raise KeyError(f"epoch {epoch} is not a retained keyframe")
            return self._keyframes[epoch]

    def diffs_since(self, epoch: int) -> list[ConstellationDiff]:
        """The diff chain replaying ``epoch`` forward to the current epoch.

        ``epoch`` must be at or after the oldest retained keyframe (older
        history has been pruned) and the chain must be unbroken — a
        consumer at ``epoch`` applies the returned diffs in order to arrive
        at the current state.
        """
        with self._lock:
            if epoch > self.epoch:
                raise KeyError(
                    f"epoch {epoch} is in the future (current: {self.epoch})"
                )
            wanted = range(epoch + 1, self.epoch + 1)
            missing = [e for e in wanted if e not in self._diffs]
            if missing:
                raise KeyError(
                    f"diff history no longer covers epochs {missing}; "
                    f"resynchronise from a keyframe ({self.keyframe_epochs()})"
                )
            return [self._diffs[e] for e in wanted]

    def diffs_between(self, start_epoch: int, end_epoch: int) -> list[ConstellationDiff]:
        """The unbroken diff chain advancing ``start_epoch`` to ``end_epoch``.

        A consumer holding the state of ``start_epoch`` applies the returned
        diffs in order to arrive at ``end_epoch``.  Both epochs must lie
        within the retained history window; raises ``KeyError`` otherwise.
        (Retained diffs are contiguous — pruning only trims the old end —
        so the chain to the current epoch restricted to ``end_epoch`` is
        exactly the wanted chain.)
        """
        with self._lock:
            if not 0 <= start_epoch <= end_epoch <= self.epoch:
                raise KeyError(
                    f"epoch range [{start_epoch}, {end_epoch}] is not within "
                    f"[0, {self.epoch}]"
                )
            return self.diffs_since(start_epoch)[: end_epoch - start_epoch]

    def activity_at_epoch(self, epoch: int) -> dict[int, np.ndarray]:
        """Per-shell bounding-box activity masks as of a past epoch.

        Replayed from the nearest retained keyframe at or before ``epoch``
        plus the diff chain forward — this is how a crashed worker's
        supervisor reconstructs which of its satellites were suspended at
        the last acknowledged checkpoint (``repro.dist.supervisor``).
        Raises ``KeyError`` when the pruned history no longer reaches
        ``epoch``.
        """
        with self._lock:
            if epoch == self.epoch and self._state is not None:
                return {
                    shell: mask.copy()
                    for shell, mask in self._state.active_satellites.items()
                }
            anchors = [k for k in self._keyframes if k <= epoch]
            if not anchors:
                raise KeyError(
                    f"no retained keyframe at or before epoch {epoch} "
                    f"(keyframes: {self.keyframe_epochs()})"
                )
            anchor = max(anchors)
            masks = {
                shell: mask.copy()
                for shell, mask in self._keyframes[anchor].active_satellites.items()
            }
            for diff in self.diffs_between(anchor, epoch):
                for shell, identifiers in diff.activated.items():
                    masks[shell][identifiers] = True
                for shell, identifiers in diff.deactivated.items():
                    masks[shell][identifiers] = False
            return masks

    @property
    def lock(self) -> threading.RLock:
        """The reentrant lock serialising publications and reads.

        Consumers that make multiple correlated reads (e.g. the gateway's
        query path reading the state and its engine counters together)
        hold it across the whole read.
        """
        return self._lock

    @property
    def state(self) -> ConstellationState:
        """The latest published state."""
        if self._state is None:
            raise RuntimeError("no constellation state has been published yet")
        return self._state

    @property
    def has_state(self) -> bool:
        """Whether at least one state has been published."""
        return self._state is not None

    # -- virtual-network rule provider ---------------------------------------

    def pair_rule(self, source: MachineId, destination: MachineId) -> PairRule:
        """Delay/bandwidth rule currently installed for a machine pair."""
        with self._lock:
            key = (source.name, destination.name)
            if key in self._rule_cache:
                return self._rule_cache[key]
            state = self.state
            delay = state.delay_ms(source, destination)
            reachable = bool(np.isfinite(delay))
            bandwidth = state.bandwidth_kbps(source, destination) if reachable else None
            if bandwidth is not None and bandwidth <= 0:
                bandwidth = None
            rule = PairRule(
                delay_ms=delay if reachable else 0.0,
                bandwidth_kbps=bandwidth,
                reachable=reachable,
            )
            self._rule_cache[key] = rule
            return rule

    def diff_history_info(self, since_epoch: int) -> dict:
        """Wire-format diff history: "what changed since ``since_epoch``?".

        Served over the HTTP info API so emulated machines can poll the
        change stream instead of re-reading the full constellation.  The
        format is compact and JSON-native: per epoch one record with the
        change counters and flat ``[node_a, node_b, ...]`` rows —
        ``links_added`` carries ``[a, b, delay_ms, bandwidth_kbps]``,
        ``links_removed`` ``[a, b]``, ``delay_changed`` ``[a, b,
        delay_ms]``, ``bandwidth_changed`` ``[a, b, bandwidth_kbps]`` —
        plus the per-shell ``activated``/``deactivated`` satellite ids.
        Raises ``KeyError`` (→ 404 with a keyframe hint) when the pruned
        history no longer reaches back to ``since_epoch``.

        The records are rendered through the shared epoch-update codec:
        each diff is encoded once into its wire frame (cached — the same
        bytes the streaming gateway fans out) and the JSON is a view of
        the decoded frame, so the two paths can never disagree.
        """
        with self._lock:
            chain = self.diffs_since(since_epoch)
            records = [
                self.codec.diff_update(since_epoch + offset, diff=diff).json_record()
                for offset, diff in enumerate(chain, start=1)
            ]
            return {
                "since_epoch": since_epoch,
                "epoch": self.epoch,
                "keyframe_epochs": self.keyframe_epochs(),
                "diffs": records,
            }

    # -- info-API queries ----------------------------------------------------

    def constellation_info(self) -> dict:
        """Summary of the constellation (served at ``/info``)."""
        state = self.state
        return {
            "time_s": state.time_s,
            "epoch": self.epoch,
            "shells": len(state.satellite_positions_ecef),
            "satellites": int(state.node_index.satellite_count),
            "ground_stations": len(state.ground_positions_ecef),
            "active_satellites": state.active_count(),
            "links": state.graph.total_links(),
            "keyframe_epochs": self.keyframe_epochs(),
            "last_diff": (
                self.latest_diff.summary() if self.latest_diff is not None else None
            ),
        }

    def shell_info(self, shell: int) -> dict:
        """Information about one shell (served at ``/shell/<n>``)."""
        state = self.state
        if shell not in state.satellite_positions_ecef:
            raise KeyError(f"unknown shell {shell}")
        active = state.active_satellites[shell]
        return {
            "shell": shell,
            "satellites": int(active.shape[0]),
            "active": int(np.count_nonzero(active)),
        }

    def satellite_info(self, shell: int, identifier: int) -> dict:
        """Information about one satellite (served at ``/sat/<shell>/<id>``)."""
        state = self.state
        if shell not in state.satellite_positions_ecef:
            raise KeyError(f"unknown shell {shell}")
        positions = state.satellite_positions_ecef[shell]
        if not 0 <= identifier < positions.shape[0]:
            raise KeyError(f"unknown satellite {identifier} in shell {shell}")
        latitude, longitude = state.satellite_position_geodetic(shell, identifier)
        return {
            "shell": shell,
            "identifier": identifier,
            "name": satellite_name(shell, identifier),
            "position_ecef_km": [float(x) for x in positions[identifier]],
            "latitude_deg": latitude,
            "longitude_deg": longitude,
            "active": bool(state.active_satellites[shell][identifier]),
        }

    def ground_station_info(self, name: str) -> dict:
        """Information about one ground station (served at ``/gst/<name>``)."""
        state = self.state
        if name not in state.ground_positions_ecef:
            raise KeyError(f"unknown ground station {name!r}")
        uplinks = state.uplinks_of(name)
        return {
            "name": name,
            "position_ecef_km": [float(x) for x in state.ground_positions_ecef[name]],
            "uplinks": [
                {
                    "shell": uplink.shell,
                    "satellite": uplink.satellite,
                    "distance_km": uplink.distance_km,
                    "delay_ms": uplink.delay_ms,
                }
                for uplink in uplinks
            ],
        }

    def path_info(self, source: MachineId, destination: MachineId) -> dict:
        """Path information between two machines (served at ``/path/<a>/<b>``)."""
        state = self.state
        result = state.path(source, destination)
        return {
            "source": source.name,
            "destination": destination.name,
            "reachable": result.reachable,
            "delay_ms": result.delay_ms if result.reachable else None,
            "rtt_ms": result.rtt_ms if result.reachable else None,
            "hops": [state.node_index.describe(hop) for hop in result.hops],
            "bandwidth_kbps": state.bandwidth_kbps(source, destination),
        }
