"""The per-host Machine Manager.

Each Celestial host runs a Machine Manager that creates and boots the
microVMs assigned to it, suspends/resumes them when they leave/enter the
bounding box, applies machine parameter changes at runtime (fault injection,
CPU quotas) and reports host resource usage (§3, Fig. 2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import ComputeParams
from repro.core.constellation import ConstellationState, MachineId
from repro.hosts import Host
from repro.microvm import (
    KernelImage,
    MachineResources,
    MachineState,
    MicroVM,
    RootFilesystemImage,
)


class MachineManager:
    """Manages the microVMs of one host."""

    def __init__(self, host: Host, rng: Optional[np.random.Generator] = None):
        self.host = host
        self._rng = rng if rng is not None else np.random.default_rng(host.index)
        self._machine_ids: dict[str, MachineId] = {}
        self.suspension_count = 0
        self.resume_count = 0

    # -- machine creation ---------------------------------------------------

    def create_machine(
        self,
        machine_id: MachineId,
        compute: ComputeParams,
        kernel: Optional[KernelImage] = None,
        rootfs: Optional[RootFilesystemImage] = None,
    ) -> MicroVM:
        """Create (but not boot) a microVM for a machine on this host."""
        machine = MicroVM(
            name=machine_id.name,
            resources=MachineResources(
                vcpu_count=compute.vcpu_count,
                memory_mib=compute.memory_mib,
                disk_mib=compute.disk_mib,
            ),
            kernel=kernel,
            rootfs=rootfs,
            rng=np.random.default_rng(self._rng.integers(0, 2**63)),
            active_cpu_fraction=compute.idle_cpu_fraction,
        )
        machine.cpu_quota.set_quota(compute.cpu_quota)
        self.host.place(machine)
        self._machine_ids[machine_id.name] = machine_id
        return machine

    def has_machine(self, machine_id: MachineId) -> bool:
        """Whether this manager hosts the machine."""
        return machine_id.name in self.host.machines

    def machine(self, machine_id: MachineId) -> MicroVM:
        """The microVM of a machine managed by this host."""
        return self.host.machine(machine_id.name)

    def machine_ids(self) -> list[MachineId]:
        """Identities of all machines managed by this host."""
        return list(self._machine_ids.values())

    # -- lifecycle -----------------------------------------------------------

    def boot(self, machine_id: MachineId, now_s: float) -> float:
        """Boot a created machine; returns the boot-finished time."""
        return self.machine(machine_id).boot(now_s)

    def boot_all(self, now_s: float) -> float:
        """Boot every created-but-not-booted machine; returns the last finish time."""
        finished = now_s
        for machine in self.host.machines.values():
            if machine.state is MachineState.CREATED:
                finished = max(finished, machine.boot(now_s))
        return finished

    def apply_state(self, state: ConstellationState, now_s: float) -> None:
        """Suspend/resume local satellites according to the bounding box."""
        for name, machine_id in self._machine_ids.items():
            if machine_id.is_ground_station:
                continue
            machine = self.host.machines.get(name)
            if machine is None:
                continue
            active = state.is_active(machine_id)
            if machine.state is MachineState.RUNNING and not active:
                machine.suspend(now_s)
                self.suspension_count += 1
            elif machine.state is MachineState.SUSPENDED and active:
                machine.resume(now_s)
                self.resume_count += 1

    def is_running_at(self, machine_id: MachineId, now_s: float) -> bool:
        """Whether a machine is running (boot finished, not suspended) at a time."""
        machine = self.host.machines.get(machine_id.name)
        if machine is None:
            return False
        return machine.state_at(now_s) is MachineState.RUNNING

    # -- runtime machine control (fault injection API) -------------------------

    def stop_machine(self, machine_id: MachineId, now_s: float) -> None:
        """Terminate a machine (e.g. modelling a radiation-induced shutdown)."""
        self.machine(machine_id).stop(now_s)

    def reboot_machine(self, machine_id: MachineId, now_s: float) -> float:
        """Reboot a machine; returns the time it is running again."""
        return self.machine(machine_id).reboot(now_s)

    def set_cpu_quota(self, machine_id: MachineId, quota_fraction: float) -> None:
        """Change a machine's CPU quota at runtime."""
        self.machine(machine_id).cpu_quota.set_quota(quota_fraction)

    def set_busy_fraction(self, machine_id: MachineId, fraction: float) -> None:
        """Report workload CPU usage of a machine for host accounting."""
        self.host.set_busy_fraction(machine_id.name, fraction)

    # -- accounting --------------------------------------------------------------

    def sample_usage(self, now_s: float, setup_phase: bool = False, applying_update: bool = False):
        """Record a host resource usage sample."""
        return self.host.sample_usage(
            now_s, setup_phase=setup_phase, applying_update=applying_update, rng=self._rng
        )
