"""The per-host Machine Manager.

Each Celestial host runs a Machine Manager that creates and boots the
microVMs assigned to it, suspends/resumes them when they leave/enter the
bounding box, applies machine parameter changes at runtime (fault injection,
CPU quotas) and reports host resource usage (§3, Fig. 2).

Differential update contract
----------------------------

Under the differential protocol the coordinator no longer replays the full
constellation state to every manager.  Instead each manager receives a
:class:`HostStateSlice` — only the part of the epoch's change set that
involves its own machines — and applies it with
:meth:`MachineManager.apply_diff`:

* ``activated``/``deactivated`` are the host's machines whose bounding-box
  activity flipped since the previous epoch; the manager resumes/suspends
  exactly those, instead of scanning its whole fleet.
* machines whose lifecycle changed *outside* the protocol (created, stopped
  or rebooted between updates) are tracked in a dirty set and reconciled
  against the activity flags the coordinator ships in
  ``dirty_active`` — this keeps the incremental path byte-equivalent to a
  full :meth:`MachineManager.apply_state` sweep.
* the link arrays and per-ground-station delay vectors describe the network
  changes touching this host; they are informational state the real system
  would turn into netem rules (the virtual network consumes the same diff
  centrally) and are exposed via :attr:`MachineManager.last_slice`.

Process boundary
----------------

Since PR 4 a manager may live in a worker *process* (``repro.dist``): the
coordinator keeps an in-process shadow for placement and bookkeeping while
the authoritative copy applies slices and runs the per-host usage-sampling
sweeps behind a pipe.  Three members exist for that runtime:
:meth:`MachineManager.apply_activity` (the full-replay sweep expressed over
raw per-shell activity masks, so a first-epoch replay does not need the
whole :class:`ConstellationState` on the wire),
:meth:`MachineManager.counters_snapshot` (the checkpoint streamed back with
every acknowledgement) and :meth:`MachineManager.restore_runtime_state`
(applied by a respawned worker after the durable control ledger has been
replayed: forces bounding-box activity to the checkpoint epoch — recovered
from the database's keyframe + diff chain — without touching the
suspend/resume counters, then restores counters and RNG stream exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import ComputeParams
from repro.core.constellation import ConstellationState, MachineId
from repro.hosts import Host
from repro.microvm import (
    KernelImage,
    MachineResources,
    MachineState,
    MicroVM,
    RootFilesystemImage,
)


@dataclass(frozen=True)
class HostStateSlice:
    """Per-host slice of one differential constellation update.

    The coordinator guarantees that every machine named in ``activated``,
    ``deactivated`` and ``dirty_active`` is hosted by the receiving manager,
    and that the link arrays are restricted to pairs with at least one
    endpoint among ``machine_nodes`` (the host's flat node indices).
    ``gst_delays_ms[name]`` is aligned with ``machine_nodes`` and holds the
    shortest-path delay from ground station ``name`` to each machine;
    ``uplink_delays_ms``/``uplink_bandwidths_kbps`` hold the *direct* uplink
    parameters between each ground station and the host's machines
    (``inf``/``0`` where no direct link exists), batched through the
    vectorised ``edge_ids_between`` lookup.
    """

    host_index: int
    time_s: float
    epoch: int
    activated: tuple[MachineId, ...]
    deactivated: tuple[MachineId, ...]
    dirty_active: dict[str, bool]
    machine_nodes: np.ndarray
    links_added: np.ndarray
    added_delays_ms: np.ndarray
    links_removed: np.ndarray
    links_delay_changed: np.ndarray
    delay_changed_ms: np.ndarray
    gst_delays_ms: dict[str, np.ndarray] = field(default_factory=dict)
    uplink_delays_ms: dict[str, np.ndarray] = field(default_factory=dict)
    uplink_bandwidths_kbps: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def link_change_count(self) -> int:
        """Number of changed links touching this host."""
        return int(
            self.links_added.shape[0]
            + self.links_removed.shape[0]
            + self.links_delay_changed.shape[0]
        )

    @property
    def activity_change_count(self) -> int:
        """Number of suspend/resume transitions in this slice."""
        return len(self.activated) + len(self.deactivated)


class MachineManager:
    """Manages the microVMs of one host."""

    def __init__(self, host: Host, rng: Optional[np.random.Generator] = None):
        self.host = host
        self._rng = rng if rng is not None else np.random.default_rng(host.index)
        self._machine_ids: dict[str, MachineId] = {}
        self.suspension_count = 0
        self.resume_count = 0
        # Machines whose lifecycle changed outside the diff protocol since
        # the last update; reconciled (and cleared) by apply_diff/apply_state.
        self._dirty: set[str] = set()
        self.last_slice: Optional[HostStateSlice] = None
        self.applied_diffs = 0

    # -- machine creation ---------------------------------------------------

    def create_machine(
        self,
        machine_id: MachineId,
        compute: ComputeParams,
        kernel: Optional[KernelImage] = None,
        rootfs: Optional[RootFilesystemImage] = None,
    ) -> MicroVM:
        """Create (but not boot) a microVM for a machine on this host."""
        machine = MicroVM(
            name=machine_id.name,
            resources=MachineResources(
                vcpu_count=compute.vcpu_count,
                memory_mib=compute.memory_mib,
                disk_mib=compute.disk_mib,
            ),
            kernel=kernel,
            rootfs=rootfs,
            rng=np.random.default_rng(self._rng.integers(0, 2**63)),
            active_cpu_fraction=compute.idle_cpu_fraction,
        )
        machine.cpu_quota.set_quota(compute.cpu_quota)
        self.host.place(machine)
        self._machine_ids[machine_id.name] = machine_id
        self._dirty.add(machine_id.name)
        return machine

    def has_machine(self, machine_id: MachineId) -> bool:
        """Whether this manager hosts the machine."""
        return machine_id.name in self.host.machines

    def machine(self, machine_id: MachineId) -> MicroVM:
        """The microVM of a machine managed by this host."""
        return self.host.machine(machine_id.name)

    def machine_ids(self) -> list[MachineId]:
        """Identities of all machines managed by this host."""
        return list(self._machine_ids.values())

    # -- lifecycle -----------------------------------------------------------

    def boot(self, machine_id: MachineId, now_s: float) -> float:
        """Boot a created machine; returns the boot-finished time."""
        self._dirty.add(machine_id.name)
        return self.machine(machine_id).boot(now_s)

    def boot_all(self, now_s: float) -> float:
        """Boot every created-but-not-booted machine; returns the last finish time."""
        finished = now_s
        for machine in self.host.machines.values():
            if machine.state is MachineState.CREATED:
                finished = max(finished, machine.boot(now_s))
        return finished

    def apply_state(self, state: ConstellationState, now_s: float) -> None:
        """Suspend/resume local satellites with a full sweep over the state.

        This is the full-replay reference path (and the first-epoch path);
        steady-state updates go through :meth:`apply_diff` instead.
        """
        self.apply_activity(state.active_satellites, now_s)

    def apply_activity(
        self, active_satellites: dict[int, np.ndarray], now_s: float
    ) -> None:
        """Full-replay sweep expressed over raw per-shell activity masks.

        Byte-equivalent to :meth:`apply_state` (which delegates here): the
        masks are exactly ``ConstellationState.active_satellites``.  Workers
        receive them as a compact ``APPLY_ACTIVITY`` wire frame instead of
        the whole constellation state.
        """
        for name, machine_id in self._machine_ids.items():
            if machine_id.is_ground_station:
                continue
            machine = self.host.machines.get(name)
            if machine is None:
                continue
            active = bool(active_satellites[machine_id.shell][machine_id.identifier])
            self._reconcile_activity(machine, active, now_s)
        self._dirty.clear()

    def _reconcile_activity(self, machine: MicroVM, active: bool, now_s: float) -> None:
        if machine.state is MachineState.RUNNING and not active:
            machine.suspend(now_s)
            self.suspension_count += 1
        elif machine.state is MachineState.SUSPENDED and active:
            machine.resume(now_s)
            self.resume_count += 1

    def dirty_machine_ids(self) -> list[MachineId]:
        """Machines whose lifecycle changed outside the diff protocol.

        The coordinator reads this when sharding an update so it can ship
        the current activity flag of exactly these machines in the slice's
        ``dirty_active`` map.
        """
        return [self._machine_ids[name] for name in self._dirty if name in self._machine_ids]

    def apply_diff(self, state_slice: HostStateSlice, now_s: float) -> None:
        """Apply one differential update slice to this host's machines.

        Only the machines named in the slice are touched: bounding-box
        transitions suspend/resume exactly the machines that crossed the
        boundary, then machines marked dirty since the last update are
        reconciled against the shipped activity flags.  Both steps guard on
        the current microVM state, so the result (including the
        suspend/resume counters) is identical to a full
        :meth:`apply_state` sweep.
        """
        for machine_id in state_slice.deactivated:
            machine = self.host.machines.get(machine_id.name)
            if machine is not None:
                self._reconcile_activity(machine, False, now_s)
        for machine_id in state_slice.activated:
            machine = self.host.machines.get(machine_id.name)
            if machine is not None:
                self._reconcile_activity(machine, True, now_s)
        for name, active in state_slice.dirty_active.items():
            machine_id = self._machine_ids.get(name)
            machine = self.host.machines.get(name)
            if machine_id is None or machine is None or machine_id.is_ground_station:
                continue
            self._reconcile_activity(machine, active, now_s)
        self._dirty.clear()
        self.last_slice = state_slice
        self.applied_diffs += 1

    def is_running_at(self, machine_id: MachineId, now_s: float) -> bool:
        """Whether a machine is running (boot finished, not suspended) at a time."""
        machine = self.host.machines.get(machine_id.name)
        if machine is None:
            return False
        return machine.state_at(now_s) is MachineState.RUNNING

    # -- runtime machine control (fault injection API) -------------------------

    def stop_machine(self, machine_id: MachineId, now_s: float) -> None:
        """Terminate a machine (e.g. modelling a radiation-induced shutdown)."""
        self.machine(machine_id).stop(now_s)
        self._dirty.add(machine_id.name)

    def reboot_machine(self, machine_id: MachineId, now_s: float) -> float:
        """Reboot a machine; returns the time it is running again."""
        self._dirty.add(machine_id.name)
        return self.machine(machine_id).reboot(now_s)

    def set_cpu_quota(self, machine_id: MachineId, quota_fraction: float) -> None:
        """Change a machine's CPU quota at runtime."""
        self.machine(machine_id).cpu_quota.set_quota(quota_fraction)

    def set_busy_fraction(self, machine_id: MachineId, fraction: float) -> None:
        """Report workload CPU usage of a machine for host accounting."""
        self.host.set_busy_fraction(machine_id.name, fraction)

    # -- accounting --------------------------------------------------------------

    def sample_usage(self, now_s: float, setup_phase: bool = False, applying_update: bool = False):
        """Record a host resource usage sample."""
        return self.host.sample_usage(
            now_s, setup_phase=setup_phase, applying_update=applying_update, rng=self._rng
        )

    def advance_sample_stream(
        self, setup_phase: bool = False, applying_update: bool = False
    ) -> None:
        """Consume the random variates one :meth:`sample_usage` call would draw.

        A shadow manager whose authoritative copy samples in a worker
        process calls this instead of sampling, so machine creations *after*
        a sample draw the same per-machine seeds (and hence boot-time
        jitter) in every backend.
        """
        self._rng.random(
            self.host.sample_rng_draws(
                setup_phase=setup_phase, applying_update=applying_update
            )
        )

    # -- checkpoint / restore (supervised worker recovery) -----------------------

    def counters_snapshot(self) -> dict:
        """Checkpoint of the observable runtime counters plus the RNG state.

        Streamed back with every worker acknowledgement; a supervisor
        restores it verbatim after a crash so counters and all future random
        draws (usage-sample jitter) continue exactly where the last
        acknowledged operation left them.
        """
        return {
            "suspension_count": self.suspension_count,
            "resume_count": self.resume_count,
            "applied_diffs": self.applied_diffs,
            "rng_state": self._rng.bit_generator.state,
        }

    def restore_runtime_state(
        self,
        active_satellites: Optional[dict[int, np.ndarray]],
        snapshot: dict,
        now_s: float,
        skip: Optional[set[str]] = None,
    ) -> None:
        """Restore a freshly rebuilt manager to a checkpointed epoch.

        Called on a respawned worker after the durable control ledger
        (machine creations, fault-injection ops) has been replayed:

        * bounding-box activity is *forced* to the per-shell masks of the
          checkpoint epoch — recovered by the supervisor from the database's
          keyframe + diff chain — without counting the transitions (the
          counters below already include them); ``None`` when the manager
          had not applied any epoch yet (counters/RNG restore only);
        * machines in ``skip`` are left exactly as the ledger rebuilt them:
          these are dirty machines whose lifecycle changed outside the diff
          protocol after the checkpoint, and the next slice's
          ``dirty_active`` map reconciles them *with* counting, exactly as
          the in-process path would;
        * counters and the RNG stream are restored from ``snapshot``.
        """
        skip = skip if skip is not None else set()
        if active_satellites is not None:
            for name, machine_id in self._machine_ids.items():
                if machine_id.is_ground_station or name in skip:
                    continue
                machine = self.host.machines.get(name)
                if machine is None or not machine.is_booted:
                    continue
                active = bool(
                    active_satellites[machine_id.shell][machine_id.identifier]
                )
                if machine.state is MachineState.RUNNING and not active:
                    machine.suspend(now_s)
                elif machine.state is MachineState.SUSPENDED and active:
                    machine.resume(now_s)
        self.suspension_count = int(snapshot["suspension_count"])
        self.resume_count = int(snapshot["resume_count"])
        self.applied_diffs = int(snapshot["applied_diffs"])
        self._rng.bit_generator.state = snapshot["rng_state"]
        self._dirty.clear()
